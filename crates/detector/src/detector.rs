//! The local composite event detector.
//!
//! One instance exists per application ("the event detector is implemented
//! as a class and hence we have a single instance of this class per
//! application", §3.2). Primitive events are signalled by the wrapper
//! methods via [`LocalEventDetector::notify_method`] (the generated
//! `Notify(this, "STOCK", "void set_price(float price)", "begin", list)`
//! call of §3.2.1) or by [`LocalEventDetector::signal_explicit`] for
//! transaction/abstract events. Detection propagates through the event
//! graph demand-driven and returns [`Detection`]s for every `(event,
//! context)` with rule subscribers; rule execution itself lives in
//! `sentinel-rules`.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use sentinel_obs::span::{self, SpanContext, SpanHandle, TraceStore};
use sentinel_obs::{json, Counter, Field, TraceBus};
use sentinel_snoop::ast::{EventExpr, EventModifier};
use sentinel_snoop::ParamContext;

use crate::clock::{LogicalClock, Timestamp};
use crate::graph::{EventGraph, EventId, GraphError, PrimTarget};
use crate::log::LoggedEvent;
use crate::nodes::Emission;
use crate::occurrence::{Occurrence, Value};
use crate::snapshot::{GraphSnapshot, NodeSnapshot, RestoreError};

/// Opaque id of a rule (or other consumer) subscribed to an event; the
/// detector never interprets it.
pub type SubscriberId = u64;

/// Observer of every primitive event the detector accepts, invoked
/// synchronously on the signalling thread right after the event is
/// timestamped and before it propagates through the graph. The durable
/// event journal hooks in here; the sink may call back into the detector
/// (e.g. [`LocalEventDetector::snapshot_state`]) — no detector locks are
/// held across the call.
pub trait EventSink: Send + Sync {
    /// One primitive event was signalled.
    fn record(&self, detector: &LocalEventDetector, ev: &LoggedEvent);
}

/// Short static name of a parameter context for trace fields.
fn ctx_name(ctx: ParamContext) -> &'static str {
    match ctx {
        ParamContext::Recent => "recent",
        ParamContext::Chronicle => "chronicle",
        ParamContext::Continuous => "continuous",
        ParamContext::Cumulative => "cumulative",
    }
}

/// One detected `(event, context)` occurrence, with the subscribers to
/// notify. The rule scheduler turns these into condition/action threads.
#[derive(Debug)]
pub struct Detection {
    /// The detected event.
    pub event: EventId,
    /// Context it was detected in.
    pub context: ParamContext,
    /// The occurrence (with its linked parameter list).
    pub occurrence: Arc<Occurrence>,
    /// Rule subscribers registered for `(event, context)`.
    pub subscribers: Vec<SubscriberId>,
}

/// The local composite event detector (one per application).
pub struct LocalEventDetector {
    graph: Mutex<EventGraph>,
    clock: Arc<LogicalClock>,
    /// Serializes timestamp draws with graph propagation on the live
    /// signal paths. Without it, two concurrent signals can tick `t1 < t2`
    /// but propagate in the opposite order, and order-sensitive operators
    /// (SEQ's strict `initiator.at < terminator.at`) silently drop pairs.
    signal_order: Mutex<()>,
    app: u32,
    /// When false, primitive-event signalling is suppressed — the paper's
    /// global flag that prevents events raised *during condition
    /// evaluation* from being detected (§3.2.1).
    signaling: AtomicBool,
    /// Min-heap of pending temporal alarms `(due, node)`.
    alarms: Mutex<BinaryHeap<Reverse<(Timestamp, EventId)>>>,
    /// Primitive-event log for batch (after-the-fact) detection.
    log: Mutex<Option<Vec<LoggedEvent>>>,
    /// Optional synchronous observer of accepted primitive events (the
    /// durable event journal).
    sink: Mutex<Option<Arc<dyn EventSink>>>,
    /// Occurrence counters per event (primitive signals and composite
    /// detections alike) — the detector-side statistics the rule debugger
    /// reports.
    occurrence_counts: Mutex<HashMap<EventId, u64>>,
    /// Total primitive signals processed.
    signals: AtomicU64,
    /// Transaction flushes performed ([`Self::flush_txn`] calls).
    flush_calls: Counter,
    /// Buffered occurrences dropped by transaction flushes.
    flushed: Counter,
    /// Optional structured trace bus (detections and flushes are emitted
    /// when a bus is attached and has subscribers).
    trace: Mutex<Option<Arc<TraceBus>>>,
    /// Optional provenance span store (spans are recorded while the store
    /// is attached and enabled).
    span_store: Mutex<Option<Arc<TraceStore>>>,
}

/// Per-node emission/consumption counters, one entry per parameter
/// context in `ParamContext::ALL` order (Recent, Chronicle, Continuous,
/// Cumulative).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Node display name.
    pub name: Arc<str>,
    /// Occurrences emitted by this node, per context.
    pub emitted: [u64; 4],
    /// Child occurrences consumed by this node, per context.
    pub consumed: [u64; 4],
}

impl NodeStats {
    /// Total emissions across contexts.
    pub fn total_emitted(&self) -> u64 {
        self.emitted.iter().sum()
    }

    /// Total consumptions across contexts.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.iter().sum()
    }
}

/// Detector statistics snapshot.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectorStats {
    /// Total primitive-event signals processed (method + explicit).
    pub signals: u64,
    /// Per-event occurrence counts, `(name, count)`, sorted by descending
    /// count then name.
    pub per_event: Vec<(Arc<str>, u64)>,
    /// Per-node emission/consumption counters for operator nodes that saw
    /// any traffic, sorted by name.
    pub nodes: Vec<NodeStats>,
    /// Transaction flushes performed.
    pub flush_calls: u64,
    /// Buffered occurrences dropped by transaction flushes.
    pub flushed_occurrences: u64,
}

impl DetectorStats {
    /// Renders as a JSON object (see [`sentinel_obs::json`]).
    pub fn to_json(&self) -> json::Value {
        json::Value::obj([
            ("signals", json::Value::UInt(self.signals)),
            (
                "per_event",
                json::Value::obj(
                    self.per_event
                        .iter()
                        .map(|(name, count)| (name.to_string(), json::Value::UInt(*count))),
                ),
            ),
            (
                "nodes",
                json::Value::Arr(
                    self.nodes
                        .iter()
                        .map(|n| {
                            json::Value::obj([
                                ("name", json::Value::str(n.name.as_ref())),
                                (
                                    "emitted",
                                    json::Value::Arr(
                                        n.emitted.iter().map(|&v| json::Value::UInt(v)).collect(),
                                    ),
                                ),
                                (
                                    "consumed",
                                    json::Value::Arr(
                                        n.consumed.iter().map(|&v| json::Value::UInt(v)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("flush_calls", json::Value::UInt(self.flush_calls)),
            ("flushed_occurrences", json::Value::UInt(self.flushed_occurrences)),
        ])
    }
}

impl LocalEventDetector {
    /// A detector for application `app` with its own clock.
    pub fn new(app: u32) -> Self {
        Self::with_clock(app, Arc::new(LogicalClock::new()))
    }

    /// A detector sharing an external logical clock (the engine clock).
    ///
    /// The four transaction events are pre-declared, mirroring Sentinel's
    /// reactive system class whose event interface makes `beginTransaction`
    /// / `commitTransaction` generate events (§3.2).
    pub fn with_clock(app: u32, clock: Arc<LogicalClock>) -> Self {
        let mut graph = EventGraph::new();
        for name in [
            "begin-transaction",
            "pre-commit-transaction",
            "commit-transaction",
            "abort-transaction",
        ] {
            graph.declare_explicit(name);
        }
        LocalEventDetector {
            graph: Mutex::new(graph),
            clock,
            signal_order: Mutex::new(()),
            app,
            signaling: AtomicBool::new(true),
            alarms: Mutex::new(BinaryHeap::new()),
            log: Mutex::new(None),
            sink: Mutex::new(None),
            occurrence_counts: Mutex::new(HashMap::new()),
            signals: AtomicU64::new(0),
            flush_calls: Counter::new(),
            flushed: Counter::new(),
            trace: Mutex::new(None),
            span_store: Mutex::new(None),
        }
    }

    /// Attaches a structured trace bus; detections and transaction flushes
    /// are emitted onto it while it has subscribers.
    pub fn set_trace_bus(&self, bus: Arc<TraceBus>) {
        *self.trace.lock() = Some(bus);
    }

    /// Attaches a provenance span store; signals, primitive occurrences
    /// and composite detections record spans while it is enabled.
    pub fn set_trace_store(&self, store: Arc<TraceStore>) {
        *self.span_store.lock() = Some(store);
    }

    /// The attached span store, when it is enabled (the tracing hot-path
    /// check: one lock + one relaxed load).
    fn tracer(&self) -> Option<Arc<TraceStore>> {
        self.span_store.lock().clone().filter(|s| s.is_enabled())
    }

    /// Opens the root "signal" span for one primitive signal. A signal
    /// raised while a span is current on this thread (a rule action
    /// re-signalling, a queued service request) joins that trace —
    /// the cascade link; otherwise it starts a fresh trace.
    fn open_signal_span(store: &TraceStore, name: Arc<str>) -> SpanHandle {
        let (trace, parent) = match span::current() {
            Some(cur) => (cur.trace, Some(cur.span)),
            None => (store.new_trace(), None),
        };
        store.start(trace, parent, "signal", name)
    }

    /// The application this detector serves.
    pub fn app(&self) -> u32 {
        self.app
    }

    /// The shared logical clock.
    pub fn clock(&self) -> &Arc<LogicalClock> {
        &self.clock
    }

    // --- event definition ---------------------------------------------

    /// Declares a method-event primitive.
    pub fn declare_primitive(
        &self,
        name: &str,
        class: &str,
        modifier: EventModifier,
        sig: &str,
        target: PrimTarget,
    ) -> Result<EventId, GraphError> {
        self.graph.lock().declare_primitive(name, class, modifier, sig, target)
    }

    /// Declares an explicit (name-matched) event.
    pub fn declare_explicit(&self, name: &str) -> EventId {
        self.graph.lock().declare_explicit(name)
    }

    /// Defines a named composite event from an expression.
    pub fn define_named(&self, name: &str, expr: &EventExpr) -> Result<EventId, GraphError> {
        self.graph.lock().define_named(name, expr, false)
    }

    /// Builds an anonymous composite event.
    pub fn define_expr(&self, expr: &EventExpr) -> Result<EventId, GraphError> {
        self.graph.lock().build_expr(expr, false)
    }

    /// The deferred-coupling rewrite of §3.1: wraps `event` into
    /// `A*(begin-transaction, event, pre-commit-transaction)`, so a deferred
    /// rule becomes an immediate rule that fires exactly once per
    /// transaction at pre-commit, with the cumulative (net-effect)
    /// parameters of all triggerings.
    pub fn define_deferred(&self, event: EventId) -> EventId {
        let mut graph = self.graph.lock();
        let begin = graph.declare_explicit("begin-transaction");
        let pre_commit = graph.declare_explicit("pre-commit-transaction");
        let inner_name = graph.name_of(event);
        let name = format!("A*(begin-transaction, {inner_name}, pre-commit-transaction)");
        graph.compose(
            &name,
            crate::graph::NodeKind::AperiodicStar { start: begin, mid: event, end: pre_commit },
        )
    }

    /// Looks up a named event.
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.graph.lock().lookup(name)
    }

    /// Adds an alias name for an existing event.
    pub fn alias(&self, name: &str, id: EventId) -> Result<(), GraphError> {
        self.graph.lock().alias(name, id)
    }

    /// Name of an event.
    pub fn name_of(&self, id: EventId) -> Arc<str> {
        self.graph.lock().name_of(id)
    }

    /// Number of graph nodes (ablation metric).
    pub fn graph_size(&self) -> usize {
        self.graph.lock().len()
    }

    /// Renders the event graph as Graphviz DOT (see [`crate::viz`]).
    pub fn to_dot(&self) -> String {
        crate::viz::to_dot(&self.graph.lock())
    }

    /// Snapshot of detector statistics (signals processed, occurrences per
    /// event).
    pub fn stats(&self) -> DetectorStats {
        let graph = self.graph.lock();
        let counts = self.occurrence_counts.lock();
        let mut per_event: Vec<(Arc<str>, u64)> =
            counts.iter().map(|(id, n)| (graph.name_of(*id), *n)).collect();
        per_event.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut nodes: Vec<NodeStats> = graph
            .node_ids()
            .map(|id| graph.node(id))
            .filter(|n| n.total_emitted() + n.total_consumed() > 0)
            .map(|n| NodeStats { name: n.name.clone(), emitted: n.emitted, consumed: n.consumed })
            .collect();
        nodes.sort_by(|a, b| a.name.cmp(&b.name));
        DetectorStats {
            signals: self.signals.load(Ordering::Relaxed),
            per_event,
            nodes,
            flush_calls: self.flush_calls.get(),
            flushed_occurrences: self.flushed.get(),
        }
    }

    // --- subscriptions ---------------------------------------------------

    /// Subscribes `sub` to `(event, ctx)`; detection in `ctx` starts on the
    /// counter's 0→1 transition.
    pub fn subscribe(
        &self,
        event: EventId,
        ctx: ParamContext,
        sub: SubscriberId,
    ) -> Result<(), GraphError> {
        self.graph.lock().subscribe(event, ctx, sub)
    }

    /// Removes a subscription; state for `ctx` is dropped when the counter
    /// returns to zero.
    pub fn unsubscribe(
        &self,
        event: EventId,
        ctx: ParamContext,
        sub: SubscriberId,
    ) -> Result<(), GraphError> {
        self.graph.lock().unsubscribe(event, ctx, sub)
    }

    // --- signalling -------------------------------------------------------

    /// Enables/disables primitive-event signalling (disabled while a rule
    /// condition runs, since conditions must be side-effect free, §3.2.1).
    pub fn set_signaling(&self, on: bool) {
        self.signaling.store(on, Ordering::SeqCst);
    }

    /// Whether signalling is currently enabled.
    pub fn signaling(&self) -> bool {
        self.signaling.load(Ordering::SeqCst)
    }

    /// Wrapper-method notification: a method of `class` on object `oid` was
    /// invoked; `edge` says whether this is the before- or after-call.
    /// Returns all detections this signal completed.
    pub fn notify_method(
        &self,
        class: &str,
        sig: &str,
        edge: EventModifier,
        oid: u64,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
    ) -> Vec<Detection> {
        if !self.signaling() {
            return Vec::new();
        }
        let _order = self.signal_order.lock();
        let ts = self.clock.tick();
        self.record(LoggedEvent::Method {
            class: class.to_string(),
            sig: sig.to_string(),
            edge,
            oid,
            params: params.clone(),
            txn,
            ts,
        });
        self.notify_method_at(class, sig, edge, oid, params, txn, ts)
    }

    #[allow(clippy::too_many_arguments)]
    fn notify_method_at(
        &self,
        class: &str,
        sig: &str,
        edge: EventModifier,
        oid: u64,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        self.signals.fetch_add(1, Ordering::Relaxed);
        let tracer = self.tracer();
        let signal_span = tracer
            .as_deref()
            .map(|s| Self::open_signal_span(s, Arc::from(format!("{class}::{sig}"))));
        let signal_ctx = signal_span.as_ref().map(|h| h.ctx);
        let mut graph = self.graph.lock();
        let mut detections = self.fire_due_alarms(&mut graph, ts);
        // "When the local event detector is notified of a method invocation
        // for a class, the invocation is propagated only to the primitive
        // events defined for that class" (§3.2).
        let candidates: Vec<EventId> = graph.class_events(class).to_vec();
        for leaf in candidates {
            let node = graph.node(leaf);
            let crate::graph::NodeKind::Primitive { modifier, sig: node_sig, target, .. } =
                &node.kind
            else {
                continue;
            };
            // Signature check, then begin/end variant, then instance filter.
            if node_sig.as_deref() != Some(sig) {
                continue;
            }
            if !modifier.matches(edge) {
                continue;
            }
            if let PrimTarget::Instance(want) = target {
                if *want != oid {
                    continue;
                }
            }
            let prim_ctx = match (tracer.as_deref(), signal_ctx) {
                (Some(s), Some(sig_ctx)) => Some(Self::record_primitive_span(
                    s,
                    sig_ctx,
                    node.name.clone(),
                    ts,
                    txn,
                    Some(oid),
                )),
                _ => None,
            };
            let occ = Occurrence::primitive_spanned(
                leaf,
                node.name.clone(),
                ts,
                txn,
                self.app,
                Some(oid),
                params.clone(),
                prim_ctx,
            );
            detections.extend(self.propagate(&mut graph, leaf, occ, None));
        }
        drop(graph);
        if let (Some(s), Some(h)) = (tracer.as_deref(), signal_span) {
            s.finish(h, 0, vec![("detections", Field::U64(detections.len() as u64))]);
        }
        detections
    }

    /// Records the (point) span of one primitive occurrence, parented on
    /// the signal span, and returns its context for the occurrence.
    fn record_primitive_span(
        store: &TraceStore,
        signal: SpanContext,
        name: Arc<str>,
        ts: Timestamp,
        txn: Option<u64>,
        oid: Option<u64>,
    ) -> SpanContext {
        let h = store.start(signal.trace, Some(signal.span), "primitive", name);
        let ctx = h.ctx;
        let mut fields = vec![("at", Field::U64(ts))];
        if let Some(t) = txn {
            fields.push(("txn", Field::U64(t)));
        }
        if let Some(o) = oid {
            fields.push(("oid", Field::U64(o)));
        }
        store.finish(h, 0, fields);
        ctx
    }

    /// Signals an explicit/abstract event by name (transaction events,
    /// user-raised events, forwarded global events). Unknown names are
    /// declared on the fly.
    pub fn signal_explicit(
        &self,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
    ) -> Vec<Detection> {
        if !self.signaling() {
            return Vec::new();
        }
        let _order = self.signal_order.lock();
        let ts = self.clock.tick();
        self.record(LoggedEvent::Explicit {
            name: name.to_string(),
            params: params.clone(),
            txn,
            ts,
        });
        self.signal_explicit_at(name, params, txn, ts)
    }

    fn signal_explicit_at(
        &self,
        name: &str,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: Timestamp,
    ) -> Vec<Detection> {
        self.signals.fetch_add(1, Ordering::Relaxed);
        let tracer = self.tracer();
        let mut graph = self.graph.lock();
        let mut detections = self.fire_due_alarms(&mut graph, ts);
        let leaf = graph.declare_explicit(name);
        let leaf_name = graph.name_of(leaf);
        let signal_span = tracer.as_deref().map(|s| Self::open_signal_span(s, leaf_name.clone()));
        let prim_ctx = match (tracer.as_deref(), signal_span.as_ref()) {
            (Some(s), Some(h)) => {
                Some(Self::record_primitive_span(s, h.ctx, leaf_name.clone(), ts, txn, None))
            }
            _ => None,
        };
        let occ = Occurrence::primitive_spanned(
            leaf, leaf_name, ts, txn, self.app, None, params, prim_ctx,
        );
        detections.extend(self.propagate(&mut graph, leaf, occ, None));
        drop(graph);
        if let (Some(s), Some(h)) = (tracer.as_deref(), signal_span) {
            s.finish(h, 0, vec![("detections", Field::U64(detections.len() as u64))]);
        }
        detections
    }

    /// Advances logical time (firing due temporal alarms) without signalling
    /// any event.
    pub fn advance_time(&self, to: Timestamp) -> Vec<Detection> {
        self.clock.advance_to(to);
        let mut graph = self.graph.lock();
        self.fire_due_alarms(&mut graph, to)
    }

    // --- propagation core ---------------------------------------------

    /// Pushes an occurrence created at `origin` through the graph.
    /// `ctx_filter` is None for leaf occurrences (which feed every active
    /// context of each parent) and Some(c) for operator emissions (which
    /// stay within their context).
    fn propagate(
        &self,
        graph: &mut EventGraph,
        origin: EventId,
        occ: Arc<Occurrence>,
        ctx_filter: Option<ParamContext>,
    ) -> Vec<Detection> {
        let mut detections = Vec::new();
        let bus = self.trace.lock().clone();
        let tracer = self.tracer();
        let mut work: Vec<(EventId, Arc<Occurrence>, Option<ParamContext>)> =
            vec![(origin, occ, ctx_filter)];
        while let Some((node_id, occ, filter)) = work.pop() {
            // Statistics: one occurrence of this node's event. Composite
            // occurrences are tagged with their context; count once per
            // (node, context-or-leaf) pop, which matches detection counts.
            *self.occurrence_counts.lock().entry(node_id).or_default() += 1;
            // Deliver to rule subscribers of this node.
            {
                let node = graph.node(node_id);
                let contexts: &[ParamContext] = match filter {
                    Some(ref ctx) => std::slice::from_ref(ctx),
                    // A primitive occurrence satisfies a direct rule
                    // subscription in any context (contexts only matter
                    // for composite grouping).
                    None => &ParamContext::ALL,
                };
                for &ctx in contexts {
                    if node.rule_subs[ctx.index()].is_empty() {
                        continue;
                    }
                    if let Some(bus) = bus.as_deref().filter(|b| b.is_active()) {
                        bus.emit(
                            "detector",
                            "detection",
                            vec![
                                ("event", Field::Str(node.name.clone())),
                                ("context", Field::Str(Arc::from(ctx_name(ctx)))),
                                ("at", Field::U64(occ.at)),
                                (
                                    "subscribers",
                                    Field::U64(node.rule_subs[ctx.index()].len() as u64),
                                ),
                            ],
                        );
                    }
                    detections.push(Detection {
                        event: node_id,
                        context: ctx,
                        occurrence: occ.clone(),
                        subscribers: node.rule_subs[ctx.index()].clone(),
                    });
                }
            }
            // Feed parents. Edges to the same parent are grouped: a binary
            // operator whose two children are the same node (`a ; a`)
            // receives the occurrence once through the dual-role path;
            // other multi-role deliveries go terminator-role first
            // (descending), so an occurrence can close a window opened by
            // an earlier occurrence before re-initiating.
            let mut parents = graph.node(node_id).parents.clone();
            parents.sort_by_key(|(p, r)| (p.0, std::cmp::Reverse(*r)));
            let mut i = 0;
            while i < parents.len() {
                let (parent_id, first_role) = parents[i];
                let mut roles = vec![first_role];
                while i + 1 < parents.len() && parents[i + 1].0 == parent_id {
                    i += 1;
                    roles.push(parents[i].1);
                }
                i += 1;
                let contexts: Vec<ParamContext> = match filter {
                    Some(c) => {
                        if graph.node(parent_id).active(c) {
                            vec![c]
                        } else {
                            Vec::new()
                        }
                    }
                    None => ParamContext::ALL
                        .into_iter()
                        .filter(|c| graph.node(parent_id).active(*c))
                        .collect(),
                };
                let is_binary = matches!(
                    graph.node(parent_id).kind,
                    crate::graph::NodeKind::And(..)
                        | crate::graph::NodeKind::Or(..)
                        | crate::graph::NodeKind::Seq(..)
                );
                for ctx in contexts {
                    graph.node_mut(parent_id).consumed[ctx.index()] += 1;
                    let emissions = if roles.len() == 2 && is_binary {
                        graph.node_mut(parent_id).on_child_dual(&occ, ctx)
                    } else {
                        let mut ems = Vec::new();
                        for &role in &roles {
                            ems.extend(graph.node_mut(parent_id).on_child(role, &occ, ctx));
                        }
                        ems
                    };
                    graph.node_mut(parent_id).emitted[ctx.index()] += emissions.len() as u64;
                    let is_temporal = graph.node(parent_id).kind.is_temporal();
                    for em in emissions {
                        let comp =
                            self.make_occurrence(graph, parent_id, em, ctx, tracer.as_deref());
                        work.push((parent_id, comp, Some(ctx)));
                    }
                    if is_temporal {
                        self.reschedule(graph, parent_id);
                    }
                }
            }
        }
        detections
    }

    /// Builds the composite occurrence for one operator emission. When a
    /// span store is enabled, records a per-context "detect" span: its
    /// trace/parent come from the terminating constituent (the one whose
    /// signal completed the detection) and it links every constituent's
    /// span — the linked parameter list, lifted into the trace model.
    fn make_occurrence(
        &self,
        graph: &EventGraph,
        node: EventId,
        em: Emission,
        ctx: ParamContext,
        tracer: Option<&TraceStore>,
    ) -> Arc<Occurrence> {
        let name = graph.name_of(node);
        let span = tracer.map(|s| {
            let terminator = em.constituents.iter().max_by_key(|o| o.at);
            let anchor = terminator
                .and_then(|o| o.span)
                .or_else(|| em.constituents.iter().rev().find_map(|o| o.span));
            let (trace, parent) = match anchor {
                Some(a) => (a.trace, Some(a.span)),
                // No traced constituent (e.g. a periodic alarm tick, or
                // tracing enabled mid-composition): start a fresh trace.
                None => (s.new_trace(), None),
            };
            let links: Vec<SpanContext> = em.constituents.iter().filter_map(|o| o.span).collect();
            let h = s.start(trace, parent, "detect", name.clone());
            let ctx_out = h.ctx;
            s.finish_linked(h, 0, links, vec![("context", Field::from(ctx_name(ctx)))]);
            ctx_out
        });
        if em.at.is_none() && em.params.is_empty() {
            Occurrence::composite_spanned(node, name, em.constituents, span)
        } else {
            let mut constituents = em.constituents;
            constituents.sort_by_key(|o| o.at);
            let at = em.at.unwrap_or_else(|| constituents.last().map_or(0, |o| o.at));
            let txn = constituents.last().and_then(|o| o.txn);
            Arc::new(Occurrence {
                event: node,
                event_name: name,
                at,
                txn,
                app: self.app,
                source: None,
                params: em.params,
                constituents,
                span,
            })
        }
    }

    fn reschedule(&self, graph: &EventGraph, node: EventId) {
        if let Some(due) = graph.node(node).earliest_due() {
            self.alarms.lock().push(Reverse((due, node)));
        }
    }

    fn fire_due_alarms(&self, graph: &mut EventGraph, now: Timestamp) -> Vec<Detection> {
        let mut detections = Vec::new();
        let tracer = self.tracer();
        loop {
            let next = {
                let mut alarms = self.alarms.lock();
                match alarms.peek() {
                    Some(Reverse((due, _))) if *due <= now => alarms.pop(),
                    _ => None,
                }
            };
            let Some(Reverse((_, node_id))) = next else { break };
            for ctx in ParamContext::ALL {
                if !graph.node(node_id).active(ctx) {
                    continue;
                }
                let emissions = graph.node_mut(node_id).fire_alarms(now, ctx);
                graph.node_mut(node_id).emitted[ctx.index()] += emissions.len() as u64;
                for em in emissions {
                    let occ = self.make_occurrence(graph, node_id, em, ctx, tracer.as_deref());
                    detections.extend(self.propagate(graph, node_id, occ, Some(ctx)));
                }
            }
            self.reschedule(graph, node_id);
        }
        detections
    }

    // --- transaction hygiene -------------------------------------------

    /// Flushes every buffered occurrence belonging to `txn` from the whole
    /// graph (invoked on commit/abort so "events are not carried over across
    /// transaction boundaries", §3.2 item 3).
    pub fn flush_txn(&self, txn: u64) {
        let mut graph = self.graph.lock();
        let ids: Vec<EventId> = graph.node_ids().collect();
        let mut removed = 0u64;
        for id in ids {
            removed += graph.node_mut(id).flush_txn(txn) as u64;
        }
        self.flush_calls.inc();
        self.flushed.add(removed);
        if let Some(bus) = self.trace.lock().as_deref().filter(|b| b.is_active()) {
            bus.emit(
                "detector",
                "flush_txn",
                vec![("txn", Field::U64(txn)), ("removed", Field::U64(removed))],
            );
        }
        // A flush performed inside a traced span (commit/abort processing
        // within a rule action) shows up as a child of that span.
        if let (Some(s), Some(cur)) = (self.tracer(), span::current()) {
            let h = s.start(cur.trace, Some(cur.span), "flush", Arc::from("flush_txn"));
            s.finish(h, 0, vec![("txn", Field::U64(txn)), ("removed", Field::U64(removed))]);
        }
    }

    /// Flushes the state of one event's sub-graph (the paper's selective
    /// flush for an event expression). Errors on an id that names no node
    /// of this detector's graph.
    pub fn flush_event(&self, event: EventId) -> Result<(), GraphError> {
        let mut graph = self.graph.lock();
        graph.check(event)?;
        let mut stack = vec![event];
        while let Some(id) = stack.pop() {
            for (child, _) in graph.node(id).kind.children() {
                stack.push(child);
            }
            graph.node_mut(id).flush_all_state();
        }
        Ok(())
    }

    /// Flushes the entire event graph.
    pub fn flush_all(&self) {
        let mut graph = self.graph.lock();
        let ids: Vec<EventId> = graph.node_ids().collect();
        for id in ids {
            graph.node_mut(id).flush_all_state();
        }
        self.alarms.lock().clear();
    }

    // --- batch (event-log) detection -------------------------------------

    /// Starts recording signalled primitive events.
    pub fn start_recording(&self) {
        *self.log.lock() = Some(Vec::new());
    }

    /// Stops recording and returns the log.
    pub fn take_log(&self) -> Vec<LoggedEvent> {
        self.log.lock().take().unwrap_or_default()
    }

    /// Attaches an event sink; every subsequently accepted primitive event
    /// is forwarded to it synchronously (see [`EventSink`]).
    pub fn set_event_sink(&self, sink: Arc<dyn EventSink>) {
        *self.sink.lock() = Some(sink);
    }

    /// Detaches the event sink, if any.
    pub fn clear_event_sink(&self) {
        *self.sink.lock() = None;
    }

    fn record(&self, ev: LoggedEvent) {
        if let Some(log) = self.log.lock().as_mut() {
            log.push(ev.clone());
        }
        // Clone the Arc out so the sink mutex is not held across the call
        // (the sink may checkpoint, which takes the graph lock).
        let sink = self.sink.lock().clone();
        if let Some(sink) = sink {
            sink.record(self, &ev);
        }
    }

    /// Runs `f` with signalling quiesced: the signal-order lock is held, so
    /// no primitive event can be timestamped or propagated concurrently.
    /// Used for externally-triggered checkpoints.
    pub fn with_signals_paused<R>(&self, f: impl FnOnce() -> R) -> R {
        let _order = self.signal_order.lock();
        f()
    }

    // --- checkpointable state ------------------------------------------

    /// Captures all detection state (buffered occurrences, open windows,
    /// pending temporal alarms, the clock) as a [`GraphSnapshot`]. Takes
    /// only the graph lock, so an [`EventSink`] may call it from within
    /// [`EventSink::record`] (the signal's own propagation has not started
    /// yet, making the snapshot consistent with "every event up to and
    /// including the previous one").
    pub fn snapshot_state(&self) -> GraphSnapshot {
        let graph = self.graph.lock();
        let nodes = graph
            .node_ids()
            .map(|id| graph.node(id))
            .filter(|n| n.state.iter().any(|s| !s.is_empty()))
            .map(|n| NodeSnapshot { id: n.id, name: n.name.clone(), state: n.state.clone() })
            .collect();
        GraphSnapshot { clock: self.clock.peek(), nodes }
    }

    /// Restores a previously captured [`GraphSnapshot`] into this
    /// detector's graph. The graph must have been rebuilt with the same
    /// definitions (every snapshot node id must exist and carry the same
    /// name); the snapshot is validated in full before any state is
    /// applied, so a failed restore leaves the detector untouched. On
    /// success the clock is advanced to the snapshot's clock and temporal
    /// alarms are rebuilt from the restored windows.
    pub fn restore_snapshot(&self, snap: &GraphSnapshot) -> Result<(), RestoreError> {
        let mut graph = self.graph.lock();
        for ns in &snap.nodes {
            if graph.check(ns.id).is_err() {
                return Err(RestoreError::UnknownNode(ns.id));
            }
            let found = graph.node(ns.id).name.clone();
            if found != ns.name {
                return Err(RestoreError::NameMismatch {
                    id: ns.id,
                    expected: ns.name.clone(),
                    found,
                });
            }
        }
        let ids: Vec<EventId> = graph.node_ids().collect();
        for id in ids {
            graph.node_mut(id).state = Default::default();
        }
        for ns in &snap.nodes {
            graph.node_mut(ns.id).state = ns.state.clone();
        }
        self.clock.advance_to(snap.clock);
        let mut alarms = self.alarms.lock();
        alarms.clear();
        for id in graph.temporal_nodes() {
            if let Some(due) = graph.node(id).earliest_due() {
                alarms.push(Reverse((due, id)));
            }
        }
        Ok(())
    }

    /// Replays a primitive-event log through this detector's graph (batch /
    /// after-the-fact detection, §2.1). Timestamps from the log are
    /// preserved, so batch detection yields exactly the online detections.
    ///
    /// After the replay the clock is resynchronized past the highest
    /// replayed timestamp (not merely the last record's: a journal
    /// recovered from a crash can carry an unsorted tail), so fresh
    /// signals can never tick behind recovered history — order-sensitive
    /// operators like chronicle `SEQ` would silently misorder otherwise.
    pub fn replay(&self, log: &[LoggedEvent]) -> Vec<Detection> {
        let mut out = Vec::new();
        let mut max_ts = 0;
        for ev in log {
            max_ts = max_ts.max(ev.ts());
            match ev {
                LoggedEvent::Method { class, sig, edge, oid, params, txn, ts } => {
                    self.clock.advance_to(*ts);
                    out.extend(self.notify_method_at(
                        class,
                        sig,
                        *edge,
                        *oid,
                        params.clone(),
                        *txn,
                        *ts,
                    ));
                }
                LoggedEvent::Explicit { name, params, txn, ts } => {
                    self.clock.advance_to(*ts);
                    out.extend(self.signal_explicit_at(name, params.clone(), *txn, *ts));
                }
            }
        }
        self.clock.advance_to(max_ts);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_snoop::parse_event_expr;

    const SIG_SELL: &str = "int sell_stock(int qty)";
    const SIG_SET: &str = "void set_price(float price)";

    fn detector() -> LocalEventDetector {
        let d = LocalEventDetector::new(0);
        d.declare_primitive("e1", "STOCK", EventModifier::End, SIG_SELL, PrimTarget::AnyInstance)
            .unwrap();
        d.declare_primitive("e2", "STOCK", EventModifier::Begin, SIG_SET, PrimTarget::AnyInstance)
            .unwrap();
        d.declare_primitive("e3", "STOCK", EventModifier::End, SIG_SET, PrimTarget::AnyInstance)
            .unwrap();
        d
    }

    fn sell(d: &LocalEventDetector, oid: u64, qty: i64, txn: u64) -> Vec<Detection> {
        d.notify_method(
            "STOCK",
            SIG_SELL,
            EventModifier::End,
            oid,
            vec![(Arc::from("qty"), Value::Int(qty))],
            Some(txn),
        )
    }

    fn set_price(d: &LocalEventDetector, oid: u64, price: f64, txn: u64) -> Vec<Detection> {
        let mut out = d.notify_method(
            "STOCK",
            SIG_SET,
            EventModifier::Begin,
            oid,
            vec![(Arc::from("price"), Value::Float(price))],
            Some(txn),
        );
        out.extend(d.notify_method(
            "STOCK",
            SIG_SET,
            EventModifier::End,
            oid,
            vec![(Arc::from("price"), Value::Float(price))],
            Some(txn),
        ));
        out
    }

    #[test]
    fn primitive_rule_subscription_fires() {
        let d = detector();
        let e1 = d.lookup("e1").unwrap();
        d.subscribe(e1, ParamContext::Recent, 42).unwrap();
        let dets = sell(&d, 7, 100, 1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].subscribers, vec![42]);
        assert_eq!(dets[0].occurrence.param("qty"), Some(&Value::Int(100)));
        assert_eq!(dets[0].occurrence.source, Some(7));
    }

    #[test]
    fn begin_and_end_variants_are_distinct() {
        let d = detector();
        let e2 = d.lookup("e2").unwrap(); // begin(set_price)
        let e3 = d.lookup("e3").unwrap(); // end(set_price)
        d.subscribe(e2, ParamContext::Recent, 2).unwrap();
        d.subscribe(e3, ParamContext::Recent, 3).unwrap();
        let dets = set_price(&d, 1, 55.5, 1);
        assert_eq!(dets.len(), 2);
        assert_eq!(dets[0].event, e2);
        assert_eq!(dets[1].event, e3);
        assert!(dets[0].occurrence.at < dets[1].occurrence.at);
    }

    #[test]
    fn composite_and_detects_the_paper_e4() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Cumulative, 9).unwrap();
        assert!(sell(&d, 1, 10, 1).is_empty());
        let dets = set_price(&d, 1, 2.0, 1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].event, e4);
        assert_eq!(dets[0].context, ParamContext::Cumulative);
        let prims = dets[0].occurrence.param_list().len();
        assert_eq!(prims, 2);
    }

    #[test]
    fn same_event_detected_in_two_contexts_simultaneously() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        d.subscribe(e4, ParamContext::Chronicle, 2).unwrap();
        sell(&d, 1, 10, 1);
        let dets = set_price(&d, 1, 2.0, 1);
        let mut ctxs: Vec<_> = dets.iter().map(|d| d.context).collect();
        ctxs.sort();
        assert_eq!(ctxs, vec![ParamContext::Recent, ParamContext::Chronicle]);
    }

    #[test]
    fn instance_level_event_filters_by_oid() {
        let d = detector();
        d.declare_primitive(
            "ibm_sell",
            "STOCK",
            EventModifier::End,
            SIG_SELL,
            PrimTarget::Instance(77),
        )
        .unwrap();
        let ev = d.lookup("ibm_sell").unwrap();
        d.subscribe(ev, ParamContext::Recent, 5).unwrap();
        assert!(sell(&d, 1, 10, 1).is_empty(), "other instance ignored");
        let dets = sell(&d, 77, 10, 1);
        assert_eq!(dets.len(), 1);
    }

    #[test]
    fn class_and_instance_rules_fire_together() {
        // The paper's any_stk_price (class) + set_IBM_price (instance).
        let d = detector();
        d.declare_primitive(
            "any_sell",
            "STOCK",
            EventModifier::End,
            SIG_SELL,
            PrimTarget::AnyInstance,
        )
        .unwrap();
        d.declare_primitive(
            "ibm_sell",
            "STOCK",
            EventModifier::End,
            SIG_SELL,
            PrimTarget::Instance(77),
        )
        .unwrap();
        d.subscribe(d.lookup("any_sell").unwrap(), ParamContext::Recent, 1).unwrap();
        d.subscribe(d.lookup("ibm_sell").unwrap(), ParamContext::Recent, 2).unwrap();
        // e1 also matches the same method but has no subscribers.
        let dets = sell(&d, 77, 10, 1);
        let mut subs: Vec<_> = dets.iter().flat_map(|d| d.subscribers.clone()).collect();
        subs.sort();
        assert_eq!(subs, vec![1, 2]);
    }

    #[test]
    fn signaling_disabled_suppresses_events() {
        let d = detector();
        let e1 = d.lookup("e1").unwrap();
        d.subscribe(e1, ParamContext::Recent, 1).unwrap();
        d.set_signaling(false);
        assert!(sell(&d, 1, 10, 1).is_empty());
        d.set_signaling(true);
        assert_eq!(sell(&d, 1, 10, 1).len(), 1);
    }

    #[test]
    fn flush_txn_prevents_cross_transaction_composites() {
        let d = detector();
        let expr = parse_event_expr("e1 ; e3").unwrap();
        let seq = d.define_named("seq13", &expr).unwrap();
        d.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        // T1 raises the initiator, then aborts -> flush.
        sell(&d, 1, 10, 1);
        d.flush_txn(1);
        // T2's terminator must NOT pair with T1's initiator.
        let dets = set_price(&d, 1, 2.0, 2);
        assert!(dets.is_empty(), "event crossed a transaction boundary");
        // Within T2 alone the sequence completes.
        sell(&d, 1, 10, 2);
        let dets = set_price(&d, 1, 2.0, 2);
        assert_eq!(dets.len(), 1);
    }

    #[test]
    fn deferred_rewrite_shape_a_star_over_txn_events() {
        // A*(begin-transaction, e1, pre-commit-transaction): the deferred
        // coupling rewrite of §3.1 — fires exactly once per transaction.
        let d = detector();
        let expr = parse_event_expr("A*(begin-transaction, e1, pre-commit-transaction)").unwrap();
        let ev = d.define_named("def_rule_event", &expr).unwrap();
        d.subscribe(ev, ParamContext::Recent, 1).unwrap();

        d.signal_explicit("begin-transaction", Vec::new(), Some(1));
        sell(&d, 1, 10, 1);
        sell(&d, 1, 20, 1);
        sell(&d, 1, 30, 1);
        let dets = d.signal_explicit("pre-commit-transaction", Vec::new(), Some(1));
        assert_eq!(dets.len(), 1, "deferred rule executes exactly once");
        // All three triggerings are in the parameter list (net effect).
        let prims = dets[0].occurrence.param_list();
        let sells = prims.iter().filter(|p| &*p.event_name == "e1").count();
        assert_eq!(sells, 3);

        // Second transaction with no e1: no firing at pre-commit.
        d.signal_explicit("begin-transaction", Vec::new(), Some(2));
        let dets = d.signal_explicit("pre-commit-transaction", Vec::new(), Some(2));
        assert!(dets.is_empty());
    }

    #[test]
    fn temporal_plus_fires_via_clock_advance() {
        let d = detector();
        let expr = parse_event_expr("PLUS(e1, 100)").unwrap();
        let ev = d.define_named("late", &expr).unwrap();
        d.subscribe(ev, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1); // ts = 1, due = 101
        assert!(d.advance_time(100).is_empty());
        let dets = d.advance_time(101);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].occurrence.at, 101);
    }

    #[test]
    fn periodic_fires_between_start_and_end_events() {
        let d = detector();
        let expr = parse_event_expr("P(e1, 10, e3)").unwrap();
        let ev = d.define_named("tick", &expr).unwrap();
        d.subscribe(ev, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1); // ts=1 -> ticks at 11, 21, …
        let dets = d.advance_time(25);
        assert_eq!(dets.len(), 2);
        assert_eq!(dets[0].occurrence.at, 11);
        assert_eq!(dets[1].occurrence.at, 21);
        set_price(&d, 1, 1.0, 1); // end closes the window
        assert!(d.advance_time(100).is_empty());
    }

    #[test]
    fn batch_replay_reproduces_online_detections() {
        // Online run with recording.
        let online = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = online.define_named("e4", &expr).unwrap();
        online.subscribe(e4, ParamContext::Chronicle, 1).unwrap();
        online.start_recording();
        sell(&online, 1, 10, 1);
        let online_dets = set_price(&online, 1, 2.0, 1);
        let log = online.take_log();
        assert_eq!(log.len(), 3);

        // Batch run over the stored log with the same graph shape.
        let batch = detector();
        let e4b = batch.define_named("e4", &expr).unwrap();
        batch.subscribe(e4b, ParamContext::Chronicle, 1).unwrap();
        let batch_dets = batch.replay(&log);
        assert_eq!(batch_dets.len(), online_dets.len());
        assert_eq!(
            batch_dets[0].occurrence.param_list().len(),
            online_dets[0].occurrence.param_list().len()
        );
        assert_eq!(batch_dets[0].occurrence.at, online_dets[0].occurrence.at);
    }

    #[test]
    fn unsubscribe_stops_detection_when_counter_zero() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1);
        d.unsubscribe(e4, ParamContext::Recent, 1).unwrap();
        // Buffered state dropped; re-subscribing starts fresh (NOW-like).
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        let dets = set_price(&d, 1, 2.0, 1);
        assert!(dets.is_empty(), "old initiator must be gone");
    }

    #[test]
    fn stats_count_signals_and_per_event_occurrences() {
        let d = detector();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let e4 = d.define_named("e4", &expr).unwrap();
        d.subscribe(e4, ParamContext::Recent, 1).unwrap();
        sell(&d, 1, 10, 1); // e1
        sell(&d, 1, 20, 1); // e1
        set_price(&d, 1, 2.0, 1); // e2 + e3 (two signals) -> e4 detected
        let stats = d.stats();
        assert_eq!(stats.signals, 4);
        let count = |name: &str| {
            stats.per_event.iter().find(|(n, _)| &**n == name).map(|(_, c)| *c).unwrap_or(0)
        };
        assert_eq!(count("e1"), 2);
        assert_eq!(count("e2"), 1);
        assert_eq!(count("e4"), 1, "composite detections counted too");
    }

    #[test]
    fn nested_composites_flow_upward() {
        let d = detector();
        let expr = parse_event_expr("(e1 ^ e2) ; e3").unwrap();
        let ev = d.define_named("nested", &expr).unwrap();
        d.subscribe(ev, ParamContext::Chronicle, 1).unwrap();
        sell(&d, 1, 10, 1); // e1
                            // set_price raises begin(e2) at t2 and end(e3) at t3:
                            // (e1 ^ e2) completes at t2, then e3 at t3 completes the SEQ.
        let dets = set_price(&d, 1, 2.0, 1);
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].occurrence.param_list().len(), 3);
    }
}
