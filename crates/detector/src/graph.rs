//! The event graph: operator DAG with shared sub-expressions, subscriber
//! edges and per-context reference counters (paper §3.2).
//!
//! * Leaf nodes are primitive events — method events (class- or
//!   instance-level), transaction events, or explicit events.
//! * Internal nodes are Snoop operators; structurally identical nodes are
//!   hash-consed so "common event sub-expressions are represented only once
//!   in the event graph" (§3.1).
//! * "Every node of the event graph has outgoing edges equal to the number
//!   of subscribers it has" — here: `parents` edges to operator nodes (with
//!   the child *role*: left/right, start/mid/end, …) plus per-context rule
//!   subscriber lists.
//! * Each node carries a counter per parameter context; a rule subscription
//!   propagates its context through the sub-graph, and a node detects in a
//!   context only while that counter is non-zero (§3.2 item 1).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, MutexGuard};
use sentinel_snoop::ast::{EventExpr, EventModifier};
use sentinel_snoop::ParamContext;

use crate::detector::SubscriberId;
use crate::nodes::CtxState;

/// Identifies a node of the event graph — and doubles as the identifier of
/// the event that node detects.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct EventId(pub u32);

/// Whether a method-event leaf fires for all instances of its class or for
/// one specific instance (paper §3.1 class-level vs instance-level events).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimTarget {
    /// Class-level: all instances.
    AnyInstance,
    /// Instance-level: only the object with this oid.
    Instance(u64),
}

/// The operator (or leaf flavour) of a graph node.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A primitive event leaf.
    Primitive {
        /// Class the monitored method belongs to (None for explicit and
        /// transaction events, which match by name alone).
        class: Option<Arc<str>>,
        /// Which invocation edge(s) fire it.
        modifier: EventModifier,
        /// Canonical method signature (None for explicit events).
        sig: Option<Arc<str>>,
        /// Class- or instance-level.
        target: PrimTarget,
    },
    /// Conjunction (roles: 0 = left, 1 = right).
    And(EventId, EventId),
    /// Disjunction (roles: 0 = left, 1 = right).
    Or(EventId, EventId),
    /// Sequence (roles: 0 = first, 1 = second).
    Seq(EventId, EventId),
    /// `ANY(m, …)` (role = child index).
    Any {
        /// Required number of distinct constituent types.
        m: u32,
        /// Candidate children.
        children: Vec<EventId>,
    },
    /// `NOT(inner)[start, end]` (roles: 0 = start, 1 = inner, 2 = end).
    Not {
        /// Interval opener.
        start: EventId,
        /// Monitored (must not occur).
        inner: EventId,
        /// Interval closer.
        end: EventId,
    },
    /// `A(start, mid, end)` (roles: 0 = start, 1 = mid, 2 = end).
    Aperiodic {
        /// Window opener.
        start: EventId,
        /// Monitored event.
        mid: EventId,
        /// Window closer.
        end: EventId,
    },
    /// `A*(start, mid, end)` (roles as [`NodeKind::Aperiodic`]).
    AperiodicStar {
        /// Window opener.
        start: EventId,
        /// Accumulated event.
        mid: EventId,
        /// Window closer / detection point.
        end: EventId,
    },
    /// `P(start, t, end)` (roles: 0 = start, 2 = end).
    Periodic {
        /// Window opener.
        start: EventId,
        /// Period in ticks.
        period: u64,
        /// Window closer.
        end: EventId,
    },
    /// `P*(start, t, end)` (roles as [`NodeKind::Periodic`]).
    PeriodicStar {
        /// Window opener.
        start: EventId,
        /// Period in ticks.
        period: u64,
        /// Window closer / detection point.
        end: EventId,
    },
    /// `PLUS(inner, t)` (role: 0 = inner).
    Plus {
        /// Anchoring event.
        inner: EventId,
        /// Offset in ticks.
        delta: u64,
    },
}

impl NodeKind {
    /// `(child, role)` pairs of this operator.
    pub fn children(&self) -> Vec<(EventId, u8)> {
        match self {
            NodeKind::Primitive { .. } => Vec::new(),
            NodeKind::And(a, b) | NodeKind::Or(a, b) | NodeKind::Seq(a, b) => {
                vec![(*a, 0), (*b, 1)]
            }
            NodeKind::Any { children, .. } => {
                children.iter().enumerate().map(|(i, c)| (*c, i as u8)).collect()
            }
            NodeKind::Not { start, inner, end } => vec![(*start, 0), (*inner, 1), (*end, 2)],
            NodeKind::Aperiodic { start, mid, end }
            | NodeKind::AperiodicStar { start, mid, end } => {
                vec![(*start, 0), (*mid, 1), (*end, 2)]
            }
            NodeKind::Periodic { start, end, .. } | NodeKind::PeriodicStar { start, end, .. } => {
                vec![(*start, 0), (*end, 2)]
            }
            NodeKind::Plus { inner, .. } => vec![(*inner, 0)],
        }
    }

    /// Whether this node produces time-driven occurrences.
    pub fn is_temporal(&self) -> bool {
        matches!(
            self,
            NodeKind::Periodic { .. } | NodeKind::PeriodicStar { .. } | NodeKind::Plus { .. }
        )
    }
}

/// One node of the event graph.
#[derive(Debug)]
pub struct Node {
    /// This node's id.
    pub id: EventId,
    /// Display/lookup name (named events keep their name; anonymous
    /// sub-expressions get their canonical expression string).
    pub name: Arc<str>,
    /// Operator or leaf flavour.
    pub kind: NodeKind,
    /// Subscriber edges to parent operator nodes: `(parent, role at parent)`.
    pub parents: Vec<(EventId, u8)>,
    /// Per-context active-subscription counters.
    pub ctx_count: [u32; 4],
    /// Per-context detection state.
    pub state: [CtxState; 4],
    /// Rule subscribers per context.
    pub rule_subs: [Vec<SubscriberId>; 4],
    /// Occurrences this node emitted, per context (composite detections
    /// and temporal firings). Plain integers: all node access happens
    /// under the graph lock.
    pub emitted: [u64; 4],
    /// Child occurrences delivered to this node, per context.
    pub consumed: [u64; 4],
}

impl Node {
    fn new(id: EventId, name: Arc<str>, kind: NodeKind) -> Self {
        Node {
            id,
            name,
            kind,
            parents: Vec::new(),
            ctx_count: [0; 4],
            state: Default::default(),
            rule_subs: Default::default(),
            emitted: [0; 4],
            consumed: [0; 4],
        }
    }

    /// Total occurrences emitted across all contexts.
    pub fn total_emitted(&self) -> u64 {
        self.emitted.iter().sum()
    }

    /// Total child occurrences consumed across all contexts.
    pub fn total_consumed(&self) -> u64 {
        self.consumed.iter().sum()
    }

    /// Whether any context is active on this node.
    pub fn any_active(&self) -> bool {
        self.ctx_count.iter().any(|&c| c > 0)
    }

    /// Whether `ctx` is active on this node.
    #[inline]
    pub fn active(&self, ctx: ParamContext) -> bool {
        self.ctx_count[ctx.index()] > 0
    }
}

/// Errors raised while building or subscribing to the graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A name was redefined with a different structure.
    Redefinition(String),
    /// An expression referenced an unknown event and auto-declaration was
    /// disabled.
    UnknownEvent(String),
    /// Subscribe/unsubscribe on an unknown event id.
    UnknownId(EventId),
    /// Unsubscribe without a matching subscription.
    NotSubscribed,
}

impl std::fmt::Display for GraphError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GraphError::Redefinition(n) => write!(f, "event `{n}` redefined incompatibly"),
            GraphError::UnknownEvent(n) => write!(f, "unknown event `{n}`"),
            GraphError::UnknownId(id) => write!(f, "unknown event id {id:?}"),
            GraphError::NotSubscribed => f.write_str("no matching subscription"),
        }
    }
}

impl std::error::Error for GraphError {}

/// The event graph.
///
/// Nodes sit behind individual mutexes so shard workers can mutate
/// disjoint connected components concurrently while sharing one graph
/// behind a read lock; the detector's per-shard order locks serialize all
/// access *within* a component, so the node mutexes are uncontended in
/// practice and exist to make the sharing data-race-free.
#[derive(Debug, Default)]
pub struct EventGraph {
    nodes: Vec<Mutex<Node>>,
    /// name -> node (named events: primitives, explicit, named composites).
    names: HashMap<Arc<str>, EventId>,
    /// Structural sharing of operator nodes.
    interned: HashMap<NodeKind, EventId>,
    /// class name -> primitive leaves declared on it ("each of the primitive
    /// events defined is maintained as a list based on the class on which it
    /// is defined", §3.2).
    by_class: HashMap<Arc<str>, Vec<EventId>>,
    /// Shard label per node, parallel to `nodes`. A shard is a connected
    /// component of the operator DAG (with all method leaves of one class
    /// coupled, since a single `notify` feeds them atomically); composing
    /// a node over children in different components unions them.
    labels: Vec<u32>,
    /// Labels ever allocated. Labels are never recycled, so after merges
    /// some labels below this bound own no nodes.
    allocated_shards: u32,
    /// `(winner, loser)` component unions not yet applied by the detector
    /// (which migrates per-shard runtime state loser → winner).
    merges: Vec<(u32, u32)>,
}

impl EventGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Validates that `id` names a node of this graph. The unchecked
    /// accessors below index directly (internal ids are valid by
    /// construction); public detector entry points taking caller-supplied
    /// ids go through this first.
    pub fn check(&self, id: EventId) -> Result<(), GraphError> {
        if (id.0 as usize) < self.nodes.len() {
            Ok(())
        } else {
            Err(GraphError::UnknownId(id))
        }
    }

    /// Locks and borrows a node. The guard derefs mutably, so shard
    /// workers holding the graph read lock use this for state updates too.
    pub fn node(&self, id: EventId) -> MutexGuard<'_, Node> {
        self.nodes[id.0 as usize].lock()
    }

    /// Mutably borrow a node (exclusive graph access, no locking).
    pub fn node_mut(&mut self, id: EventId) -> &mut Node {
        self.nodes[id.0 as usize].get_mut()
    }

    /// Shard (connected component) label of a node.
    pub fn shard_of(&self, id: EventId) -> u32 {
        self.labels[id.0 as usize]
    }

    /// Number of shard labels ever allocated. Shard-indexed tables are
    /// sized by this; merged-away labels simply go idle.
    pub fn shard_count(&self) -> u32 {
        self.allocated_shards
    }

    /// Shard label per node, parallel to node ids.
    pub fn shard_labels(&self) -> &[u32] {
        &self.labels
    }

    /// Drains the component unions performed since the last call, as
    /// `(winner, loser)` label pairs in the order they happened. The
    /// detector applies these by migrating per-shard runtime state.
    pub fn take_merges(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.merges)
    }

    /// Number of nodes (the ablation benches report this).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a named event.
    pub fn lookup(&self, name: &str) -> Option<EventId> {
        self.names.get(name).copied()
    }

    /// Name of an event id.
    pub fn name_of(&self, id: EventId) -> Arc<str> {
        self.node(id).name.clone()
    }

    /// Primitive leaves declared on `class`.
    pub fn class_events(&self, class: &str) -> &[EventId] {
        self.by_class.get(class).map_or(&[], |v| v.as_slice())
    }

    fn push_node(&mut self, name: Arc<str>, kind: NodeKind) -> EventId {
        let id = EventId(self.nodes.len() as u32);
        let children = kind.children();
        let shard = if children.is_empty() {
            let s = self.allocated_shards;
            self.allocated_shards += 1;
            s
        } else {
            // A composite joins its children's components: the smallest
            // label wins (deterministic across identical DDL sequences,
            // which snapshot byte-equality tests rely on).
            let winner =
                children.iter().map(|(c, _)| self.labels[c.0 as usize]).min().expect("children");
            for (c, _) in &children {
                let l = self.labels[c.0 as usize];
                if l != winner {
                    self.merge_shards(winner, l);
                }
            }
            winner
        };
        self.nodes.push(Mutex::new(Node::new(id, name, kind)));
        self.labels.push(shard);
        for (child, role) in children {
            self.nodes[child.0 as usize].get_mut().parents.push((id, role));
        }
        id
    }

    /// Relabels every node in component `loser` to `winner` and queues the
    /// union for the detector's runtime-state migration.
    fn merge_shards(&mut self, winner: u32, loser: u32) {
        debug_assert_ne!(winner, loser);
        for l in &mut self.labels {
            if *l == loser {
                *l = winner;
            }
        }
        self.merges.push((winner, loser));
    }

    /// Declares a method-event primitive (idempotent on identical redefinition).
    pub fn declare_primitive(
        &mut self,
        name: &str,
        class: &str,
        modifier: EventModifier,
        sig: &str,
        target: PrimTarget,
    ) -> Result<EventId, GraphError> {
        let kind = NodeKind::Primitive {
            class: Some(Arc::from(class)),
            modifier,
            sig: Some(Arc::from(sig)),
            target,
        };
        if let Some(&existing) = self.names.get(name) {
            return if self.nodes[existing.0 as usize].get_mut().kind == kind {
                Ok(existing)
            } else {
                Err(GraphError::Redefinition(name.to_string()))
            };
        }
        let name: Arc<str> = Arc::from(name);
        let id = self.push_node(name.clone(), kind);
        self.names.insert(name, id);
        let list = self.by_class.entry(Arc::from(class)).or_default();
        list.push(id);
        let first = list[0];
        // One `notify` feeds every method leaf of the class atomically, so
        // the class's leaves are detection-order-coupled: keep them in one
        // shard (this also makes every signal single-shard).
        let (a, b) = (self.labels[first.0 as usize], self.labels[id.0 as usize]);
        if a != b {
            self.merge_shards(a.min(b), a.max(b));
        }
        Ok(id)
    }

    /// Declares an explicit (abstract) event matched by name only —
    /// transaction events, global events, user-raised events.
    pub fn declare_explicit(&mut self, name: &str) -> EventId {
        if let Some(&id) = self.names.get(name) {
            return id;
        }
        let kind = NodeKind::Primitive {
            class: None,
            modifier: EventModifier::Both,
            sig: None,
            target: PrimTarget::AnyInstance,
        };
        let name: Arc<str> = Arc::from(name);
        let id = self.push_node(name.clone(), kind);
        self.names.insert(name, id);
        id
    }

    /// Builds (with sharing) the sub-graph for `expr`. Unknown references
    /// are auto-declared as explicit events when `auto_declare` is set,
    /// otherwise they are an error.
    pub fn build_expr(
        &mut self,
        expr: &EventExpr,
        auto_declare: bool,
    ) -> Result<EventId, GraphError> {
        let id = match expr {
            EventExpr::Ref(name) => match self.names.get(name.as_str()) {
                Some(&id) => id,
                None if auto_declare => self.declare_explicit(name),
                None => return Err(GraphError::UnknownEvent(name.clone())),
            },
            EventExpr::And(a, b) => {
                let a = self.build_expr(a, auto_declare)?;
                let b = self.build_expr(b, auto_declare)?;
                self.intern(expr, NodeKind::And(a, b))
            }
            EventExpr::Or(a, b) => {
                let a = self.build_expr(a, auto_declare)?;
                let b = self.build_expr(b, auto_declare)?;
                self.intern(expr, NodeKind::Or(a, b))
            }
            EventExpr::Seq(a, b) => {
                let a = self.build_expr(a, auto_declare)?;
                let b = self.build_expr(b, auto_declare)?;
                self.intern(expr, NodeKind::Seq(a, b))
            }
            EventExpr::Any { m, events } => {
                let children = events
                    .iter()
                    .map(|e| self.build_expr(e, auto_declare))
                    .collect::<Result<Vec<_>, _>>()?;
                self.intern(expr, NodeKind::Any { m: *m, children })
            }
            EventExpr::Not { inner, start, end } => {
                let start = self.build_expr(start, auto_declare)?;
                let inner = self.build_expr(inner, auto_declare)?;
                let end = self.build_expr(end, auto_declare)?;
                self.intern(expr, NodeKind::Not { start, inner, end })
            }
            EventExpr::Aperiodic { start, inner, end } => {
                let start = self.build_expr(start, auto_declare)?;
                let mid = self.build_expr(inner, auto_declare)?;
                let end = self.build_expr(end, auto_declare)?;
                self.intern(expr, NodeKind::Aperiodic { start, mid, end })
            }
            EventExpr::AperiodicStar { start, inner, end } => {
                let start = self.build_expr(start, auto_declare)?;
                let mid = self.build_expr(inner, auto_declare)?;
                let end = self.build_expr(end, auto_declare)?;
                self.intern(expr, NodeKind::AperiodicStar { start, mid, end })
            }
            EventExpr::Periodic { start, period, end } => {
                let start = self.build_expr(start, auto_declare)?;
                let end = self.build_expr(end, auto_declare)?;
                self.intern(expr, NodeKind::Periodic { start, period: *period, end })
            }
            EventExpr::PeriodicStar { start, period, end } => {
                let start = self.build_expr(start, auto_declare)?;
                let end = self.build_expr(end, auto_declare)?;
                self.intern(expr, NodeKind::PeriodicStar { start, period: *period, end })
            }
            EventExpr::Plus { inner, delta } => {
                let inner = self.build_expr(inner, auto_declare)?;
                self.intern(expr, NodeKind::Plus { inner, delta: *delta })
            }
        };
        Ok(id)
    }

    fn intern(&mut self, expr: &EventExpr, kind: NodeKind) -> EventId {
        if let Some(&id) = self.interned.get(&kind) {
            return id;
        }
        let id = self.push_node(Arc::from(expr.to_string()), kind.clone());
        self.interned.insert(kind, id);
        id
    }

    /// Composes an operator node over *existing* node ids (interned like
    /// expression-built nodes). Used by the rule manager's deferred-mode
    /// rewrite, which wraps an already-built event in
    /// `A*(begin-transaction, E, pre-commit-transaction)`.
    pub fn compose(&mut self, name: &str, kind: NodeKind) -> EventId {
        if let Some(&id) = self.interned.get(&kind) {
            return id;
        }
        let id = self.push_node(Arc::from(name), kind.clone());
        self.interned.insert(kind, id);
        id
    }

    /// Adds an additional name for an existing event (the preprocessor
    /// registers class events under `CLASS.event` and aliases the bare
    /// `event` name when it is still free). Fails on conflict.
    pub fn alias(&mut self, name: &str, id: EventId) -> Result<(), GraphError> {
        self.check(id)?;
        match self.names.get(name) {
            Some(&existing) if existing == id => Ok(()),
            Some(_) => Err(GraphError::Redefinition(name.to_string())),
            None => {
                self.names.insert(Arc::from(name), id);
                Ok(())
            }
        }
    }

    /// Defines a *named* composite event (`event e4 = e1 ^ e2`).
    pub fn define_named(
        &mut self,
        name: &str,
        expr: &EventExpr,
        auto_declare: bool,
    ) -> Result<EventId, GraphError> {
        let id = self.build_expr(expr, auto_declare)?;
        if let Some(&existing) = self.names.get(name) {
            return if existing == id {
                Ok(id)
            } else {
                Err(GraphError::Redefinition(name.to_string()))
            };
        }
        let name: Arc<str> = Arc::from(name);
        self.names.insert(name.clone(), id);
        // Upgrade the node's display name from the anonymous expression
        // string to its first user-given name (for traces/DOT/stats).
        let node = self.nodes[id.0 as usize].get_mut();
        if !matches!(node.kind, NodeKind::Primitive { .. }) && node.name.contains(['(', ' ']) {
            node.name = name;
        }
        Ok(id)
    }

    /// Subscribes `sub` to `event` in context `ctx`: increments the context
    /// counter on the whole sub-graph (detection in that context begins on
    /// the 0→1 transition) and records the rule subscriber at the root.
    pub fn subscribe(
        &mut self,
        event: EventId,
        ctx: ParamContext,
        sub: SubscriberId,
    ) -> Result<(), GraphError> {
        self.check(event)?;
        self.bump_ctx(event, ctx, 1);
        self.nodes[event.0 as usize].get_mut().rule_subs[ctx.index()].push(sub);
        Ok(())
    }

    /// Reverses [`Self::subscribe`]; when a node's counter returns to zero
    /// its detection state for that context is dropped ("if the counter is
    /// reset to 0, events are no longer detected in that context").
    pub fn unsubscribe(
        &mut self,
        event: EventId,
        ctx: ParamContext,
        sub: SubscriberId,
    ) -> Result<(), GraphError> {
        self.check(event)?;
        let subs = &mut self.nodes[event.0 as usize].get_mut().rule_subs[ctx.index()];
        let Some(pos) = subs.iter().position(|s| *s == sub) else {
            return Err(GraphError::NotSubscribed);
        };
        subs.remove(pos);
        self.bump_ctx(event, ctx, -1);
        Ok(())
    }

    fn bump_ctx(&mut self, event: EventId, ctx: ParamContext, delta: i32) {
        let mut stack = vec![event];
        while let Some(id) = stack.pop() {
            let node = self.nodes[id.0 as usize].get_mut();
            let c = &mut node.ctx_count[ctx.index()];
            if delta > 0 {
                *c += delta as u32;
            } else {
                *c = c.saturating_sub((-delta) as u32);
                if *c == 0 {
                    node.state[ctx.index()] = CtxState::default();
                }
            }
            for (child, _) in node.kind.children() {
                stack.push(child);
            }
        }
    }

    /// Ids of all temporal nodes with at least one active context (the
    /// detector's alarm scan set).
    pub fn temporal_nodes(&self) -> Vec<EventId> {
        self.nodes
            .iter()
            .map(|m| m.lock())
            .filter(|n| n.kind.is_temporal() && n.any_active())
            .map(|n| n.id)
            .collect()
    }

    /// All node ids (diagnostics).
    pub fn node_ids(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.nodes.len()).map(|i| EventId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_snoop::parse_event_expr;

    fn graph_with_prims() -> EventGraph {
        let mut g = EventGraph::new();
        g.declare_primitive(
            "e1",
            "STOCK",
            EventModifier::End,
            "int sell_stock(int qty)",
            PrimTarget::AnyInstance,
        )
        .unwrap();
        g.declare_primitive(
            "e2",
            "STOCK",
            EventModifier::Begin,
            "void set_price(float price)",
            PrimTarget::AnyInstance,
        )
        .unwrap();
        g
    }

    #[test]
    fn primitive_declaration_is_idempotent_and_conflicts_detected() {
        let mut g = graph_with_prims();
        let id = g
            .declare_primitive(
                "e1",
                "STOCK",
                EventModifier::End,
                "int sell_stock(int qty)",
                PrimTarget::AnyInstance,
            )
            .unwrap();
        assert_eq!(Some(id), g.lookup("e1"));
        let err = g.declare_primitive(
            "e1",
            "STOCK",
            EventModifier::Begin,
            "int sell_stock(int qty)",
            PrimTarget::AnyInstance,
        );
        assert!(matches!(err, Err(GraphError::Redefinition(_))));
    }

    #[test]
    fn class_event_lists_are_maintained() {
        let g = graph_with_prims();
        assert_eq!(g.class_events("STOCK").len(), 2);
        assert!(g.class_events("BOND").is_empty());
    }

    #[test]
    fn common_subexpressions_are_shared() {
        let mut g = graph_with_prims();
        let expr1 = parse_event_expr("e1 ^ e2").unwrap();
        let expr2 = parse_event_expr("(e1 ^ e2) ; e1").unwrap();
        let a = g.build_expr(&expr1, false).unwrap();
        let before = g.len();
        let b = g.build_expr(&expr2, false).unwrap();
        assert_ne!(a, b);
        // Only the SEQ node is new; the AND node is reused.
        assert_eq!(g.len(), before + 1);
        assert!(g.node(a).parents.iter().any(|(p, _)| *p == b));
    }

    #[test]
    fn unknown_refs_error_or_autodeclare() {
        let mut g = EventGraph::new();
        let expr = parse_event_expr("mystery").unwrap();
        assert!(matches!(g.build_expr(&expr, false), Err(GraphError::UnknownEvent(_))));
        let id = g.build_expr(&expr, true).unwrap();
        assert_eq!(g.lookup("mystery"), Some(id));
    }

    #[test]
    fn subscription_counters_propagate_and_reset() {
        let mut g = graph_with_prims();
        let expr = parse_event_expr("e1 ^ e2").unwrap();
        let and = g.define_named("e4", &expr, false).unwrap();
        let e1 = g.lookup("e1").unwrap();

        g.subscribe(and, ParamContext::Chronicle, 7).unwrap();
        assert_eq!(g.node(and).ctx_count[ParamContext::Chronicle.index()], 1);
        assert_eq!(g.node(e1).ctx_count[ParamContext::Chronicle.index()], 1);
        assert_eq!(g.node(e1).ctx_count[ParamContext::Recent.index()], 0);

        g.subscribe(and, ParamContext::Chronicle, 8).unwrap();
        assert_eq!(g.node(e1).ctx_count[ParamContext::Chronicle.index()], 2);

        g.unsubscribe(and, ParamContext::Chronicle, 7).unwrap();
        g.unsubscribe(and, ParamContext::Chronicle, 8).unwrap();
        assert_eq!(g.node(and).ctx_count[ParamContext::Chronicle.index()], 0);
        assert_eq!(g.node(e1).ctx_count[ParamContext::Chronicle.index()], 0);
        assert!(matches!(
            g.unsubscribe(and, ParamContext::Chronicle, 7),
            Err(GraphError::NotSubscribed)
        ));
    }

    #[test]
    fn duplicated_child_counts_twice() {
        let mut g = graph_with_prims();
        let expr = parse_event_expr("e1 ^ e1").unwrap();
        let and = g.build_expr(&expr, false).unwrap();
        let e1 = g.lookup("e1").unwrap();
        g.subscribe(and, ParamContext::Recent, 1).unwrap();
        assert_eq!(g.node(e1).ctx_count[0], 2, "one increment per edge");
        g.unsubscribe(and, ParamContext::Recent, 1).unwrap();
        assert_eq!(g.node(e1).ctx_count[0], 0);
    }

    #[test]
    fn named_event_reuse_and_conflict() {
        let mut g = graph_with_prims();
        let expr = parse_event_expr("e1 | e2").unwrap();
        let id1 = g.define_named("x", &expr, false).unwrap();
        let id2 = g.define_named("x", &expr, false).unwrap();
        assert_eq!(id1, id2);
        let other = parse_event_expr("e1 ^ e2").unwrap();
        assert!(matches!(g.define_named("x", &other, false), Err(GraphError::Redefinition(_))));
    }

    #[test]
    fn temporal_nodes_listed_when_active() {
        let mut g = graph_with_prims();
        let expr = parse_event_expr("P(e1, 10, e2)").unwrap();
        let p = g.build_expr(&expr, false).unwrap();
        assert!(g.temporal_nodes().is_empty(), "inactive until subscribed");
        g.subscribe(p, ParamContext::Recent, 1).unwrap();
        assert_eq!(g.temporal_nodes(), vec![p]);
    }

    #[test]
    fn shards_are_connected_components() {
        let mut g = EventGraph::new();
        let a = g.declare_explicit("a");
        let b = g.declare_explicit("b");
        let c = g.declare_explicit("c");
        assert_ne!(g.shard_of(a), g.shard_of(b));
        assert_ne!(g.shard_of(b), g.shard_of(c));

        // Composing over a and b unions their components.
        let expr = parse_event_expr("a ; b").unwrap();
        let seq = g.build_expr(&expr, false).unwrap();
        assert_eq!(g.shard_of(a), g.shard_of(b));
        assert_eq!(g.shard_of(seq), g.shard_of(a));
        assert_ne!(g.shard_of(c), g.shard_of(a));
        let merges = g.take_merges();
        assert_eq!(merges.len(), 1);
        assert_eq!(merges[0].0, g.shard_of(a));
        assert!(g.take_merges().is_empty(), "merges drain once");

        // A later bridge over both components merges again.
        let expr = parse_event_expr("b ^ c").unwrap();
        g.build_expr(&expr, false).unwrap();
        assert_eq!(g.shard_of(a), g.shard_of(c));
        assert_eq!(g.take_merges().len(), 1);
    }

    #[test]
    fn class_method_leaves_share_a_shard() {
        let g = graph_with_prims();
        let (e1, e2) = (g.lookup("e1").unwrap(), g.lookup("e2").unwrap());
        assert_eq!(g.shard_of(e1), g.shard_of(e2), "one notify feeds both leaves");
    }

    #[test]
    fn roles_are_stable() {
        let kind = NodeKind::Aperiodic { start: EventId(0), mid: EventId(1), end: EventId(2) };
        assert_eq!(kind.children(), vec![(EventId(0), 0), (EventId(1), 1), (EventId(2), 2)]);
        let kind = NodeKind::Periodic { start: EventId(0), period: 5, end: EventId(2) };
        assert_eq!(kind.children(), vec![(EventId(0), 0), (EventId(2), 2)]);
    }
}
