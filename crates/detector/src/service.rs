//! Detector service: the thread-based separation of composite event
//! detection from application execution (Figure 2).
//!
//! The paper separates the local composite event detector from the
//! application using threads because "threads communicate via shared memory
//! …, the overhead involved in creating threads and inter-task communication
//! is low, and it is easy to control the scheduling" (§2.3). Here the
//! detector runs on its own thread behind a crossbeam channel:
//!
//! * [`DetectorService::signal_sync`] mirrors the immediate-mode protocol —
//!   "when a primitive event occurs it is sent to the local composite event
//!   detector and the application waits for the signaling of a composite
//!   event that is detected in the immediate mode";
//! * [`DetectorService::signal_async`] queues the event and returns; the
//!   detections are delivered on [`DetectorService::detections`] (used by
//!   batch feeds and the global event detector).
//!
//! [`DetectorPool`] scales the same protocol across shards: N worker
//! threads, each owning the FIFO queue of the shard labels hashed to it,
//! so signals of one shard are processed in submission order while
//! disjoint shards propagate concurrently. Whole-graph operations
//! (transaction flushes, time advances, DDL, checkpoint pauses) run at a
//! rendezvous barrier: every worker parks after draining its queue, the
//! submitting thread performs the operation against the quiesced
//! detector, and the workers resume.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use sentinel_obs::span::{self, SpanContext};
use sentinel_obs::{Counter, Gauge, Histogram};
use sentinel_snoop::ast::EventModifier;

use crate::clock::Timestamp;
use crate::detector::{Detection, LocalEventDetector};
use crate::occurrence::Value;

/// Callback invoked on the worker thread after a pooled signal has been
/// fully processed and its detections delivered (the network server's
/// in-flight accounting hook).
pub type DoneCallback = Box<dyn FnOnce() + Send>;

/// A one-shot all-workers rendezvous: each worker arrives and parks; the
/// coordinating thread waits for full attendance, performs its operation,
/// then releases everyone.
struct Rendezvous {
    workers: usize,
    /// `(arrived, released)`.
    state: Mutex<(usize, bool)>,
    cv: Condvar,
}

impl Rendezvous {
    fn new(workers: usize) -> Self {
        Rendezvous { workers, state: Mutex::new((0, false)), cv: Condvar::new() }
    }

    /// Worker side: check in and park until released.
    fn arrive(&self) {
        let mut st = self.state.lock();
        st.0 += 1;
        self.cv.notify_all();
        while !st.1 {
            self.cv.wait(&mut st);
        }
    }

    /// Coordinator side: block until every worker has arrived.
    fn wait_all_arrived(&self) {
        let mut st = self.state.lock();
        while st.0 < self.workers {
            self.cv.wait(&mut st);
        }
    }

    /// Coordinator side: resume all parked workers.
    fn release(&self) {
        let mut st = self.state.lock();
        st.1 = true;
        self.cv.notify_all();
    }
}

/// Counters for the service's signal queue: depth (with high-watermark),
/// signals processed, and the latency from enqueue to the end of
/// processing on the detector thread.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Request-queue depth, sampled on every enqueue/dequeue.
    pub queue_depth: Gauge,
    /// Requests fully processed by the service thread.
    pub processed: Counter,
    /// Enqueue-to-processed latency per request, ns.
    pub drain_latency_ns: Histogram,
}

/// A primitive-event signal sent to the service.
#[derive(Debug)]
pub enum Signal {
    /// Wrapper-method notification.
    Method {
        /// Class of the invoked method.
        class: String,
        /// Canonical method signature.
        sig: String,
        /// Invocation edge.
        edge: EventModifier,
        /// Receiver object.
        oid: u64,
        /// Collected parameters.
        params: Vec<(Arc<str>, Value)>,
        /// Enclosing transaction.
        txn: Option<u64>,
    },
    /// Explicit event by name.
    Explicit {
        /// Event name.
        name: String,
        /// Attached parameters.
        params: Vec<(Arc<str>, Value)>,
        /// Enclosing transaction.
        txn: Option<u64>,
    },
    /// Flush all events of a transaction (commit/abort).
    FlushTxn(u64),
    /// Advance logical time (fires temporal alarms).
    AdvanceTime(Timestamp),
}

enum Request {
    /// Process and reply with the detections (immediate-mode rendezvous).
    /// Carries the enqueue instant for drain-latency accounting and the
    /// caller's span context, so provenance survives the thread hop.
    Sync(Signal, Sender<Vec<Detection>>, Instant, Option<SpanContext>),
    /// Process; detections go to the async detections channel.
    Async(Signal, Instant, Option<SpanContext>),
    /// Park at a rendezvous (checkpoint pause): the FIFO queue guarantees
    /// everything enqueued earlier has been fully processed first.
    Park(Arc<Rendezvous>),
    /// Stop the service thread.
    Shutdown,
}

/// Handle to a detector running on its own thread.
pub struct DetectorService {
    detector: Arc<LocalEventDetector>,
    requests: Sender<Request>,
    detections: Receiver<Detection>,
    metrics: Arc<ServiceMetrics>,
    thread: Option<JoinHandle<()>>,
}

impl DetectorService {
    /// Spawns the service thread around `detector`.
    pub fn spawn(detector: Arc<LocalEventDetector>) -> Self {
        let (req_tx, req_rx) = unbounded::<Request>();
        let (det_tx, det_rx) = unbounded::<Detection>();
        let det = detector.clone();
        let metrics = Arc::new(ServiceMetrics::default());
        let m = metrics.clone();
        let thread = std::thread::Builder::new()
            .name(format!("sentinel-detector-{}", detector.app()))
            .spawn(move || {
                while let Ok(req) = req_rx.recv() {
                    m.queue_depth.set(req_rx.len() as u64);
                    let enqueued = match req {
                        Request::Sync(sig, reply, enqueued, span) => {
                            let dets = Self::process(&det, sig, span);
                            // Receiver may have given up; ignore send errors.
                            let _ = reply.send(dets);
                            enqueued
                        }
                        Request::Async(sig, enqueued, span) => {
                            for d in Self::process(&det, sig, span) {
                                let _ = det_tx.send(d);
                            }
                            enqueued
                        }
                        Request::Park(rz) => {
                            rz.arrive();
                            continue;
                        }
                        Request::Shutdown => break,
                    };
                    m.processed.inc();
                    m.drain_latency_ns.record_duration(enqueued.elapsed());
                }
            })
            .expect("spawn detector thread");
        DetectorService {
            detector,
            requests: req_tx,
            detections: det_rx,
            metrics,
            thread: Some(thread),
        }
    }

    fn process(det: &LocalEventDetector, sig: Signal, span: Option<SpanContext>) -> Vec<Detection> {
        // Re-install the enqueuing thread's span so a traced signal keeps
        // its trace id across the queue hop.
        let _guard = span.map(span::push_current);
        match sig {
            Signal::Method { class, sig, edge, oid, params, txn } => {
                det.notify_method(&class, &sig, edge, oid, params, txn)
            }
            Signal::Explicit { name, params, txn } => det.signal_explicit(&name, params, txn),
            Signal::FlushTxn(txn) => {
                det.flush_txn(txn);
                Vec::new()
            }
            Signal::AdvanceTime(ts) => det.advance_time(ts),
        }
    }

    /// The shared detector (for definitions and subscriptions, which are
    /// safe from any thread).
    pub fn detector(&self) -> &Arc<LocalEventDetector> {
        &self.detector
    }

    /// Sends a signal and waits for its detections (immediate mode).
    pub fn signal_sync(&self, sig: Signal) -> Vec<Detection> {
        let (tx, rx) = bounded(1);
        let req = Request::Sync(sig, tx, Instant::now(), span::current());
        if self.requests.send(req).is_err() {
            return Vec::new();
        }
        self.metrics.queue_depth.set(self.requests.len() as u64);
        rx.recv().unwrap_or_default()
    }

    /// Queues a signal; detections arrive on [`Self::detections`].
    pub fn signal_async(&self, sig: Signal) {
        if self.requests.send(Request::Async(sig, Instant::now(), span::current())).is_ok() {
            self.metrics.queue_depth.set(self.requests.len() as u64);
        }
    }

    /// Stream of detections from async signals.
    pub fn detections(&self) -> &Receiver<Detection> {
        &self.detections
    }

    /// Queue/latency counters for this service.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Runs `f` with the service drained and signalling paused: a park
    /// request is queued behind every already-submitted signal, the
    /// service thread processes them all and parks, and only then does
    /// `f` run under [`LocalEventDetector::with_signals_paused`]. Unlike
    /// calling `with_signals_paused` directly, async deliveries sitting
    /// in the service queue cannot race the closure — the checkpoint cut
    /// lands on a drain point.
    pub fn with_paused<R>(&self, f: impl FnOnce() -> R) -> R {
        let rz = Arc::new(Rendezvous::new(1));
        if self.requests.send(Request::Park(rz.clone())).is_err() {
            // Service already shut down: the queue is gone, a plain
            // detector pause is already race-free.
            return self.detector.with_signals_paused(f);
        }
        rz.wait_all_arrived();
        let out = self.detector.with_signals_paused(f);
        rz.release();
        out
    }

    /// Stops the service thread after draining every queued signal.
    ///
    /// The request channel is FIFO, so the `Shutdown` request enqueued here
    /// sorts behind everything already queued: the thread processes all
    /// pending signals (their detections still reach
    /// [`Self::detections`]) and only then exits. Idempotent; `Drop`
    /// delegates here, but callers that need a deterministic drain point —
    /// e.g. a network server's graceful shutdown — should call it
    /// explicitly rather than rely on drop order.
    pub fn shutdown(&mut self) {
        let _ = self.requests.send(Request::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DetectorService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

// --- sharded worker pool ------------------------------------------------

enum PoolRequest {
    /// One routed signal. `at` pre-assigns the timestamp (deterministic
    /// replay/conformance drivers); `None` ticks the clock live on the
    /// worker, under the shard's order lock. `label` is the shard the
    /// signal was routed by (queue-depth accounting).
    Signal {
        sig: Signal,
        at: Option<Timestamp>,
        label: u32,
        enqueued: Instant,
        span: Option<SpanContext>,
        reply: Option<Sender<Vec<Detection>>>,
        done: Option<DoneCallback>,
    },
    /// Park at an all-workers rendezvous (flushes, time advances, DDL,
    /// checkpoint pauses).
    Barrier(Arc<Rendezvous>),
    Shutdown,
}

struct PoolWorker {
    requests: Sender<PoolRequest>,
    thread: Option<JoinHandle<()>>,
}

/// A pool of detector workers with per-shard FIFO routing.
///
/// Each signal is routed by its shard label (`label % workers` picks the
/// queue), so signals of one shard are processed in submission order by
/// one worker — preserving the order the shard's operators depend on —
/// while signals of disjoint shards propagate concurrently on different
/// workers under their own shard order locks.
///
/// Whole-graph operations go through [`DetectorPool::barrier`]: all
/// workers drain their queues and park, the submitting thread runs the
/// operation, and the workers resume. [`Signal::FlushTxn`] and
/// [`Signal::AdvanceTime`] submitted through the signal API are routed to
/// a barrier automatically (they are global fences by definition).
///
/// DDL performed directly against the detector while the pool is running
/// is safe (the graph write lock excludes in-flight signals) but gives no
/// ordering guarantee against queued signals; drivers that need a
/// deterministic cut — e.g. defining a composite that bridges two shards
/// mid-stream — should perform the DDL inside [`DetectorPool::barrier`].
pub struct DetectorPool {
    detector: Arc<LocalEventDetector>,
    workers: Vec<PoolWorker>,
    detections: Receiver<Detection>,
    det_tx: Sender<Detection>,
    metrics: Arc<ServiceMetrics>,
    /// Serializes barrier fan-out so two coordinators cannot interleave
    /// their park requests across worker queues (which would deadlock:
    /// each barrier would wait on workers parked in the other).
    barrier_lock: Mutex<()>,
}

impl DetectorPool {
    /// Spawns `workers` detector worker threads around `detector`.
    pub fn spawn(detector: Arc<LocalEventDetector>, workers: usize) -> Self {
        let workers = workers.max(1);
        let (det_tx, det_rx) = unbounded::<Detection>();
        let metrics = Arc::new(ServiceMetrics::default());
        let pool_workers = (0..workers)
            .map(|i| {
                let (req_tx, req_rx) = unbounded::<PoolRequest>();
                let det = detector.clone();
                let out = det_tx.clone();
                let m = metrics.clone();
                let thread = std::thread::Builder::new()
                    .name(format!("sentinel-detector-{}-w{i}", detector.app()))
                    .spawn(move || Self::worker_loop(&det, &req_rx, &out, &m))
                    .expect("spawn detector pool worker");
                PoolWorker { requests: req_tx, thread: Some(thread) }
            })
            .collect();
        DetectorPool {
            detector,
            workers: pool_workers,
            detections: det_rx,
            det_tx,
            metrics,
            barrier_lock: Mutex::new(()),
        }
    }

    fn worker_loop(
        det: &LocalEventDetector,
        requests: &Receiver<PoolRequest>,
        out: &Sender<Detection>,
        metrics: &ServiceMetrics,
    ) {
        while let Ok(req) = requests.recv() {
            match req {
                PoolRequest::Signal { sig, at, label, enqueued, span, reply, done } => {
                    det.shard_queue_delta(label, -1);
                    metrics.queue_depth.set(requests.len() as u64);
                    let dets = {
                        let _guard = span.map(span::push_current);
                        Self::process_at(det, sig, at)
                    };
                    match reply {
                        Some(tx) => {
                            let _ = tx.send(dets);
                        }
                        None => {
                            for d in dets {
                                let _ = out.send(d);
                            }
                        }
                    }
                    if let Some(done) = done {
                        done();
                    }
                    metrics.processed.inc();
                    metrics.drain_latency_ns.record_duration(enqueued.elapsed());
                }
                PoolRequest::Barrier(rz) => rz.arrive(),
                PoolRequest::Shutdown => break,
            }
        }
    }

    fn process_at(det: &LocalEventDetector, sig: Signal, at: Option<Timestamp>) -> Vec<Detection> {
        match sig {
            Signal::Method { class, sig, edge, oid, params, txn } => match at {
                // Live even with a pre-assigned timestamp: pool-delivered
                // signals must reach the log/sink (only journal *replay*
                // uses the non-live `_at` variants).
                Some(ts) => det.notify_method_at_live(&class, &sig, edge, oid, params, txn, ts),
                None => det.notify_method(&class, &sig, edge, oid, params, txn),
            },
            Signal::Explicit { name, params, txn } => match at {
                Some(ts) => det.signal_explicit_at_live(&name, params, txn, ts),
                None => det.signal_explicit(&name, params, txn),
            },
            // Routed to a barrier by submit(); unreachable on workers.
            Signal::FlushTxn(txn) => {
                det.flush_txn(txn);
                Vec::new()
            }
            Signal::AdvanceTime(ts) => det.advance_time(ts),
        }
    }

    /// The shared detector (for definitions and subscriptions).
    pub fn detector(&self) -> &Arc<LocalEventDetector> {
        &self.detector
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Stream of detections from async signals.
    pub fn detections(&self) -> &Receiver<Detection> {
        &self.detections
    }

    /// Queue/latency counters for this pool (aggregated over workers).
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// The shard label a signal routes by (declaring unknown explicit
    /// events so routing stays stable from the first submission).
    fn route(&self, sig: &Signal) -> u32 {
        match sig {
            Signal::Method { class, .. } => self.detector.shard_of_class(class).unwrap_or(0),
            Signal::Explicit { name, .. } => self.detector.shard_of_event(name),
            // Global fences carry no shard; submit() routes them to a
            // barrier instead.
            Signal::FlushTxn(_) | Signal::AdvanceTime(_) => 0,
        }
    }

    fn submit(
        &self,
        sig: Signal,
        at: Option<Timestamp>,
        reply: Option<Sender<Vec<Detection>>>,
        done: Option<DoneCallback>,
    ) {
        match sig {
            Signal::FlushTxn(txn) => {
                self.barrier(|det| det.flush_txn(txn));
                if let Some(tx) = reply {
                    let _ = tx.send(Vec::new());
                }
                if let Some(done) = done {
                    done();
                }
            }
            Signal::AdvanceTime(ts) => {
                let dets = self.barrier(|det| det.advance_time(ts));
                match reply {
                    Some(tx) => {
                        let _ = tx.send(dets);
                    }
                    None => {
                        for d in dets {
                            let _ = self.det_tx.send(d);
                        }
                    }
                }
                if let Some(done) = done {
                    done();
                }
            }
            sig => {
                let label = self.route(&sig);
                let worker = &self.workers[label as usize % self.workers.len()];
                self.detector.shard_queue_delta(label, 1);
                let req = PoolRequest::Signal {
                    sig,
                    at,
                    label,
                    enqueued: Instant::now(),
                    span: span::current(),
                    reply,
                    done,
                };
                if worker.requests.send(req).is_err() {
                    // Pool shut down; balance the gauge.
                    self.detector.shard_queue_delta(label, -1);
                } else {
                    self.metrics
                        .queue_depth
                        .set(self.workers.iter().map(|w| w.requests.len() as u64).sum::<u64>());
                }
            }
        }
    }

    /// Sends a signal to its shard's worker and waits for its detections
    /// (immediate mode).
    pub fn signal_sync(&self, sig: Signal) -> Vec<Detection> {
        let (tx, rx) = bounded(1);
        self.submit(sig, None, Some(tx), None);
        rx.recv().unwrap_or_default()
    }

    /// Queues a signal on its shard's worker; detections arrive on
    /// [`Self::detections`].
    pub fn signal_async(&self, sig: Signal) {
        self.submit(sig, None, None, None);
    }

    /// Queues a signal with a pre-assigned timestamp (deterministic
    /// conformance drivers): the worker advances the shared clock to `ts`
    /// instead of ticking it.
    pub fn signal_async_at(&self, sig: Signal, ts: Timestamp) {
        self.submit(sig, Some(ts), None, None);
    }

    /// Queues a signal with a completion callback, invoked on the worker
    /// thread after the detections have been delivered (the network
    /// server's in-flight accounting).
    pub fn signal_async_done(&self, sig: Signal, done: DoneCallback) {
        self.submit(sig, None, None, Some(done));
    }

    /// Runs `f` against the detector with every worker drained and parked
    /// at a rendezvous: each worker's FIFO queue is processed to the
    /// barrier first, so `f` observes (and the operation applies at) a
    /// deterministic cut between everything submitted before and after.
    pub fn barrier<R>(&self, f: impl FnOnce(&LocalEventDetector) -> R) -> R {
        let _fan = self.barrier_lock.lock();
        let rz = Arc::new(Rendezvous::new(self.workers.len()));
        let mut sent = 0;
        for w in &self.workers {
            if w.requests.send(PoolRequest::Barrier(rz.clone())).is_ok() {
                sent += 1;
            }
        }
        if sent < self.workers.len() {
            // Pool shut down mid-fan-out: release any worker that did
            // receive the barrier and run the operation directly.
            rz.release();
            return f(&self.detector);
        }
        rz.wait_all_arrived();
        let out = f(&self.detector);
        rz.release();
        out
    }

    /// Runs `f` with the pool drained and signalling paused in every
    /// shard (see [`LocalEventDetector::with_signals_paused`]): the
    /// checkpoint-cut primitive for pooled deployments.
    pub fn with_paused<R>(&self, f: impl FnOnce() -> R) -> R {
        self.barrier(|det| det.with_signals_paused(f))
    }

    /// Stops every worker after draining its queue. Idempotent; `Drop`
    /// delegates here.
    pub fn shutdown(&mut self) {
        for w in &self.workers {
            let _ = w.requests.send(PoolRequest::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(t) = w.thread.take() {
                let _ = t.join();
            }
        }
    }
}

impl Drop for DetectorPool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PrimTarget;
    use sentinel_snoop::{parse_event_expr, ParamContext};

    fn service() -> DetectorService {
        let det = Arc::new(LocalEventDetector::new(1));
        det.declare_primitive("ev", "C", EventModifier::End, "void f()", PrimTarget::AnyInstance)
            .unwrap();
        DetectorService::spawn(det)
    }

    fn method_signal(txn: u64) -> Signal {
        Signal::Method {
            class: "C".into(),
            sig: "void f()".into(),
            edge: EventModifier::End,
            oid: 1,
            params: Vec::new(),
            txn: Some(txn),
        }
    }

    #[test]
    fn sync_signal_returns_detections_inline() {
        let svc = service();
        let ev = svc.detector().lookup("ev").unwrap();
        svc.detector().subscribe(ev, ParamContext::Recent, 9).unwrap();
        let dets = svc.signal_sync(method_signal(1));
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].subscribers, vec![9]);
    }

    #[test]
    fn async_signals_stream_detections() {
        let svc = service();
        let det = svc.detector();
        let expr = parse_event_expr("ev ; ev").unwrap();
        let seq = det.define_named("evev", &expr).unwrap();
        det.subscribe(seq, ParamContext::Chronicle, 4).unwrap();
        svc.signal_async(method_signal(1));
        svc.signal_async(method_signal(1));
        let d = svc
            .detections()
            .recv_timeout(std::time::Duration::from_secs(2))
            .expect("composite detection");
        assert_eq!(d.event, seq);
        assert_eq!(d.occurrence.param_list().len(), 2);
    }

    #[test]
    fn flush_via_channel_applies_in_order() {
        let svc = service();
        let det = svc.detector();
        let expr = parse_event_expr("ev ; ev").unwrap();
        let seq = det.define_named("evev", &expr).unwrap();
        det.subscribe(seq, ParamContext::Chronicle, 4).unwrap();
        svc.signal_async(method_signal(7));
        svc.signal_async(Signal::FlushTxn(7));
        let dets = svc.signal_sync(method_signal(8));
        assert!(dets.is_empty(), "initiator of T7 flushed before T8's event");
    }

    #[test]
    fn shutdown_on_drop_is_clean() {
        let svc = service();
        drop(svc); // must not hang or panic
    }

    #[test]
    fn shutdown_drains_queued_signals_before_join() {
        let mut svc = service();
        let det = svc.detector().clone();
        let ev = det.lookup("ev").unwrap();
        det.subscribe(ev, ParamContext::Recent, 9).unwrap();
        const K: u64 = 64;
        for _ in 0..K {
            svc.signal_async(method_signal(1));
        }
        svc.shutdown();
        assert_eq!(svc.metrics().processed.get(), K, "every queued signal processed");
        assert_eq!(svc.detections().try_iter().count(), K as usize, "no detection lost");
        // Idempotent: a second shutdown (and the eventual drop) is a no-op.
        svc.shutdown();
        assert_eq!(svc.metrics().processed.get(), K);
    }

    #[test]
    fn service_with_paused_drains_queue_before_closure() {
        let svc = service();
        let det = svc.detector().clone();
        let ev = det.lookup("ev").unwrap();
        det.subscribe(ev, ParamContext::Recent, 9).unwrap();
        const K: u64 = 128;
        for _ in 0..K {
            svc.signal_async(method_signal(1));
        }
        let processed = svc.with_paused(|| svc.metrics().processed.get());
        assert_eq!(processed, K, "park request sorts behind every queued signal");
    }

    #[test]
    fn pool_routes_disjoint_shards_and_preserves_shard_order() {
        let det = Arc::new(LocalEventDetector::new(2));
        for name in ["a1", "b1", "a2", "b2"] {
            det.declare_explicit(name);
        }
        let s1 = det.define_named("s1", &parse_event_expr("a1 ; b1").unwrap()).unwrap();
        let s2 = det.define_named("s2", &parse_event_expr("a2 ; b2").unwrap()).unwrap();
        for ctx in ParamContext::ALL {
            det.subscribe(s1, ctx, 1).unwrap();
            det.subscribe(s2, ctx, 2).unwrap();
        }
        let mut pool = DetectorPool::spawn(det, 4);
        const PAIRS: usize = 50;
        for _ in 0..PAIRS {
            for name in ["a1", "a2", "b1", "b2"] {
                pool.signal_async(Signal::Explicit {
                    name: name.into(),
                    params: Vec::new(),
                    txn: None,
                });
            }
        }
        pool.shutdown();
        let dets: Vec<Detection> = pool.detections().try_iter().collect();
        let per = |ev| dets.iter().filter(|d| d.event == ev).count();
        // Recent/Chronicle/Continuous/Cumulative each detect every strictly
        // alternating a;b pair exactly once.
        assert_eq!(per(s1), 4 * PAIRS, "no s1 pair lost or doubled");
        assert_eq!(per(s2), 4 * PAIRS, "no s2 pair lost or doubled");
    }

    #[test]
    fn pool_flush_txn_is_a_global_fence() {
        let det = Arc::new(LocalEventDetector::new(2));
        det.declare_explicit("a");
        det.declare_explicit("b");
        let seq = det.define_named("s", &parse_event_expr("a ; b").unwrap()).unwrap();
        det.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        let pool = DetectorPool::spawn(det, 4);
        pool.signal_async(Signal::Explicit { name: "a".into(), params: Vec::new(), txn: Some(7) });
        pool.signal_async(Signal::FlushTxn(7));
        let dets = pool.signal_sync(Signal::Explicit {
            name: "b".into(),
            params: Vec::new(),
            txn: Some(8),
        });
        assert!(dets.is_empty(), "initiator of T7 flushed before T8's terminator");
    }

    #[test]
    fn pool_with_paused_cuts_identical_snapshots() {
        let det = Arc::new(LocalEventDetector::new(2));
        det.declare_explicit("a");
        det.declare_explicit("b");
        let seq = det.define_named("s", &parse_event_expr("a ; b").unwrap()).unwrap();
        det.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
        let pool = DetectorPool::spawn(det.clone(), 2);
        pool.signal_async(Signal::Explicit { name: "a".into(), params: Vec::new(), txn: None });
        let (x, y) = pool.with_paused(|| (det.snapshot_state(), det.snapshot_state()));
        assert_eq!(x.encode(), y.encode(), "no signal raced the paused closure");
        assert!(!x.is_empty(), "queued initiator drained before the cut");
    }

    #[test]
    fn advance_time_signal_fires_temporal_events() {
        let svc = service();
        let det = svc.detector();
        let plus = det.define_named("later", &parse_event_expr("PLUS(ev, 50)").unwrap()).unwrap();
        det.subscribe(plus, ParamContext::Recent, 3).unwrap();
        svc.signal_async(method_signal(1)); // anchors the PLUS at ts=1
        let dets = svc.signal_sync(Signal::AdvanceTime(100));
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].event, plus);
        assert_eq!(dets[0].occurrence.at, 51);
    }
}
