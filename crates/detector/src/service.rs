//! Detector service: the thread-based separation of composite event
//! detection from application execution (Figure 2).
//!
//! The paper separates the local composite event detector from the
//! application using threads because "threads communicate via shared memory
//! …, the overhead involved in creating threads and inter-task communication
//! is low, and it is easy to control the scheduling" (§2.3). Here the
//! detector runs on its own thread behind a crossbeam channel:
//!
//! * [`DetectorService::signal_sync`] mirrors the immediate-mode protocol —
//!   "when a primitive event occurs it is sent to the local composite event
//!   detector and the application waits for the signaling of a composite
//!   event that is detected in the immediate mode";
//! * [`DetectorService::signal_async`] queues the event and returns; the
//!   detections are delivered on [`DetectorService::detections`] (used by
//!   batch feeds and the global event detector).

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use sentinel_obs::span::{self, SpanContext};
use sentinel_obs::{Counter, Gauge, Histogram};
use sentinel_snoop::ast::EventModifier;

use crate::clock::Timestamp;
use crate::detector::{Detection, LocalEventDetector};
use crate::occurrence::Value;

/// Counters for the service's signal queue: depth (with high-watermark),
/// signals processed, and the latency from enqueue to the end of
/// processing on the detector thread.
#[derive(Debug, Default)]
pub struct ServiceMetrics {
    /// Request-queue depth, sampled on every enqueue/dequeue.
    pub queue_depth: Gauge,
    /// Requests fully processed by the service thread.
    pub processed: Counter,
    /// Enqueue-to-processed latency per request, ns.
    pub drain_latency_ns: Histogram,
}

/// A primitive-event signal sent to the service.
#[derive(Debug)]
pub enum Signal {
    /// Wrapper-method notification.
    Method {
        /// Class of the invoked method.
        class: String,
        /// Canonical method signature.
        sig: String,
        /// Invocation edge.
        edge: EventModifier,
        /// Receiver object.
        oid: u64,
        /// Collected parameters.
        params: Vec<(Arc<str>, Value)>,
        /// Enclosing transaction.
        txn: Option<u64>,
    },
    /// Explicit event by name.
    Explicit {
        /// Event name.
        name: String,
        /// Attached parameters.
        params: Vec<(Arc<str>, Value)>,
        /// Enclosing transaction.
        txn: Option<u64>,
    },
    /// Flush all events of a transaction (commit/abort).
    FlushTxn(u64),
    /// Advance logical time (fires temporal alarms).
    AdvanceTime(Timestamp),
}

enum Request {
    /// Process and reply with the detections (immediate-mode rendezvous).
    /// Carries the enqueue instant for drain-latency accounting and the
    /// caller's span context, so provenance survives the thread hop.
    Sync(Signal, Sender<Vec<Detection>>, Instant, Option<SpanContext>),
    /// Process; detections go to the async detections channel.
    Async(Signal, Instant, Option<SpanContext>),
    /// Stop the service thread.
    Shutdown,
}

/// Handle to a detector running on its own thread.
pub struct DetectorService {
    detector: Arc<LocalEventDetector>,
    requests: Sender<Request>,
    detections: Receiver<Detection>,
    metrics: Arc<ServiceMetrics>,
    thread: Option<JoinHandle<()>>,
}

impl DetectorService {
    /// Spawns the service thread around `detector`.
    pub fn spawn(detector: Arc<LocalEventDetector>) -> Self {
        let (req_tx, req_rx) = unbounded::<Request>();
        let (det_tx, det_rx) = unbounded::<Detection>();
        let det = detector.clone();
        let metrics = Arc::new(ServiceMetrics::default());
        let m = metrics.clone();
        let thread = std::thread::Builder::new()
            .name(format!("sentinel-detector-{}", detector.app()))
            .spawn(move || {
                while let Ok(req) = req_rx.recv() {
                    m.queue_depth.set(req_rx.len() as u64);
                    let enqueued = match req {
                        Request::Sync(sig, reply, enqueued, span) => {
                            let dets = Self::process(&det, sig, span);
                            // Receiver may have given up; ignore send errors.
                            let _ = reply.send(dets);
                            enqueued
                        }
                        Request::Async(sig, enqueued, span) => {
                            for d in Self::process(&det, sig, span) {
                                let _ = det_tx.send(d);
                            }
                            enqueued
                        }
                        Request::Shutdown => break,
                    };
                    m.processed.inc();
                    m.drain_latency_ns.record_duration(enqueued.elapsed());
                }
            })
            .expect("spawn detector thread");
        DetectorService {
            detector,
            requests: req_tx,
            detections: det_rx,
            metrics,
            thread: Some(thread),
        }
    }

    fn process(det: &LocalEventDetector, sig: Signal, span: Option<SpanContext>) -> Vec<Detection> {
        // Re-install the enqueuing thread's span so a traced signal keeps
        // its trace id across the queue hop.
        let _guard = span.map(span::push_current);
        match sig {
            Signal::Method { class, sig, edge, oid, params, txn } => {
                det.notify_method(&class, &sig, edge, oid, params, txn)
            }
            Signal::Explicit { name, params, txn } => det.signal_explicit(&name, params, txn),
            Signal::FlushTxn(txn) => {
                det.flush_txn(txn);
                Vec::new()
            }
            Signal::AdvanceTime(ts) => det.advance_time(ts),
        }
    }

    /// The shared detector (for definitions and subscriptions, which are
    /// safe from any thread).
    pub fn detector(&self) -> &Arc<LocalEventDetector> {
        &self.detector
    }

    /// Sends a signal and waits for its detections (immediate mode).
    pub fn signal_sync(&self, sig: Signal) -> Vec<Detection> {
        let (tx, rx) = bounded(1);
        let req = Request::Sync(sig, tx, Instant::now(), span::current());
        if self.requests.send(req).is_err() {
            return Vec::new();
        }
        self.metrics.queue_depth.set(self.requests.len() as u64);
        rx.recv().unwrap_or_default()
    }

    /// Queues a signal; detections arrive on [`Self::detections`].
    pub fn signal_async(&self, sig: Signal) {
        if self.requests.send(Request::Async(sig, Instant::now(), span::current())).is_ok() {
            self.metrics.queue_depth.set(self.requests.len() as u64);
        }
    }

    /// Stream of detections from async signals.
    pub fn detections(&self) -> &Receiver<Detection> {
        &self.detections
    }

    /// Queue/latency counters for this service.
    pub fn metrics(&self) -> &Arc<ServiceMetrics> {
        &self.metrics
    }

    /// Stops the service thread after draining every queued signal.
    ///
    /// The request channel is FIFO, so the `Shutdown` request enqueued here
    /// sorts behind everything already queued: the thread processes all
    /// pending signals (their detections still reach
    /// [`Self::detections`]) and only then exits. Idempotent; `Drop`
    /// delegates here, but callers that need a deterministic drain point —
    /// e.g. a network server's graceful shutdown — should call it
    /// explicitly rather than rely on drop order.
    pub fn shutdown(&mut self) {
        let _ = self.requests.send(Request::Shutdown);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for DetectorService {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PrimTarget;
    use sentinel_snoop::{parse_event_expr, ParamContext};

    fn service() -> DetectorService {
        let det = Arc::new(LocalEventDetector::new(1));
        det.declare_primitive("ev", "C", EventModifier::End, "void f()", PrimTarget::AnyInstance)
            .unwrap();
        DetectorService::spawn(det)
    }

    fn method_signal(txn: u64) -> Signal {
        Signal::Method {
            class: "C".into(),
            sig: "void f()".into(),
            edge: EventModifier::End,
            oid: 1,
            params: Vec::new(),
            txn: Some(txn),
        }
    }

    #[test]
    fn sync_signal_returns_detections_inline() {
        let svc = service();
        let ev = svc.detector().lookup("ev").unwrap();
        svc.detector().subscribe(ev, ParamContext::Recent, 9).unwrap();
        let dets = svc.signal_sync(method_signal(1));
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].subscribers, vec![9]);
    }

    #[test]
    fn async_signals_stream_detections() {
        let svc = service();
        let det = svc.detector();
        let expr = parse_event_expr("ev ; ev").unwrap();
        let seq = det.define_named("evev", &expr).unwrap();
        det.subscribe(seq, ParamContext::Chronicle, 4).unwrap();
        svc.signal_async(method_signal(1));
        svc.signal_async(method_signal(1));
        let d = svc
            .detections()
            .recv_timeout(std::time::Duration::from_secs(2))
            .expect("composite detection");
        assert_eq!(d.event, seq);
        assert_eq!(d.occurrence.param_list().len(), 2);
    }

    #[test]
    fn flush_via_channel_applies_in_order() {
        let svc = service();
        let det = svc.detector();
        let expr = parse_event_expr("ev ; ev").unwrap();
        let seq = det.define_named("evev", &expr).unwrap();
        det.subscribe(seq, ParamContext::Chronicle, 4).unwrap();
        svc.signal_async(method_signal(7));
        svc.signal_async(Signal::FlushTxn(7));
        let dets = svc.signal_sync(method_signal(8));
        assert!(dets.is_empty(), "initiator of T7 flushed before T8's event");
    }

    #[test]
    fn shutdown_on_drop_is_clean() {
        let svc = service();
        drop(svc); // must not hang or panic
    }

    #[test]
    fn shutdown_drains_queued_signals_before_join() {
        let mut svc = service();
        let det = svc.detector().clone();
        let ev = det.lookup("ev").unwrap();
        det.subscribe(ev, ParamContext::Recent, 9).unwrap();
        const K: u64 = 64;
        for _ in 0..K {
            svc.signal_async(method_signal(1));
        }
        svc.shutdown();
        assert_eq!(svc.metrics().processed.get(), K, "every queued signal processed");
        assert_eq!(svc.detections().try_iter().count(), K as usize, "no detection lost");
        // Idempotent: a second shutdown (and the eventual drop) is a no-op.
        svc.shutdown();
        assert_eq!(svc.metrics().processed.get(), K);
    }

    #[test]
    fn advance_time_signal_fires_temporal_events() {
        let svc = service();
        let det = svc.detector();
        let plus = det.define_named("later", &parse_event_expr("PLUS(ev, 50)").unwrap()).unwrap();
        det.subscribe(plus, ParamContext::Recent, 3).unwrap();
        svc.signal_async(method_signal(1)); // anchors the PLUS at ts=1
        let dets = svc.signal_sync(Signal::AdvanceTime(100));
        assert_eq!(dets.len(), 1);
        assert_eq!(dets[0].event, plus);
        assert_eq!(dets[0].occurrence.at, 51);
    }
}
