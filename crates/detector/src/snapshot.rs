//! Checkpointable event-graph state.
//!
//! A [`GraphSnapshot`] captures everything the detector accumulates while
//! detecting composites — per-node, per-parameter-context operator state
//! (buffered occurrences, open windows, pending temporal alarms) plus the
//! logical clock — so a crashed process can restore the snapshot and
//! replay only the primitive-event journal suffix recorded after it
//! (`crates/durable`). Graph *shape* is deliberately not part of the
//! snapshot: the persistent catalog replays DDL in definition order, which
//! rebuilds identical [`EventId`]s; the snapshot is validated against the
//! rebuilt graph (ids and names must match) before any state is applied.
//!
//! Provenance spans are not persisted — a recovered occurrence carries no
//! span and simply starts a fresh trace if it later terminates a traced
//! composite.

use std::collections::VecDeque;
use std::sync::Arc;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::clock::Timestamp;
use crate::graph::EventId;
use crate::log::{get_opt_txn, get_params, get_str, put_opt_txn, put_params, put_str};
use crate::nodes::{CtxState, Window};
use crate::occurrence::Occurrence;

/// Snapshot magic bytes.
const MAGIC: &[u8; 4] = b"SSNP";
/// Current snapshot format version. Version 1 (pre-sharding) carried no
/// shard labels; version 2 adds a shard label per node. Both decode.
const VERSION: u32 = 2;
/// The pre-sharding format version, still accepted by [`GraphSnapshot::decode`]
/// (and producible via [`GraphSnapshot::encode_with_version`] for
/// compatibility tests).
pub const VERSION_PRE_SHARD: u32 = 1;

/// Captured state of one graph node (only nodes holding any state are
/// included; absent nodes restore to empty state).
#[derive(Debug, Clone)]
pub struct NodeSnapshot {
    /// The node's id in the graph it was captured from.
    pub id: EventId,
    /// The node's display name — restore cross-checks it against the
    /// rebuilt graph so a snapshot can never be applied to the wrong node.
    pub name: Arc<str>,
    /// Shard (connected component) label of the node at capture time.
    /// Informational: restore re-derives sharding from the rebuilt graph,
    /// so snapshots cut before a component merge — including version-1
    /// snapshots, which restore with label 0 — apply cleanly.
    pub shard: u32,
    /// Per-context operator state, in `ParamContext::ALL` order.
    pub state: [CtxState; 4],
}

/// A consistent snapshot of all detection state in the event graph.
#[derive(Debug, Clone, Default)]
pub struct GraphSnapshot {
    /// Logical clock value at capture time (≥ every timestamp inside).
    pub clock: Timestamp,
    /// State-bearing nodes.
    pub nodes: Vec<NodeSnapshot>,
}

/// Why a snapshot refused to restore into a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The snapshot references a node id the graph does not have.
    UnknownNode(EventId),
    /// The node with this id has a different name than the snapshot
    /// expects (the graph was rebuilt differently).
    NameMismatch {
        /// The offending node.
        id: EventId,
        /// Name recorded in the snapshot.
        expected: Arc<str>,
        /// Name found in the graph.
        found: Arc<str>,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::UnknownNode(id) => {
                write!(f, "snapshot references unknown node {id:?}")
            }
            RestoreError::NameMismatch { id, expected, found } => {
                write!(f, "snapshot node {id:?} expects `{expected}`, graph has `{found}`")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

// --- codec -------------------------------------------------------------

fn put_opt_u64(out: &mut BytesMut, v: Option<u64>) {
    put_opt_txn(out, v);
}

fn get_opt_u64(buf: &mut Bytes) -> Option<Option<u64>> {
    get_opt_txn(buf)
}

fn put_occurrence(out: &mut BytesMut, occ: &Occurrence) {
    out.put_u32_le(occ.event.0);
    put_str(out, &occ.event_name);
    out.put_u64_le(occ.at);
    put_opt_txn(out, occ.txn);
    out.put_u32_le(occ.app);
    put_opt_u64(out, occ.source);
    put_params(out, &occ.params);
    out.put_u32_le(occ.constituents.len() as u32);
    for c in &occ.constituents {
        put_occurrence(out, c);
    }
}

fn get_occurrence(buf: &mut Bytes) -> Option<Arc<Occurrence>> {
    if buf.remaining() < 4 {
        return None;
    }
    let event = EventId(buf.get_u32_le());
    let event_name: Arc<str> = Arc::from(get_str(buf)?);
    if buf.remaining() < 8 {
        return None;
    }
    let at = buf.get_u64_le();
    let txn = get_opt_txn(buf)?;
    if buf.remaining() < 4 {
        return None;
    }
    let app = buf.get_u32_le();
    let source = get_opt_u64(buf)?;
    let params = get_params(buf)?;
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut constituents = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        constituents.push(get_occurrence(buf)?);
    }
    Some(Arc::new(Occurrence {
        event,
        event_name,
        at,
        txn,
        app,
        source,
        params,
        constituents,
        span: None,
    }))
}

fn put_window(out: &mut BytesMut, w: &Window) {
    match &w.start {
        Some(o) => {
            out.put_u8(1);
            put_occurrence(out, o);
        }
        None => out.put_u8(0),
    }
    out.put_u32_le(w.mids.len() as u32);
    for m in &w.mids {
        put_occurrence(out, m);
    }
    put_opt_u64(out, w.next_due);
    out.put_u32_le(w.ticks.len() as u32);
    for t in &w.ticks {
        out.put_u64_le(*t);
    }
}

fn get_window(buf: &mut Bytes) -> Option<Window> {
    if buf.remaining() < 1 {
        return None;
    }
    let start = match buf.get_u8() {
        0 => None,
        1 => Some(get_occurrence(buf)?),
        _ => return None,
    };
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut mids = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        mids.push(get_occurrence(buf)?);
    }
    let next_due = get_opt_u64(buf)?;
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut ticks = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        if buf.remaining() < 8 {
            return None;
        }
        ticks.push(buf.get_u64_le());
    }
    Some(Window { start, mids, next_due, ticks })
}

fn put_ctx_state(out: &mut BytesMut, st: &CtxState) {
    out.put_u32_le(st.bufs.len() as u32);
    for b in &st.bufs {
        out.put_u32_le(b.len() as u32);
        for o in b {
            put_occurrence(out, o);
        }
    }
    out.put_u32_le(st.windows.len() as u32);
    for w in &st.windows {
        put_window(out, w);
    }
    put_opt_u64(out, st.last_inner);
    out.put_u32_le(st.pending.len() as u32);
    for (due, anchor) in &st.pending {
        out.put_u64_le(*due);
        put_occurrence(out, anchor);
    }
}

fn get_ctx_state(buf: &mut Bytes) -> Option<CtxState> {
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut bufs = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        if buf.remaining() < 4 {
            return None;
        }
        let m = buf.get_u32_le() as usize;
        let mut q = VecDeque::with_capacity(m.min(1024));
        for _ in 0..m {
            q.push_back(get_occurrence(buf)?);
        }
        bufs.push(q);
    }
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut windows = VecDeque::with_capacity(n.min(1024));
    for _ in 0..n {
        windows.push_back(get_window(buf)?);
    }
    let last_inner = get_opt_u64(buf)?;
    if buf.remaining() < 4 {
        return None;
    }
    let n = buf.get_u32_le() as usize;
    let mut pending = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        if buf.remaining() < 8 {
            return None;
        }
        let due = buf.get_u64_le();
        pending.push((due, get_occurrence(buf)?));
    }
    Some(CtxState { bufs, windows, last_inner, pending })
}

impl GraphSnapshot {
    /// Serializes the snapshot into a self-contained byte stream (current
    /// format version).
    pub fn encode(&self) -> Bytes {
        self.encode_with_version(VERSION)
    }

    /// Serializes the snapshot in a specific format version. Version 1 is
    /// the pre-sharding layout (shard labels are dropped); version 2 is
    /// current. Panics on an unknown version — this exists for
    /// cross-version compatibility tests, not general use.
    pub fn encode_with_version(&self, version: u32) -> Bytes {
        assert!(
            version == VERSION_PRE_SHARD || version == VERSION,
            "unknown snapshot version {version}"
        );
        let mut out = BytesMut::new();
        out.put_slice(MAGIC);
        out.put_u32_le(version);
        out.put_u64_le(self.clock);
        out.put_u32_le(self.nodes.len() as u32);
        for node in &self.nodes {
            out.put_u32_le(node.id.0);
            put_str(&mut out, &node.name);
            if version >= 2 {
                out.put_u32_le(node.shard);
            }
            for st in &node.state {
                put_ctx_state(&mut out, st);
            }
        }
        out.freeze()
    }

    /// Deserializes a snapshot; `None` on any corruption. Both the current
    /// (sharded, version 2) and the pre-shard (version 1) layouts are
    /// accepted; version-1 nodes decode with shard label 0.
    pub fn decode(mut buf: Bytes) -> Option<GraphSnapshot> {
        if buf.remaining() < 20 || &buf.split_to(4)[..] != MAGIC {
            return None;
        }
        let version = buf.get_u32_le();
        if version != VERSION_PRE_SHARD && version != VERSION {
            return None;
        }
        let clock = buf.get_u64_le();
        let n = buf.get_u32_le() as usize;
        let mut nodes = Vec::with_capacity(n.min(65536));
        for _ in 0..n {
            if buf.remaining() < 4 {
                return None;
            }
            let id = EventId(buf.get_u32_le());
            let name: Arc<str> = Arc::from(get_str(&mut buf)?);
            let shard = if version >= 2 {
                if buf.remaining() < 4 {
                    return None;
                }
                buf.get_u32_le()
            } else {
                0
            };
            let state = [
                get_ctx_state(&mut buf)?,
                get_ctx_state(&mut buf)?,
                get_ctx_state(&mut buf)?,
                get_ctx_state(&mut buf)?,
            ];
            nodes.push(NodeSnapshot { id, name, shard, state });
        }
        if buf.has_remaining() {
            return None;
        }
        Some(GraphSnapshot { clock, nodes })
    }

    /// Whether the snapshot carries no state at all.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::PrimTarget;
    use crate::LocalEventDetector;
    use sentinel_snoop::ast::EventModifier;
    use sentinel_snoop::{parse_event_expr, ParamContext};

    fn half_detected() -> LocalEventDetector {
        let d = LocalEventDetector::new(3);
        d.declare_primitive("a", "C", EventModifier::End, "void a()", PrimTarget::AnyInstance)
            .unwrap();
        d.declare_primitive("b", "C", EventModifier::End, "void b()", PrimTarget::AnyInstance)
            .unwrap();
        let seq = d.define_named("ab", &parse_event_expr("(a ; b)").unwrap()).unwrap();
        for ctx in ParamContext::ALL {
            d.subscribe(seq, ctx, 1).unwrap();
        }
        // Half of the SEQ: initiator buffered, nothing detected yet.
        d.notify_method(
            "C",
            "void a()",
            EventModifier::End,
            9,
            vec![(Arc::from("x"), crate::Value::Int(41))],
            Some(7),
        );
        d
    }

    #[test]
    fn snapshot_roundtrips_through_codec() {
        let d = half_detected();
        let snap = d.snapshot_state();
        assert!(!snap.is_empty());
        assert_eq!(snap.clock, 1);
        let decoded = GraphSnapshot::decode(snap.encode()).unwrap();
        assert_eq!(decoded.encode(), snap.encode());
        assert_eq!(decoded.clock, snap.clock);
        assert_eq!(decoded.nodes.len(), snap.nodes.len());
    }

    #[test]
    fn corrupt_snapshots_decode_to_none() {
        let snap = half_detected().snapshot_state();
        let bytes = snap.encode();
        for cut in 0..bytes.len() - 1 {
            assert!(GraphSnapshot::decode(bytes.slice(0..cut)).is_none(), "cut at {cut}");
        }
        let mut bad = bytes.to_vec();
        bad[0] = b'X';
        assert!(GraphSnapshot::decode(Bytes::from(bad)).is_none());
    }

    #[test]
    fn restore_resumes_half_detected_composite() {
        let d = half_detected();
        let snap = d.snapshot_state();

        // A fresh process: same definitions, no signals yet.
        let d2 = LocalEventDetector::new(3);
        d2.declare_primitive("a", "C", EventModifier::End, "void a()", PrimTarget::AnyInstance)
            .unwrap();
        d2.declare_primitive("b", "C", EventModifier::End, "void b()", PrimTarget::AnyInstance)
            .unwrap();
        let seq = d2.define_named("ab", &parse_event_expr("(a ; b)").unwrap()).unwrap();
        for ctx in ParamContext::ALL {
            d2.subscribe(seq, ctx, 1).unwrap();
        }
        d2.restore_snapshot(&snap).unwrap();

        // The terminator alone completes the pre-crash half.
        let dets = d2.notify_method("C", "void b()", EventModifier::End, 9, Vec::new(), Some(7));
        assert_eq!(dets.len(), 4, "one detection per context");
        for det in &dets {
            let prims = det.occurrence.param_list();
            assert_eq!(prims.len(), 2);
            assert_eq!(prims[0].param("x"), Some(&crate::Value::Int(41)));
            assert!(prims[0].at < prims[1].at, "pre-crash initiator ordered first");
        }
    }

    #[test]
    fn pre_shard_v1_snapshot_restores_into_sharded_detector() {
        let d = half_detected();
        let snap = d.snapshot_state();
        // Re-encode in the pre-sharding (version 1) layout, as a durable
        // directory written before the shard upgrade would carry.
        let v1 = snap.encode_with_version(VERSION_PRE_SHARD);
        let decoded = GraphSnapshot::decode(v1).expect("v1 layout still decodes");
        assert!(decoded.nodes.iter().all(|n| n.shard == 0), "v1 nodes default to shard 0");

        let d2 = LocalEventDetector::new(3);
        d2.declare_primitive("a", "C", EventModifier::End, "void a()", PrimTarget::AnyInstance)
            .unwrap();
        d2.declare_primitive("b", "C", EventModifier::End, "void b()", PrimTarget::AnyInstance)
            .unwrap();
        let seq = d2.define_named("ab", &parse_event_expr("(a ; b)").unwrap()).unwrap();
        for ctx in ParamContext::ALL {
            d2.subscribe(seq, ctx, 1).unwrap();
        }
        d2.restore_snapshot(&decoded).unwrap();
        let dets = d2.notify_method("C", "void b()", EventModifier::End, 9, Vec::new(), Some(7));
        assert_eq!(dets.len(), 4, "v1 state detects identically after restore");
    }

    #[test]
    fn restore_rejects_mismatched_graphs() {
        let d = half_detected();
        let snap = d.snapshot_state();

        let empty = LocalEventDetector::new(3);
        match empty.restore_snapshot(&snap) {
            Err(RestoreError::UnknownNode(_)) => {}
            other => panic!("expected UnknownNode, got {other:?}"),
        }

        // Same ids, different names: declaring an extra primitive first
        // shifts every later node, so the snapshot's id points at a node
        // with another name.
        let skewed = LocalEventDetector::new(3);
        skewed
            .declare_primitive("z", "C", EventModifier::End, "void z()", PrimTarget::AnyInstance)
            .unwrap();
        skewed
            .declare_primitive("a", "C", EventModifier::End, "void a()", PrimTarget::AnyInstance)
            .unwrap();
        skewed
            .declare_primitive("b", "C", EventModifier::End, "void b()", PrimTarget::AnyInstance)
            .unwrap();
        let seq = skewed.define_named("ab", &parse_event_expr("(a ; b)").unwrap()).unwrap();
        for ctx in ParamContext::ALL {
            skewed.subscribe(seq, ctx, 1).unwrap();
        }
        match skewed.restore_snapshot(&snap) {
            Err(RestoreError::NameMismatch { .. }) => {}
            other => panic!("expected NameMismatch, got {other:?}"),
        }
    }

    #[test]
    fn restore_rebuilds_temporal_alarms() {
        let d = LocalEventDetector::new(0);
        d.declare_primitive("e", "C", EventModifier::End, "void e()", PrimTarget::AnyInstance)
            .unwrap();
        let plus = d.define_named("late", &parse_event_expr("PLUS(e, 100)").unwrap()).unwrap();
        d.subscribe(plus, ParamContext::Recent, 1).unwrap();
        d.notify_method("C", "void e()", EventModifier::End, 1, Vec::new(), None); // ts=1, due=101
        let snap = d.snapshot_state();

        let d2 = LocalEventDetector::new(0);
        d2.declare_primitive("e", "C", EventModifier::End, "void e()", PrimTarget::AnyInstance)
            .unwrap();
        let plus = d2.define_named("late", &parse_event_expr("PLUS(e, 100)").unwrap()).unwrap();
        d2.subscribe(plus, ParamContext::Recent, 1).unwrap();
        d2.restore_snapshot(&snap).unwrap();
        assert!(d2.advance_time(100).is_empty());
        let dets = d2.advance_time(101);
        assert_eq!(dets.len(), 1, "pending PLUS alarm survives the restore");
        assert_eq!(dets[0].occurrence.at, 101);
    }
}
