//! Event-graph visualization: Graphviz DOT export.
//!
//! The Sentinel rule debugger (Tamizuddin, reference [12] of the paper)
//! visualizes "the interaction among rules, among events and rules, and
//! among rules and database objects". This module renders the *static*
//! half of that picture — the event graph with its operator nodes,
//! subscriber edges and per-context counters; `sentinel-rules`' debugger
//! renders the *dynamic* half (the firing trace).

use std::fmt::Write as _;

use crate::graph::{EventGraph, NodeKind, PrimTarget};

/// Renders the event graph as Graphviz DOT.
///
/// * leaves (primitive events) are boxes — method events show
///   `class::signature` and the begin/end modifier, explicit events just
///   their name;
/// * operator nodes are ellipses labelled with the operator;
/// * child→parent edges are labelled with the child's role where it is not
///   obvious (`start`/`mid`/`end` for interval operators);
/// * nodes with at least one active context are bold, annotated with
///   `R/C/O/U` counters (recent/chronicle/continuous/cumulative) and the
///   number of rule subscribers.
pub fn to_dot(graph: &EventGraph) -> String {
    let mut out = String::from("digraph event_graph {\n  rankdir=BT;\n  node [fontsize=10];\n");
    for id in graph.node_ids() {
        let node = graph.node(id);
        let (shape, label) = match &node.kind {
            NodeKind::Primitive { class, modifier, sig, target } => {
                let mut label = node.name.to_string();
                if let (Some(c), Some(s)) = (class, sig) {
                    let _ = write!(label, "\\n{c}::{s} [{modifier}]");
                }
                if let PrimTarget::Instance(oid) = target {
                    let _ = write!(label, "\\noid#{oid} only");
                }
                ("box", label)
            }
            NodeKind::And(..) => ("ellipse", format!("AND\\n{}", node.name)),
            NodeKind::Or(..) => ("ellipse", format!("OR\\n{}", node.name)),
            NodeKind::Seq(..) => ("ellipse", format!("SEQ\\n{}", node.name)),
            NodeKind::Any { m, children } => {
                ("ellipse", format!("ANY {m}/{}\\n{}", children.len(), node.name))
            }
            NodeKind::Not { .. } => ("ellipse", format!("NOT\\n{}", node.name)),
            NodeKind::Aperiodic { .. } => ("ellipse", format!("A\\n{}", node.name)),
            NodeKind::AperiodicStar { .. } => ("ellipse", format!("A*\\n{}", node.name)),
            NodeKind::Periodic { period, .. } => {
                ("ellipse", format!("P t={period}\\n{}", node.name))
            }
            NodeKind::PeriodicStar { period, .. } => {
                ("ellipse", format!("P* t={period}\\n{}", node.name))
            }
            NodeKind::Plus { delta, .. } => ("ellipse", format!("PLUS +{delta}\\n{}", node.name)),
        };
        let mut attrs = format!("shape={shape}, label=\"{label}");
        if node.any_active() {
            let c = &node.ctx_count;
            let subs: usize = node.rule_subs.iter().map(Vec::len).sum();
            let _ = write!(attrs, "\\nctx R{}/C{}/O{}/U{} rules={subs}", c[0], c[1], c[2], c[3]);
            // Live traffic counters (see `Node::emitted`/`consumed`), shown
            // once the node has seen any occurrence.
            if node.total_emitted() + node.total_consumed() > 0 {
                let _ = write!(
                    attrs,
                    "\\nemit={} cons={}",
                    node.total_emitted(),
                    node.total_consumed()
                );
            }
            attrs.push_str("\", style=bold");
        } else {
            attrs.push('"');
        }
        let _ = writeln!(out, "  n{} [{}];", id.0, attrs);
    }
    // Edges: child -> parent with role labels for interval operators.
    for id in graph.node_ids() {
        let node = graph.node(id);
        for (child, role) in node.kind.children() {
            let label = match (&node.kind, role) {
                (
                    NodeKind::Not { .. }
                    | NodeKind::Aperiodic { .. }
                    | NodeKind::AperiodicStar { .. },
                    0,
                ) => "start",
                (NodeKind::Not { .. }, 1) => "not",
                (NodeKind::Aperiodic { .. } | NodeKind::AperiodicStar { .. }, 1) => "mid",
                (
                    NodeKind::Not { .. }
                    | NodeKind::Aperiodic { .. }
                    | NodeKind::AperiodicStar { .. }
                    | NodeKind::Periodic { .. }
                    | NodeKind::PeriodicStar { .. },
                    2,
                ) => "end",
                (NodeKind::Periodic { .. } | NodeKind::PeriodicStar { .. }, 0) => "start",
                (NodeKind::Seq(..), 0) => "1st",
                (NodeKind::Seq(..), 1) => "2nd",
                _ => "",
            };
            if label.is_empty() {
                let _ = writeln!(out, "  n{} -> n{};", child.0, id.0);
            } else {
                let _ =
                    writeln!(out, "  n{} -> n{} [label=\"{label}\", fontsize=8];", child.0, id.0);
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_snoop::ast::EventModifier;
    use sentinel_snoop::{parse_event_expr, ParamContext};

    fn sample_graph() -> EventGraph {
        let mut g = EventGraph::new();
        g.declare_primitive(
            "e1",
            "STOCK",
            EventModifier::End,
            "int sell_stock(int qty)",
            PrimTarget::AnyInstance,
        )
        .unwrap();
        g.declare_primitive(
            "e2",
            "STOCK",
            EventModifier::Begin,
            "void set_price(float price)",
            PrimTarget::AnyInstance,
        )
        .unwrap();
        g.declare_primitive(
            "ibm_only",
            "STOCK",
            EventModifier::End,
            "int sell_stock(int qty)",
            PrimTarget::Instance(7),
        )
        .unwrap();
        let and = g.define_named("e4", &parse_event_expr("e1 ^ e2").unwrap(), false).unwrap();
        g.define_named("win", &parse_event_expr("A*(e2, e1, e2)").unwrap(), false).unwrap();
        g.subscribe(and, ParamContext::Cumulative, 42).unwrap();
        g
    }

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let g = sample_graph();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph event_graph {"));
        assert!(dot.contains("STOCK::int sell_stock(int qty) [end]"));
        assert!(dot.contains("AND"));
        assert!(dot.contains("A*"));
        assert!(dot.contains("oid#7 only"));
        // Active AND node shows counters and bold style.
        assert!(dot.contains("ctx R0/C0/O0/U1 rules=1"));
        assert!(dot.contains("style=bold"));
        // Interval roles labelled.
        assert!(dot.contains("label=\"start\""));
        assert!(dot.contains("label=\"mid\""));
        assert!(dot.contains("label=\"end\""));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_edge_count_matches_graph() {
        let g = sample_graph();
        let dot = to_dot(&g);
        let expected_edges: usize = g.node_ids().map(|id| g.node(id).kind.children().len()).sum();
        let arrow_count = dot.matches(" -> ").count();
        assert_eq!(arrow_count, expected_edges);
    }

    #[test]
    fn empty_graph_renders() {
        let dot = to_dot(&EventGraph::new());
        assert!(dot.contains("digraph"));
    }
}
