//! The persistent catalog: an append-only, checksummed journal of DDL —
//! class registrations, event declarations/definitions, and rule
//! define/enable/disable/drop — replayed on open to rebuild the `oodb`
//! schema, the Snoop event graph, and the rule set byte-for-byte.
//!
//! Each operation is stamped with `at_index`, the event-journal record
//! index current when the DDL executed. Recovery merge-applies catalog
//! ops and journal records in that order, so DDL issued mid-workload
//! (say, a rule defined after half its composite was signalled) replays
//! at exactly the same relative position — the `NOW` trigger cutoff and
//! context-counter transitions land where they did in the live run.
//!
//! Catalog appends are always fsynced: definitions are rare and losing
//! one would break replay of every later event.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use sentinel_obs::json;

use crate::frame::{put_frame, scan_frames};

/// Catalog file name inside a data directory.
pub const CATALOG_FILE: &str = "catalog.log";

/// One durable DDL operation.
#[derive(Debug, Clone, PartialEq)]
pub enum CatalogOp {
    /// `register_class`: a reactive class with typed attributes and method
    /// signatures (attribute types by name, e.g. `"int"`).
    DefineClass {
        /// Class name.
        name: String,
        /// Parent class name.
        parent: String,
        /// `(attribute, type-name)` pairs.
        attrs: Vec<(String, String)>,
        /// Method signatures (bodies are re-registered by the application;
        /// closures cannot be persisted).
        methods: Vec<String>,
    },
    /// `declare_explicit_event`: a name-matched abstract event.
    DeclareExplicit {
        /// Event name.
        name: String,
    },
    /// `declare_event`: a method-event primitive.
    DeclarePrimitive {
        /// Event name.
        name: String,
        /// Monitored class.
        class: String,
        /// Invocation edge: `"begin"`, `"end"`, or `"both"`.
        edge: String,
        /// Canonical method signature.
        sig: String,
        /// Instance-level target oid (`None` = class-level).
        oid: Option<u64>,
    },
    /// `define_event`: a named composite from a Snoop expression.
    DefineEvent {
        /// Event name.
        name: String,
        /// Snoop event expression.
        expr: String,
    },
    /// `define_rule_spec`: a declarative rule (the JSON spec used by the
    /// wire protocol: name/event/context/coupling/priority/action).
    DefineRule {
        /// The rule spec object.
        spec: json::Value,
        /// `defined_at` tick drawn at live definition time — replay pins
        /// it so the `NOW` cutoff is byte-identical.
        defined_at: u64,
    },
    /// `enable_rule`, with the re-enable tick pinned like `DefineRule`.
    EnableRule {
        /// Rule name.
        name: String,
        /// The re-enable `defined_at` tick.
        defined_at: u64,
    },
    /// `disable_rule`.
    DisableRule {
        /// Rule name.
        name: String,
    },
    /// `drop_rule`.
    DropRule {
        /// Rule name.
        name: String,
    },
}

fn str_pairs(v: &json::Value) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    for pair in v.as_arr()? {
        let pair = pair.as_arr()?;
        if pair.len() != 2 {
            return None;
        }
        out.push((pair[0].as_str()?.to_string(), pair[1].as_str()?.to_string()));
    }
    Some(out)
}

fn str_list(v: &json::Value) -> Option<Vec<String>> {
    v.as_arr()?.iter().map(|s| Some(s.as_str()?.to_string())).collect()
}

impl CatalogOp {
    /// Renders the operation (with its journal position) as the JSON
    /// payload of one catalog frame.
    pub fn to_json(&self, at_index: u64) -> json::Value {
        let at = ("at_index", json::Value::UInt(at_index));
        match self {
            CatalogOp::DefineClass { name, parent, attrs, methods } => json::Value::obj([
                ("op", json::Value::str("define_class")),
                at,
                ("name", json::Value::str(name)),
                ("parent", json::Value::str(parent)),
                (
                    "attrs",
                    json::Value::Arr(
                        attrs
                            .iter()
                            .map(|(n, t)| {
                                json::Value::Arr(vec![json::Value::str(n), json::Value::str(t)])
                            })
                            .collect(),
                    ),
                ),
                ("methods", json::Value::Arr(methods.iter().map(json::Value::str).collect())),
            ]),
            CatalogOp::DeclareExplicit { name } => json::Value::obj([
                ("op", json::Value::str("declare_explicit")),
                at,
                ("name", json::Value::str(name)),
            ]),
            CatalogOp::DeclarePrimitive { name, class, edge, sig, oid } => json::Value::obj([
                ("op", json::Value::str("declare_primitive")),
                at,
                ("name", json::Value::str(name)),
                ("class", json::Value::str(class)),
                ("edge", json::Value::str(edge)),
                ("sig", json::Value::str(sig)),
                (
                    "oid",
                    match oid {
                        Some(o) => json::Value::UInt(*o),
                        None => json::Value::Null,
                    },
                ),
            ]),
            CatalogOp::DefineEvent { name, expr } => json::Value::obj([
                ("op", json::Value::str("define_event")),
                at,
                ("name", json::Value::str(name)),
                ("expr", json::Value::str(expr)),
            ]),
            CatalogOp::DefineRule { spec, defined_at } => json::Value::obj([
                ("op", json::Value::str("define_rule")),
                at,
                ("spec", spec.clone()),
                ("defined_at", json::Value::UInt(*defined_at)),
            ]),
            CatalogOp::EnableRule { name, defined_at } => json::Value::obj([
                ("op", json::Value::str("enable_rule")),
                at,
                ("name", json::Value::str(name)),
                ("defined_at", json::Value::UInt(*defined_at)),
            ]),
            CatalogOp::DisableRule { name } => json::Value::obj([
                ("op", json::Value::str("disable_rule")),
                at,
                ("name", json::Value::str(name)),
            ]),
            CatalogOp::DropRule { name } => json::Value::obj([
                ("op", json::Value::str("drop_rule")),
                at,
                ("name", json::Value::str(name)),
            ]),
        }
    }

    /// Parses one catalog frame payload back into `(at_index, op)`;
    /// `None` on any structural mismatch.
    pub fn from_json(v: &json::Value) -> Option<(u64, CatalogOp)> {
        let at_index = v.get("at_index")?.as_u64()?;
        let name = |v: &json::Value| Some(v.get("name")?.as_str()?.to_string());
        let op = match v.get("op")?.as_str()? {
            "define_class" => CatalogOp::DefineClass {
                name: name(v)?,
                parent: v.get("parent")?.as_str()?.to_string(),
                attrs: str_pairs(v.get("attrs")?)?,
                methods: str_list(v.get("methods")?)?,
            },
            "declare_explicit" => CatalogOp::DeclareExplicit { name: name(v)? },
            "declare_primitive" => CatalogOp::DeclarePrimitive {
                name: name(v)?,
                class: v.get("class")?.as_str()?.to_string(),
                edge: v.get("edge")?.as_str()?.to_string(),
                sig: v.get("sig")?.as_str()?.to_string(),
                oid: match v.get("oid")? {
                    json::Value::Null => None,
                    other => Some(other.as_u64()?),
                },
            },
            "define_event" => CatalogOp::DefineEvent {
                name: name(v)?,
                expr: v.get("expr")?.as_str()?.to_string(),
            },
            "define_rule" => CatalogOp::DefineRule {
                spec: v.get("spec")?.clone(),
                defined_at: v.get("defined_at")?.as_u64()?,
            },
            "enable_rule" => {
                CatalogOp::EnableRule { name: name(v)?, defined_at: v.get("defined_at")?.as_u64()? }
            }
            "disable_rule" => CatalogOp::DisableRule { name: name(v)? },
            "drop_rule" => CatalogOp::DropRule { name: name(v)? },
            _ => return None,
        };
        Some((at_index, op))
    }
}

/// The open catalog file, positioned for appending.
#[derive(Debug)]
pub struct CatalogFile {
    file: File,
}

/// What opening a catalog found.
#[derive(Debug, Default)]
pub struct CatalogRecovery {
    /// Replayable `(at_index, op)` pairs, in append order.
    pub ops: Vec<(u64, CatalogOp)>,
    /// Bytes discarded from a torn/corrupt tail.
    pub truncated_bytes: u64,
}

impl CatalogFile {
    /// Path of the catalog inside `dir`.
    pub fn path(dir: &Path) -> PathBuf {
        dir.join(CATALOG_FILE)
    }

    /// Opens (creating if absent) the catalog in `dir`, replays its valid
    /// prefix, and truncates any torn tail so appends resume cleanly.
    /// Frames that hold undecodable JSON stop the scan like a bad
    /// checksum would — everything after them is untrusted.
    pub fn open(dir: &Path) -> io::Result<(CatalogFile, CatalogRecovery)> {
        let path = Self::path(dir);
        let mut file =
            OpenOptions::new().read(true).write(true).create(true).truncate(false).open(&path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let scan = scan_frames(&data);
        let mut recovery = CatalogRecovery::default();
        let mut valid_len = 0u64;
        for payload in &scan.frames {
            let parsed = std::str::from_utf8(payload)
                .ok()
                .and_then(|text| json::Value::parse(text).ok())
                .and_then(|v| CatalogOp::from_json(&v));
            match parsed {
                Some(pair) => {
                    valid_len += (crate::frame::HEADER + payload.len()) as u64;
                    recovery.ops.push(pair);
                }
                None => break,
            }
        }
        recovery.truncated_bytes = (data.len() as u64).saturating_sub(valid_len);
        file.set_len(valid_len)?;
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((CatalogFile { file }, recovery))
    }

    /// Appends one operation and fsyncs. Returns the payload size.
    pub fn append(&mut self, op: &CatalogOp, at_index: u64) -> io::Result<u64> {
        let payload = op.to_json(at_index).to_string();
        let mut buf = Vec::with_capacity(payload.len() + crate::frame::HEADER);
        put_frame(&mut buf, payload.as_bytes());
        self.file.write_all(&buf)?;
        self.file.sync_data()?;
        Ok(payload.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ops() -> Vec<CatalogOp> {
        vec![
            CatalogOp::DefineClass {
                name: "STOCK".into(),
                parent: "REACTIVE".into(),
                attrs: vec![("price".into(), "float".into()), ("qty".into(), "int".into())],
                methods: vec!["void set_price(float price)".into()],
            },
            CatalogOp::DeclareExplicit { name: "alert".into() },
            CatalogOp::DeclarePrimitive {
                name: "set_price".into(),
                class: "STOCK".into(),
                edge: "end".into(),
                sig: "void set_price(float price)".into(),
                oid: Some(42),
            },
            CatalogOp::DefineEvent { name: "e4".into(), expr: "(set_price ; alert)".into() },
            CatalogOp::DefineRule {
                spec: json::Value::obj([
                    ("name", json::Value::str("R1")),
                    ("event", json::Value::str("e4")),
                ]),
                defined_at: 17,
            },
            CatalogOp::DisableRule { name: "R1".into() },
            CatalogOp::EnableRule { name: "R1".into(), defined_at: 23 },
            CatalogOp::DropRule { name: "R1".into() },
        ]
    }

    #[test]
    fn ops_roundtrip_through_json() {
        for (i, op) in sample_ops().into_iter().enumerate() {
            let rendered = op.to_json(i as u64).to_string();
            let parsed = json::Value::parse(&rendered).unwrap();
            let (at, back) = CatalogOp::from_json(&parsed).unwrap();
            assert_eq!(at, i as u64);
            assert_eq!(back, op, "op {i}");
        }
    }

    #[test]
    fn file_roundtrip_and_torn_tail() {
        let dir = std::env::temp_dir().join(format!("sentinel-cat-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ops = sample_ops();
        {
            let (mut cat, rec) = CatalogFile::open(&dir).unwrap();
            assert!(rec.ops.is_empty());
            for (i, op) in ops.iter().enumerate() {
                cat.append(op, i as u64).unwrap();
            }
        }
        // Tear the file a few bytes short.
        let path = CatalogFile::path(&dir);
        let len = std::fs::metadata(&path).unwrap().len();
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..len as usize - 5]).unwrap();

        let (_cat, rec) = CatalogFile::open(&dir).unwrap();
        assert_eq!(rec.ops.len(), ops.len() - 1, "torn final record dropped");
        assert!(rec.truncated_bytes > 0);
        for ((at, op), (i, want)) in rec.ops.iter().zip(ops.iter().enumerate()) {
            assert_eq!(*at, i as u64);
            assert_eq!(op, want);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
