//! Group commit: a committer thread that batches fsyncs across every
//! shard's journal stream, so N appenders under [`FsyncPolicy::Always`]
//! share one `fsync` per dirty stream instead of issuing N.
//!
//! Appenders write their frame under the stream lock, then register the
//! append with [`GroupCommit::note_append`] and (policy permitting) block
//! in [`GroupCommit::wait_durable`] until the committer reports their
//! sequence number synced. The committer wakes on the first pending
//! append, optionally sleeps a configurable accumulation window
//! (`group_window_us`) to let a batch build up, snapshots the pending
//! sequence, fsyncs every dirty stream and publishes the new durable
//! watermark. [`FsyncPolicy::EveryN`] and [`FsyncPolicy::Never`] map
//! onto the same machinery — appends never block, and the committer only
//! fires on the record-count / byte thresholds (`Never` only on the byte
//! threshold, if one is configured).
//!
//! The committer **never re-enters the detector** — appenders blocked in
//! `wait_durable` hold their shard's order lock, so anything the
//! committer did that needed a quiesce would deadlock. Checkpoints
//! therefore run on a separate thread (see [`Checkpointer`]).

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use sentinel_obs::durability::DurabilityMetrics;

use crate::sharded::ShardedJournal;
use crate::FsyncPolicy;

/// Shared appender/committer state.
#[derive(Debug, Default)]
struct GcState {
    /// Sequence number of the newest registered append.
    pending: u64,
    /// Newest sequence number known durable.
    synced: u64,
    /// Payload bytes appended since the last group commit.
    pending_bytes: u64,
    /// Records appended since the last group commit.
    pending_records: u64,
    shutdown: bool,
}

/// The group-commit rendezvous: appenders on one side, the committer
/// thread on the other.
#[derive(Default)]
pub struct GroupCommit {
    state: Mutex<GcState>,
    /// Signalled by appenders when work is pending (and at shutdown).
    appended: Condvar,
    /// Signalled by the committer when the durable watermark advances.
    synced: Condvar,
}

impl std::fmt::Debug for GroupCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommit").field("state", &*self.state.lock()).finish()
    }
}

impl GroupCommit {
    /// Registers one appended record of `bytes` payload bytes; returns
    /// the sequence number to wait on.
    pub fn note_append(&self, bytes: u64) -> u64 {
        let mut st = self.state.lock();
        st.pending += 1;
        st.pending_bytes += bytes;
        st.pending_records += 1;
        let seq = st.pending;
        self.appended.notify_all();
        seq
    }

    /// Blocks until sequence `seq` is durable (or the engine shut down).
    pub fn wait_durable(&self, seq: u64) {
        let mut st = self.state.lock();
        while st.synced < seq && !st.shutdown {
            self.synced.wait(&mut st);
        }
    }

    /// Marks everything up to `seq` durable (used by explicit flushes
    /// that sync the streams themselves).
    pub fn complete(&self, seq: u64) {
        let mut st = self.state.lock();
        if st.synced < seq {
            st.synced = seq;
            st.pending_bytes = 0;
            st.pending_records = 0;
            self.synced.notify_all();
        }
    }

    /// Current pending sequence number.
    pub fn pending(&self) -> u64 {
        self.state.lock().pending
    }

    /// Wakes the committer and all waiters for shutdown.
    pub fn shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.appended.notify_all();
        self.synced.notify_all();
    }
}

/// Tunables for one committer thread.
#[derive(Debug, Clone, Copy)]
pub struct CommitterConfig {
    /// The engine's fsync policy.
    pub fsync: FsyncPolicy,
    /// Accumulation window after the first pending append, µs.
    pub group_window_us: u64,
    /// Byte threshold that forces a commit regardless of policy
    /// (0 = disabled).
    pub group_bytes: u64,
}

impl CommitterConfig {
    /// Is a commit due for the given pending counters?
    fn due(&self, records: u64, bytes: u64) -> bool {
        if records == 0 {
            return false;
        }
        if self.group_bytes > 0 && bytes >= self.group_bytes {
            return true;
        }
        match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => records >= n.max(1),
            FsyncPolicy::Never => false,
        }
    }
}

/// How often the committer refreshes the on-disk flight-recorder dump at
/// most. The dump is a bounded JSON write off the append path; the
/// throttle keeps it from turning every group commit into a file write
/// under fsync-per-append workloads.
const FLIGHT_DUMP_THROTTLE: Duration = Duration::from_millis(25);

/// The committer loop body; run on a dedicated thread. Exits when
/// [`GroupCommit::shutdown`] fires — deliberately *without* a final
/// sync, so dropping an engine keeps crash semantics (what the policy
/// left unsynced stays unsynced). As a side duty the committer keeps the
/// flight-recorder dump in `flight_dump` fresh (time-throttled), so a
/// SIGKILL post-mortem finds the ring at most a throttle window stale.
pub fn committer_loop(
    journal: Arc<ShardedJournal>,
    gc: Arc<GroupCommit>,
    metrics: Arc<DurabilityMetrics>,
    cfg: CommitterConfig,
    flight_dump: std::path::PathBuf,
) {
    let mut last_flight_dump: Option<std::time::Instant> = None;
    loop {
        // Wait for enough pending work (or shutdown).
        {
            let mut st = gc.state.lock();
            while !st.shutdown && !cfg.due(st.pending_records, st.pending_bytes) {
                gc.appended.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
        }
        // Let a batch accumulate.
        if cfg.group_window_us > 0 {
            std::thread::sleep(Duration::from_micros(cfg.group_window_us));
        }
        // Snapshot the target, then sync outside the state lock so
        // appenders keep appending into the next batch.
        let (target, records) = {
            let mut st = gc.state.lock();
            let out = (st.pending, st.pending_records);
            st.pending_bytes = 0;
            st.pending_records = 0;
            out
        };
        let t0 = std::time::Instant::now();
        let synced_files = journal.sync_dirty().unwrap_or(0);
        metrics.journal_fsyncs.add(synced_files);
        metrics.group_commits.inc();
        metrics.group_commit_records.add(records);
        metrics.group_commit_flush.record(t0.elapsed().as_nanos() as u64);
        // Publish the watermark even if a sync errored — a hung appender
        // is worse than optimistic accounting on a dying disk.
        {
            let mut st = gc.state.lock();
            if st.synced < target {
                st.synced = target;
                gc.synced.notify_all();
            }
        }
        // Waiters are released; refresh the flight-recorder dump off the
        // ack path, at most once per throttle window.
        if !last_flight_dump.is_some_and(|at| at.elapsed() < FLIGHT_DUMP_THROTTLE)
            && sentinel_obs::flight::global().dump_if_dirty(&flight_dump).unwrap_or(false)
        {
            last_flight_dump = Some(std::time::Instant::now());
        }
    }
}

#[derive(Debug, Default)]
struct CkState {
    pending: bool,
    shutdown: bool,
}

/// Trigger state for the asynchronous checkpointer thread. Checkpoints
/// quiesce the whole detector, which appenders blocked on a group commit
/// would deadlock — so the cadence trigger only sets a flag here and a
/// dedicated thread (never the committer, never an appender) runs the
/// installed hook. Back-to-back triggers coalesce.
#[derive(Default)]
pub struct Checkpointer {
    state: Mutex<CkState>,
    cv: Condvar,
    hook: parking_lot::RwLock<Option<Arc<dyn Fn() + Send + Sync>>>,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer").field("state", &*self.state.lock()).finish()
    }
}

impl Checkpointer {
    /// Installs the closure the checkpointer thread runs per trigger.
    pub fn set_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        *self.hook.write() = Some(hook);
    }

    /// Requests a checkpoint soon (coalescing with any pending request).
    pub fn trigger(&self) {
        let mut st = self.state.lock();
        st.pending = true;
        self.cv.notify_all();
    }

    /// Stops the checkpointer thread.
    pub fn shutdown(&self) {
        let mut st = self.state.lock();
        st.shutdown = true;
        self.cv.notify_all();
    }
}

/// The checkpointer loop body; run on a dedicated thread.
pub fn checkpointer_loop(ck: Arc<Checkpointer>) {
    loop {
        {
            let mut st = ck.state.lock();
            while !st.pending && !st.shutdown {
                ck.cv.wait(&mut st);
            }
            if st.shutdown {
                return;
            }
            st.pending = false;
        }
        let hook = ck.hook.read().clone();
        if let Some(hook) = hook {
            hook();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn due_thresholds() {
        let always =
            CommitterConfig { fsync: FsyncPolicy::Always, group_window_us: 0, group_bytes: 0 };
        assert!(!always.due(0, 0));
        assert!(always.due(1, 10));
        let every =
            CommitterConfig { fsync: FsyncPolicy::EveryN(4), group_window_us: 0, group_bytes: 128 };
        assert!(!every.due(3, 10));
        assert!(every.due(4, 10));
        assert!(every.due(1, 128), "byte threshold overrides the count");
        let never =
            CommitterConfig { fsync: FsyncPolicy::Never, group_window_us: 0, group_bytes: 0 };
        assert!(!never.due(1000, 1 << 20));
    }

    #[test]
    fn waiters_release_in_seq_order() {
        let gc = Arc::new(GroupCommit::default());
        let s1 = gc.note_append(8);
        let s2 = gc.note_append(8);
        assert_eq!((s1, s2), (1, 2));
        let waiter = {
            let gc = gc.clone();
            std::thread::spawn(move || gc.wait_durable(2))
        };
        gc.complete(2);
        waiter.join().unwrap();
        assert_eq!(gc.pending(), 2);
    }

    #[test]
    fn shutdown_releases_waiters() {
        let gc = Arc::new(GroupCommit::default());
        gc.note_append(1);
        let waiter = {
            let gc = gc.clone();
            std::thread::spawn(move || gc.wait_durable(1))
        };
        gc.shutdown();
        waiter.join().unwrap();
    }
}
