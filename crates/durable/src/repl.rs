//! The in-memory replication stream a primary ships to its followers.
//!
//! Every durable mutation — journal event appends, epoch fences, and DDL
//! catalog ops — is also pushed onto one totally-ordered [`ReplicationLog`].
//! A follower pulls `[from, from+max)` slices of that log over the wire
//! (`ReplFrames`), applies them in log order, and acknowledges a watermark;
//! the log keeps per-follower ack state so the primary can report lag.
//!
//! **Ordering.** Log order is *not* the `(epoch, ts, shard)` recovery merge
//! order, but it is state-equivalent to it: events on the same shard are
//! pushed in shard-FIFO order (the shard worker serialises its appends),
//! fences and catalog ops are pushed under a whole-graph barrier (no append
//! in flight), and shards own disjoint operator-DAG components — so any
//! interleaving of *different* shards within one epoch reaches the same
//! graph state. A follower applying the log is therefore, by construction,
//! a valid recovery prefix of the primary.
//!
//! **Seeding.** On open the log is seeded from recovery in deterministic
//! merge order, so a log sequence number is stable across primary restarts
//! and a follower's ack watermark survives both ends restarting. The log
//! holds the full history in memory — the same order of cost as the
//! recovery scan itself; journal-backed tailing is future work.

use std::collections::BTreeMap;
use std::time::Instant;

use bytes::{Bytes, BytesMut};
use parking_lot::Mutex;
use sentinel_detector::log::{decode_event, encode_event, LoggedEvent};
use sentinel_detector::FenceKind;
use sentinel_obs::flight::{self, FlightKind};
use sentinel_obs::json;

use crate::catalog::CatalogOp;

/// One totally-ordered replication entry. Its log position is its
/// sequence number; `tip` is the next sequence to be assigned.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplEntry {
    /// A journal event append (`index` = global journal record index).
    Event {
        /// Global journal record index on the primary.
        index: u64,
        /// Detector shard that owns the event.
        shard: u32,
        /// Epoch the record was stamped with.
        epoch: u64,
        /// The event itself.
        ev: LoggedEvent,
    },
    /// An epoch fence (`position` = journal records preceding it).
    Fence {
        /// Journal records preceding the fence.
        position: u64,
        /// The epoch this fence closes.
        epoch: u64,
        /// Fence kind.
        kind: FenceKind,
        /// Logical timestamp carried by the fence.
        ts: u64,
    },
    /// A DDL catalog operation (`at_index` embedded in the op JSON).
    Catalog {
        /// Journal record index current when the op executed.
        at_index: u64,
        /// The operation.
        op: CatalogOp,
    },
}

/// Lower-hex encodes arbitrary bytes (snapshot shipping, event frames).
pub fn bytes_to_hex(bytes: &[u8]) -> String {
    to_hex(bytes)
}

/// Inverse of [`bytes_to_hex`]; `None` on odd length or non-hex digits.
pub fn bytes_from_hex(s: &str) -> Option<Vec<u8>> {
    from_hex(s)
}

fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap());
        out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap());
    }
    out
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if s.len() % 2 != 0 {
        return None;
    }
    s.as_bytes()
        .chunks(2)
        .map(|pair| {
            let hi = (pair[0] as char).to_digit(16)?;
            let lo = (pair[1] as char).to_digit(16)?;
            Some((hi * 16 + lo) as u8)
        })
        .collect()
}

/// Hex-encodes a [`LoggedEvent`] with the journal's byte-faithful codec.
pub fn event_to_hex(ev: &LoggedEvent) -> String {
    let mut buf = BytesMut::new();
    encode_event(&mut buf, ev);
    to_hex(&buf)
}

/// Decodes an event hex-encoded by [`event_to_hex`].
pub fn event_from_hex(s: &str) -> Option<LoggedEvent> {
    let mut buf = Bytes::from(from_hex(s)?);
    let ev = decode_event(&mut buf)?;
    if !buf.is_empty() {
        return None;
    }
    Some(ev)
}

fn fence_kind_tag(kind: FenceKind) -> (&'static str, u64) {
    match kind {
        FenceKind::Barrier => ("barrier", 0),
        FenceKind::FlushTxn(txn) => ("flush_txn", txn),
        FenceKind::AdvanceTime(to) => ("advance_time", to),
    }
}

fn fence_kind_from(tag: &str, arg: u64) -> Option<FenceKind> {
    Some(match tag {
        "barrier" => FenceKind::Barrier,
        "flush_txn" => FenceKind::FlushTxn(arg),
        "advance_time" => FenceKind::AdvanceTime(arg),
        _ => return None,
    })
}

impl ReplEntry {
    /// Wire encoding of one entry.
    pub fn to_json(&self) -> json::Value {
        match self {
            ReplEntry::Event { index, shard, epoch, ev } => json::Value::obj([
                ("t", json::Value::str("event")),
                ("index", json::Value::UInt(*index)),
                ("shard", json::Value::UInt(u64::from(*shard))),
                ("epoch", json::Value::UInt(*epoch)),
                ("ev", json::Value::Str(event_to_hex(ev))),
            ]),
            ReplEntry::Fence { position, epoch, kind, ts } => {
                let (tag, arg) = fence_kind_tag(*kind);
                json::Value::obj([
                    ("t", json::Value::str("fence")),
                    ("position", json::Value::UInt(*position)),
                    ("epoch", json::Value::UInt(*epoch)),
                    ("kind", json::Value::str(tag)),
                    ("arg", json::Value::UInt(arg)),
                    ("ts", json::Value::UInt(*ts)),
                ])
            }
            ReplEntry::Catalog { at_index, op } => json::Value::obj([
                ("t", json::Value::str("catalog")),
                ("op", op.to_json(*at_index)),
            ]),
        }
    }

    /// Decodes an entry encoded by [`ReplEntry::to_json`].
    pub fn from_json(v: &json::Value) -> Option<ReplEntry> {
        match v.get("t")?.as_str()? {
            "event" => Some(ReplEntry::Event {
                index: v.get("index")?.as_u64()?,
                shard: v.get("shard")?.as_u64()? as u32,
                epoch: v.get("epoch")?.as_u64()?,
                ev: event_from_hex(v.get("ev")?.as_str()?)?,
            }),
            "fence" => Some(ReplEntry::Fence {
                position: v.get("position")?.as_u64()?,
                epoch: v.get("epoch")?.as_u64()?,
                kind: fence_kind_from(v.get("kind")?.as_str()?, v.get("arg")?.as_u64()?)?,
                ts: v.get("ts")?.as_u64()?,
            }),
            "catalog" => {
                let (at_index, op) = CatalogOp::from_json(v.get("op")?)?;
                Some(ReplEntry::Catalog { at_index, op })
            }
            _ => None,
        }
    }
}

/// Per-follower ack state: the watermark it last acknowledged and when.
#[derive(Debug, Clone)]
pub struct FollowerAck {
    /// Follower name (from its `ReplSubscribe`).
    pub name: String,
    /// Log sequence the follower has durably applied (entries `< applied`).
    pub applied: u64,
    /// Seconds since the last ack arrived.
    pub age_secs: f64,
}

#[derive(Debug)]
struct AckState {
    applied: u64,
    at: Instant,
}

/// The totally-ordered replication stream plus per-follower ack state.
#[derive(Debug, Default)]
pub struct ReplicationLog {
    entries: Mutex<Vec<ReplEntry>>,
    acks: Mutex<BTreeMap<String, AckState>>,
}

impl ReplicationLog {
    /// Appends one entry; its sequence number is the log position.
    pub fn push(&self, entry: ReplEntry) {
        self.entries.lock().push(entry);
    }

    /// The next sequence number to be assigned (= entries so far).
    pub fn tip(&self) -> u64 {
        self.entries.lock().len() as u64
    }

    /// The wire encoding of entries `[from, from+max)`, plus the current
    /// tip. Serving a slice records a `ship` flight event.
    pub fn range_json(&self, from: u64, max: u64) -> (Vec<json::Value>, u64) {
        let entries = self.entries.lock();
        let tip = entries.len() as u64;
        let lo = (from.min(tip)) as usize;
        let hi = (from.saturating_add(max).min(tip)) as usize;
        let out: Vec<json::Value> = entries[lo..hi].iter().map(ReplEntry::to_json).collect();
        drop(entries);
        if !out.is_empty() {
            flight::global().record_static(FlightKind::Ship, "repl", from, out.len() as u64);
        }
        (out, tip)
    }

    /// The wire-encoded DDL catalog ops among the first `upto` entries,
    /// in log order — a bootstrapping follower rebuilds its schema from
    /// this prefix, then tails the live stream from `upto`.
    pub fn catalog_prefix(&self, upto: u64) -> Vec<json::Value> {
        let entries = self.entries.lock();
        let hi = (upto.min(entries.len() as u64)) as usize;
        entries[..hi]
            .iter()
            .filter_map(|e| match e {
                ReplEntry::Catalog { at_index, op } => Some(op.to_json(*at_index)),
                _ => None,
            })
            .collect()
    }

    /// Records a follower's ack watermark (entries `< applied` applied).
    pub fn ack(&self, follower: &str, applied: u64) {
        let mut acks = self.acks.lock();
        let state =
            acks.entry(follower.to_string()).or_insert(AckState { applied: 0, at: Instant::now() });
        state.applied = state.applied.max(applied);
        state.at = Instant::now();
        drop(acks);
        flight::global().record(FlightKind::Ack, std::sync::Arc::from(follower), applied, 0);
    }

    /// Snapshot of every follower's ack state.
    pub fn followers(&self) -> Vec<FollowerAck> {
        self.acks
            .lock()
            .iter()
            .map(|(name, st)| FollowerAck {
                name: name.clone(),
                applied: st.applied,
                age_secs: st.at.elapsed().as_secs_f64(),
            })
            .collect()
    }

    /// Replication lag in log entries of the furthest-behind follower
    /// (`None` when no follower has subscribed).
    pub fn max_lag(&self) -> Option<u64> {
        let tip = self.tip();
        self.acks.lock().values().map(|st| tip.saturating_sub(st.applied)).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_detector::Value;
    use std::sync::Arc;

    fn ev(i: u64) -> LoggedEvent {
        LoggedEvent::Explicit {
            name: format!("e{i}"),
            params: vec![(Arc::from("i"), Value::Int(i as i64)), (Arc::from("s"), Value::str("x"))],
            txn: (i % 2 == 0).then_some(i),
            ts: i + 1,
        }
    }

    #[test]
    fn entries_roundtrip_through_json() {
        let entries = [
            ReplEntry::Event { index: 3, shard: 1, epoch: 2, ev: ev(7) },
            ReplEntry::Fence { position: 4, epoch: 2, kind: FenceKind::FlushTxn(9), ts: 11 },
            ReplEntry::Fence { position: 4, epoch: 3, kind: FenceKind::Barrier, ts: 12 },
            ReplEntry::Fence { position: 5, epoch: 4, kind: FenceKind::AdvanceTime(99), ts: 99 },
            ReplEntry::Catalog { at_index: 6, op: CatalogOp::DeclareExplicit { name: "n".into() } },
        ];
        for entry in &entries {
            let j = entry.to_json();
            // Through the parser too, as the wire does.
            let parsed = json::Value::parse(&j.to_string()).unwrap();
            assert_eq!(ReplEntry::from_json(&parsed).as_ref(), Some(entry), "{j}");
        }
    }

    #[test]
    fn event_hex_is_byte_faithful() {
        let e = ev(3);
        let hex = event_to_hex(&e);
        assert_eq!(event_from_hex(&hex), Some(e));
        assert!(event_from_hex("zz").is_none());
        assert!(event_from_hex("abc").is_none(), "odd length");
    }

    #[test]
    fn log_range_ack_and_lag() {
        let log = ReplicationLog::default();
        assert_eq!(log.tip(), 0);
        assert_eq!(log.max_lag(), None);
        for i in 0..5 {
            log.push(ReplEntry::Event { index: i, shard: 0, epoch: 0, ev: ev(i) });
        }
        let (slice, tip) = log.range_json(2, 2);
        assert_eq!(tip, 5);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice[0].get("index").and_then(json::Value::as_u64), Some(2));
        let (rest, _) = log.range_json(4, 100);
        assert_eq!(rest.len(), 1);
        let (none, tip) = log.range_json(99, 10);
        assert!(none.is_empty());
        assert_eq!(tip, 5);

        log.ack("f1", 3);
        log.ack("f2", 5);
        log.ack("f1", 2); // stale ack never regresses the watermark
        assert_eq!(log.max_lag(), Some(2));
        let followers = log.followers();
        assert_eq!(followers.len(), 2);
        assert_eq!(followers[0].name, "f1");
        assert_eq!(followers[0].applied, 3);
    }
}
