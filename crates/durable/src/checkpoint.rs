//! Event-graph checkpoints: periodic snapshots of per-node, per-context
//! operator state, each tagged with the journal offset it covers so
//! recovery can load the newest valid checkpoint and replay only the
//! journal suffix.
//!
//! A checkpoint `ckpt-{tag:016}.ck` holds a fixed header (`"SCKP"` magic,
//! format version, the tag, payload length and crc32) followed by the
//! [`GraphSnapshot`] encoding. Files are written to a temp name, fsynced,
//! renamed into place and the directory fsynced — a crash mid-write
//! leaves at most a stray `.tmp`, never a half-valid checkpoint under the
//! real name. The newest two checkpoints are retained so a checkpoint
//! that is corrupt on disk (or fails live-graph validation in `core`)
//! still leaves an older fallback with a longer replay.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use bytes::Bytes;
use sentinel_detector::GraphSnapshot;
use sentinel_storage::crc32;

const CKPT_MAGIC: &[u8; 4] = b"SCKP";
const CKPT_VERSION: u32 = 1;
const CKPT_HEADER: usize = 4 + 4 + 8 + 4 + 4;

fn checkpoint_path(dir: &Path, tag: u64) -> PathBuf {
    dir.join(format!("ckpt-{tag:016}.ck"))
}

/// Lists `(tag, path)` pairs in `dir`, newest (highest tag) first.
fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(tag) = name.strip_prefix("ckpt-").and_then(|r| r.strip_suffix(".ck")) {
            if let Ok(tag) = tag.parse::<u64>() {
                out.push((tag, entry.path()));
            }
        }
    }
    out.sort_by_key(|e| std::cmp::Reverse(e.0));
    Ok(out)
}

/// What a checkpoint scan found.
#[derive(Debug, Default)]
pub struct CheckpointScan {
    /// Decodable checkpoints as `(tag, snapshot)`, newest first.
    pub checkpoints: Vec<(u64, GraphSnapshot)>,
    /// Total checkpoint files seen.
    pub scanned: u64,
    /// Files rejected for a bad header, checksum, or snapshot encoding.
    pub rejected: u64,
}

/// Reads every checkpoint in `dir`, newest first, dropping (but counting)
/// any that fail their header, crc, or snapshot decode. Stray `.tmp`
/// files from interrupted writes are removed.
pub fn scan_checkpoints(dir: &Path) -> io::Result<CheckpointScan> {
    let mut scan = CheckpointScan::default();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_str().is_some_and(|n| n.ends_with(".ck.tmp")) {
            let _ = fs::remove_file(entry.path());
        }
    }
    for (tag, path) in list_checkpoints(dir)? {
        scan.scanned += 1;
        let mut data = Vec::new();
        File::open(&path)?.read_to_end(&mut data)?;
        match decode_checkpoint(&data) {
            Some((file_tag, snap)) if file_tag == tag => scan.checkpoints.push((tag, snap)),
            _ => scan.rejected += 1,
        }
    }
    Ok(scan)
}

fn decode_checkpoint(data: &[u8]) -> Option<(u64, GraphSnapshot)> {
    if data.len() < CKPT_HEADER || &data[..4] != CKPT_MAGIC {
        return None;
    }
    if u32::from_le_bytes(data[4..8].try_into().unwrap()) != CKPT_VERSION {
        return None;
    }
    let tag = u64::from_le_bytes(data[8..16].try_into().unwrap());
    let len = u32::from_le_bytes(data[16..20].try_into().unwrap()) as usize;
    let crc = u32::from_le_bytes(data[20..24].try_into().unwrap());
    let payload = data.get(CKPT_HEADER..CKPT_HEADER + len)?;
    if data.len() != CKPT_HEADER + len || crc32(payload) != crc {
        return None;
    }
    let snap = GraphSnapshot::decode(Bytes::copy_from_slice(payload))?;
    Some((tag, snap))
}

/// Writes a checkpoint atomically (temp + fsync + rename + dir fsync) and
/// prunes all but the newest two. Returns the bytes written.
pub fn write_checkpoint(dir: &Path, tag: u64, snap: &GraphSnapshot) -> io::Result<u64> {
    let payload = snap.encode();
    let mut data = Vec::with_capacity(CKPT_HEADER + payload.len());
    data.extend_from_slice(CKPT_MAGIC);
    data.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    data.extend_from_slice(&tag.to_le_bytes());
    data.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    data.extend_from_slice(&crc32(&payload).to_le_bytes());
    data.extend_from_slice(&payload);

    let final_path = checkpoint_path(dir, tag);
    let tmp_path = final_path.with_extension("ck.tmp");
    {
        let mut file =
            OpenOptions::new().create(true).truncate(true).write(true).open(&tmp_path)?;
        file.write_all(&data)?;
        file.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    File::open(dir)?.sync_all()?;

    for (_, path) in list_checkpoints(dir)?.into_iter().skip(2) {
        let _ = fs::remove_file(path);
    }
    Ok(data.len() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_detector::LocalEventDetector;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinel-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn snap() -> GraphSnapshot {
        // An empty graph's snapshot: no nodes, just a clock.
        LocalEventDetector::new(1).snapshot_state()
    }

    #[test]
    fn write_scan_prune_roundtrip() {
        let dir = tmp("rt");
        for tag in [10u64, 20, 30] {
            write_checkpoint(&dir, tag, &snap()).unwrap();
        }
        let scan = scan_checkpoints(&dir).unwrap();
        assert_eq!(scan.scanned, 2, "only the newest two retained");
        assert_eq!(scan.rejected, 0);
        let tags: Vec<u64> = scan.checkpoints.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec![30, 20], "newest first");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_newest_falls_back_to_previous() {
        let dir = tmp("corrupt");
        write_checkpoint(&dir, 5, &snap()).unwrap();
        write_checkpoint(&dir, 9, &snap()).unwrap();
        // Flip a payload bit in the newest checkpoint.
        let path = checkpoint_path(&dir, 9);
        let mut data = fs::read(&path).unwrap();
        let last = data.len() - 1;
        data[last] ^= 0x80;
        fs::write(&path, &data).unwrap();

        let scan = scan_checkpoints(&dir).unwrap();
        assert_eq!(scan.scanned, 2);
        assert_eq!(scan.rejected, 1);
        assert_eq!(scan.checkpoints.len(), 1);
        assert_eq!(scan.checkpoints[0].0, 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stray_tmp_is_swept_and_ignored() {
        let dir = tmp("tmp");
        write_checkpoint(&dir, 1, &snap()).unwrap();
        let stray = dir.join("ckpt-0000000000000002.ck.tmp");
        fs::write(&stray, b"half a checkpoint").unwrap();
        let scan = scan_checkpoints(&dir).unwrap();
        assert_eq!(scan.scanned, 1);
        assert!(!stray.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tag_mismatch_is_rejected() {
        let dir = tmp("mismatch");
        write_checkpoint(&dir, 7, &snap()).unwrap();
        fs::rename(checkpoint_path(&dir, 7), checkpoint_path(&dir, 8)).unwrap();
        let scan = scan_checkpoints(&dir).unwrap();
        assert_eq!(scan.rejected, 1);
        assert!(scan.checkpoints.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
