//! # sentinel-durable
//!
//! The durability subsystem of the Sentinel reproduction: everything the
//! paper's Exodus-backed Open OODB got "for free" from its storage
//! manager but the *rule subsystem* itself never had — persistence for
//! the DDL catalog, the primitive event stream, and the half-detected
//! state of the composite event graph.
//!
//! Three cooperating stores live in one data directory:
//!
//! * [`catalog`] — an append-only, checksummed DDL journal
//!   (`catalog.log`). Class registrations, event declarations and rule
//!   define/enable/disable/drop are framed as JSON and replayed on open
//!   to rebuild the schema, the Snoop event graph, and the rule set.
//! * [`journal`] — the durable primitive-event journal: segment-rotated
//!   files of [`sentinel_detector::log::LoggedEvent`] encodings, with a
//!   configurable [`FsyncPolicy`].
//! * [`checkpoint`] — periodic [`sentinel_detector::GraphSnapshot`]
//!   checkpoints tagged with a journal offset, so recovery loads the
//!   newest valid checkpoint and replays only the journal suffix —
//!   half-detected composites resume exactly where the crash left them.
//!
//! All three share the truncate-at-first-bad-record discipline of
//! [`frame`]: a torn or bit-flipped tail shortens history, it never
//! panics and never corrupts what came before it.
//!
//! This crate is policy-free: it moves bytes and reports what it found.
//! `sentinel-core` owns the semantics — interleaving catalog ops with
//! journal records by `at_index`, validating checkpoints against the
//! rebuilt graph, and replaying the suffix through the detector.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod checkpoint;
pub mod frame;
pub mod journal;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sentinel_detector::log::LoggedEvent;
use sentinel_detector::GraphSnapshot;
use sentinel_obs::{DurabilityMetrics, DurabilityStats, RecoveryReport};

pub use catalog::{CatalogFile, CatalogOp};
pub use journal::Journal;

/// File name of the JSON recovery report written after each open.
pub const RECOVERY_REPORT_FILE: &str = "recovery-report.json";

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable i/o error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// When the event journal forces its writes to disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every appended event (no events lost on crash).
    Always,
    /// `fsync` after every N appended events.
    EveryN(u64),
    /// Never `fsync` from the append path; only on rotation, explicit
    /// flush, and graceful shutdown.
    Never,
}

/// Tuning knobs for a durable engine.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Journal fsync policy (default: [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Rotate journal segments once they pass this size (default 4 MiB).
    pub segment_bytes: u64,
    /// Take a checkpoint every N journal records; `0` disables automatic
    /// checkpoints (default 1024).
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 4 * 1024 * 1024,
            checkpoint_every: 1024,
        }
    }
}

/// Everything a [`DurableEngine::open`] recovered from the data
/// directory, for `sentinel-core` to replay.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Catalog operations as `(at_index, op)` in append order; `at_index`
    /// is the journal record index current when the op executed.
    pub catalog_ops: Vec<(u64, CatalogOp)>,
    /// Decodable checkpoints, newest first, as `(tag, snapshot)`. The
    /// caller restores the first one that validates against the rebuilt
    /// graph and replays `events[tag..]`.
    pub checkpoints: Vec<(u64, GraphSnapshot)>,
    /// Every valid journal record in global order.
    pub events: Vec<LoggedEvent>,
    /// Partially filled report: counts of what the scan found. The caller
    /// completes `checkpoint_tag`, `replayed_records`, and any extra
    /// `checkpoints_rejected` from live-graph validation.
    pub report: RecoveryReport,
}

/// The durable engine: one open data directory holding the catalog, the
/// event journal, and checkpoints.
///
/// Lock ordering: `journal` before `catalog`, never the reverse.
#[derive(Debug)]
pub struct DurableEngine {
    dir: PathBuf,
    opts: DurableOptions,
    metrics: DurabilityMetrics,
    journal: Mutex<Journal>,
    catalog: Mutex<CatalogFile>,
}

impl DurableEngine {
    /// Opens (creating if needed) the data directory, scans and repairs
    /// all three stores, and returns the engine plus what it recovered.
    pub fn open(
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<(Arc<DurableEngine>, Recovery), DurableError> {
        fs::create_dir_all(dir)?;
        let (journal, jrec) = Journal::open(dir, opts.segment_bytes, opts.fsync)?;
        let (catalog, crec) = CatalogFile::open(dir)?;
        let ckpts = checkpoint::scan_checkpoints(dir)?;

        let report = RecoveryReport {
            catalog_ops: crec.ops.len() as u64,
            checkpoint_tag: None,
            checkpoints_scanned: ckpts.scanned,
            checkpoints_rejected: ckpts.rejected,
            journal_segments: jrec.segments,
            journal_records: jrec.events.len() as u64,
            replayed_records: 0,
            truncated_bytes: jrec.truncated_bytes + crec.truncated_bytes,
        };
        let recovery = Recovery {
            catalog_ops: crec.ops,
            checkpoints: ckpts.checkpoints,
            events: jrec.events,
            report,
        };
        let engine = DurableEngine {
            dir: dir.to_path_buf(),
            opts,
            metrics: DurabilityMetrics::default(),
            journal: Mutex::new(journal),
            catalog: Mutex::new(catalog),
        };
        if let Some((tag, _)) = recovery.checkpoints.first() {
            engine.metrics.last_checkpoint_tag.set(*tag);
        }
        Ok((Arc::new(engine), recovery))
    }

    /// The data directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the engine was opened with.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }

    /// Appends one DDL operation to the catalog (always fsynced),
    /// stamping it with the current journal position.
    pub fn append_catalog(&self, op: &CatalogOp) -> Result<(), DurableError> {
        let at_index = self.journal.lock().next_index();
        self.catalog.lock().append(op, at_index)?;
        self.metrics.catalog_appends.inc();
        Ok(())
    }

    /// Appends one event to the journal per the fsync policy. Returns the
    /// record's global index.
    pub fn append_event(&self, ev: &LoggedEvent) -> Result<u64, DurableError> {
        let (index, bytes, synced, rotated) = self.journal.lock().append(ev)?;
        self.metrics.journal_appends.inc();
        self.metrics.journal_bytes.add(bytes);
        if synced {
            self.metrics.journal_fsyncs.inc();
        }
        if rotated {
            self.metrics.journal_rotations.inc();
        }
        Ok(index)
    }

    /// Index the next journal append will get (= records logged so far).
    pub fn next_index(&self) -> u64 {
        self.journal.lock().next_index()
    }

    /// Whether appending record `idx` should trigger an automatic
    /// checkpoint (`checkpoint_every` records apart, never at zero).
    pub fn checkpoint_due(&self, idx: u64) -> bool {
        self.opts.checkpoint_every > 0 && idx > 0 && idx % self.opts.checkpoint_every == 0
    }

    /// Writes a checkpoint covering journal records `< tag`. The journal
    /// tail is flushed first so the checkpoint never claims coverage of
    /// records that could be lost behind it.
    pub fn write_checkpoint(&self, tag: u64, snap: &GraphSnapshot) -> Result<(), DurableError> {
        let started = Instant::now();
        let result = (|| -> io::Result<u64> {
            self.journal.lock().flush()?;
            checkpoint::write_checkpoint(&self.dir, tag, snap)
        })();
        match result {
            Ok(bytes) => {
                self.metrics.checkpoints.inc();
                self.metrics.checkpoint_bytes.add(bytes);
                self.metrics.journal_fsyncs.inc();
                self.metrics.last_checkpoint_tag.set(tag);
                self.metrics.checkpoint_duration.record_duration(started.elapsed());
                Ok(())
            }
            Err(e) => {
                self.metrics.checkpoint_failures.inc();
                Err(e.into())
            }
        }
    }

    /// Forces the journal tail to disk (the catalog is always synced).
    pub fn flush(&self) -> Result<(), DurableError> {
        self.journal.lock().flush()?;
        self.metrics.journal_fsyncs.inc();
        Ok(())
    }

    /// The engine's live metrics.
    pub fn metrics(&self) -> &DurabilityMetrics {
        &self.metrics
    }

    /// Point-in-time snapshot of the metrics (the `durability` stats
    /// section).
    pub fn stats(&self) -> DurabilityStats {
        self.metrics.snapshot()
    }

    /// Writes `report` as `recovery-report.json` in the data directory.
    pub fn write_report(&self, report: &RecoveryReport) -> Result<(), DurableError> {
        fs::write(self.dir.join(RECOVERY_REPORT_FILE), format!("{}\n", report.to_json()))?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_detector::{LocalEventDetector, Value};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinel-eng-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev(i: u64) -> LoggedEvent {
        LoggedEvent::Explicit {
            name: "bump".into(),
            params: vec![("i".into(), Value::Int(i as i64))],
            txn: None,
            ts: i + 1,
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let dir = tmp("rt");
        {
            let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
            assert!(rec.events.is_empty() && rec.catalog_ops.is_empty());
            eng.append_catalog(&CatalogOp::DeclareExplicit { name: "bump".into() }).unwrap();
            for i in 0..5 {
                assert_eq!(eng.append_event(&ev(i)).unwrap(), i);
            }
            eng.append_catalog(&CatalogOp::DropRule { name: "r".into() }).unwrap();
            let snap = LocalEventDetector::new(1).snapshot_state();
            eng.write_checkpoint(3, &snap).unwrap();
            let stats = eng.stats();
            assert_eq!(stats.journal_appends, 5);
            assert_eq!(stats.catalog_appends, 2);
            assert_eq!(stats.checkpoints, 1);
            assert_eq!(stats.last_checkpoint_tag, 3);
        }
        let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 5);
        assert_eq!(rec.catalog_ops.len(), 2);
        assert_eq!(rec.catalog_ops[0].0, 0, "first op before any events");
        assert_eq!(rec.catalog_ops[1].0, 5, "second op after five events");
        assert_eq!(rec.checkpoints.len(), 1);
        assert_eq!(rec.checkpoints[0].0, 3);
        assert_eq!(rec.report.journal_records, 5);
        assert_eq!(rec.report.truncated_bytes, 0);
        assert_eq!(eng.next_index(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_cadence() {
        let dir = tmp("cadence");
        let opts = DurableOptions { checkpoint_every: 4, ..DurableOptions::default() };
        let (eng, _) = DurableEngine::open(&dir, opts).unwrap();
        let due: Vec<u64> = (0..13).filter(|&i| eng.checkpoint_due(i)).collect();
        assert_eq!(due, vec![4, 8, 12]);
        let off = DurableOptions { checkpoint_every: 0, ..DurableOptions::default() };
        drop(eng);
        fs::remove_dir_all(&dir).unwrap();
        let dir = tmp("cadence-off");
        let (eng, _) = DurableEngine::open(&dir, off).unwrap();
        assert!((0..100).all(|i| !eng.checkpoint_due(i)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_report_is_written() {
        let dir = tmp("report");
        let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        eng.write_report(&rec.report).unwrap();
        let text = fs::read_to_string(dir.join(RECOVERY_REPORT_FILE)).unwrap();
        let parsed = sentinel_obs::json::Value::parse(text.trim()).unwrap();
        assert_eq!(
            parsed.get("journal_records").and_then(sentinel_obs::json::Value::as_u64),
            Some(0)
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
