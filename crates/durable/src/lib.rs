//! # sentinel-durable
//!
//! The durability subsystem of the Sentinel reproduction: everything the
//! paper's Exodus-backed Open OODB got "for free" from its storage
//! manager but the *rule subsystem* itself never had — persistence for
//! the DDL catalog, the primitive event stream, and the half-detected
//! state of the composite event graph.
//!
//! The stores cooperating in one data directory:
//!
//! * [`catalog`] — an append-only, checksummed DDL journal
//!   (`catalog.log`). Class registrations, event declarations and rule
//!   define/enable/disable/drop are framed as JSON and replayed on open
//!   to rebuild the schema, the Snoop event graph, and the rule set.
//! * [`sharded`] — the durable primitive-event journal, one
//!   segment-rotated stream **per detector shard** plus an epoch fence
//!   log, so parallel detection journals without a single serialising
//!   appender. Recovery merges the streams at the fences back into
//!   happened-before order.
//! * [`group`] — the group-commit committer thread that batches fsyncs
//!   across all streams (the [`FsyncPolicy`] maps onto it), and the
//!   asynchronous checkpointer that runs cadence checkpoints off the
//!   signalling threads.
//! * [`journal`] — the legacy (v1) single-stream journal format, kept
//!   for reading: data directories written before sharding recover
//!   through [`journal::scan_dir`] and continue in the v2 format.
//! * [`checkpoint`] — periodic [`sentinel_detector::GraphSnapshot`]
//!   checkpoints tagged with a journal offset, so recovery loads the
//!   newest valid checkpoint and replays only the journal suffix —
//!   half-detected composites resume exactly where the crash left them.
//!
//! All stores share the truncate-at-first-bad-record discipline of
//! [`frame`]: a torn or bit-flipped tail shortens history, it never
//! panics and never corrupts what came before it.
//!
//! This crate is policy-free: it moves bytes and reports what it found.
//! `sentinel-core` owns the semantics — interleaving catalog ops and
//! fences with journal records, validating checkpoints against the
//! rebuilt graph, and replaying the suffix through the detector.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod catalog;
pub mod checkpoint;
pub mod frame;
pub mod group;
pub mod journal;
pub mod repl;
pub mod sharded;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::Mutex;
use sentinel_detector::log::LoggedEvent;
use sentinel_detector::{FenceKind, GraphSnapshot};
use sentinel_obs::flight::{self, FlightKind};
use sentinel_obs::{DurabilityMetrics, DurabilityStats, RecoveryReport};

pub use catalog::{CatalogFile, CatalogOp};
pub use journal::Journal;
pub use repl::{FollowerAck, ReplEntry, ReplicationLog};
pub use sharded::{ShardedJournal, ShardedRecovery};

use group::{Checkpointer, CommitterConfig, GroupCommit};

/// File name of the JSON recovery report written after each open.
pub const RECOVERY_REPORT_FILE: &str = "recovery-report.json";

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// An underlying I/O failure.
    Io(io::Error),
}

impl fmt::Display for DurableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durable i/o error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {}

impl From<io::Error> for DurableError {
    fn from(e: io::Error) -> Self {
        DurableError::Io(e)
    }
}

/// When appended events become durable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Every append blocks until its record is fsynced — by the next
    /// group commit, so concurrent appenders share the fsync (no events
    /// lost on crash).
    Always,
    /// Group-commit once every N appended events; appends never block.
    EveryN(u64),
    /// Never fsync from the append path; only on rotation, explicit
    /// flush, checkpoints, and graceful shutdown.
    Never,
}

/// Tuning knobs for a durable engine.
#[derive(Debug, Clone, Copy)]
pub struct DurableOptions {
    /// Journal fsync policy (default: [`FsyncPolicy::Always`]).
    pub fsync: FsyncPolicy,
    /// Rotate journal stream segments once they pass this size
    /// (default 4 MiB).
    pub segment_bytes: u64,
    /// Take a checkpoint every N journal records; `0` disables automatic
    /// checkpoints (default 1024).
    pub checkpoint_every: u64,
    /// Group-commit accumulation window, µs: after the first pending
    /// append wakes the committer it sleeps this long so a batch builds
    /// up (default 0 — commit immediately).
    pub group_window_us: u64,
    /// Force a group commit once this many payload bytes are pending,
    /// regardless of the fsync policy; `0` disables (default 0).
    pub group_bytes: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 4 * 1024 * 1024,
            checkpoint_every: 1024,
            group_window_us: 0,
            group_bytes: 0,
        }
    }
}

/// Everything a [`DurableEngine::open`] recovered from the data
/// directory, for `sentinel-core` to replay.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Catalog operations as `(at_index, op)` in append order; `at_index`
    /// is the journal record index current when the op executed.
    pub catalog_ops: Vec<(u64, CatalogOp)>,
    /// Decodable checkpoints, newest first, as `(tag, snapshot)`. The
    /// caller restores the first one that validates against the rebuilt
    /// graph and replays `events[tag..]`.
    pub checkpoints: Vec<(u64, GraphSnapshot)>,
    /// Every valid journal record in replay order (v1 records first,
    /// then the merged v2 streams).
    pub events: Vec<LoggedEvent>,
    /// Fences in epoch order as `(position, kind)`: `position` counts the
    /// records of `events` that precede the fence. The caller re-applies
    /// flush/advance fences at their positions during suffix replay.
    pub fences: Vec<(u64, FenceKind)>,
    /// How many leading records of `events` came from a legacy v1
    /// single-stream journal (their transaction flushes are inferred, not
    /// fenced).
    pub v1_records: u64,
    /// Partially filled report: counts of what the scan found. The caller
    /// completes `checkpoint_tag`, `replayed_records`, and any extra
    /// `checkpoints_rejected` from live-graph validation.
    pub report: RecoveryReport,
}

/// The durable engine: one open data directory holding the catalog, the
/// sharded event journal, checkpoints, and the group-commit /
/// checkpointer threads.
///
/// Lock ordering: journal streams before `catalog`, never the reverse.
#[derive(Debug)]
pub struct DurableEngine {
    dir: PathBuf,
    opts: DurableOptions,
    metrics: Arc<DurabilityMetrics>,
    journal: Arc<ShardedJournal>,
    catalog: Mutex<CatalogFile>,
    /// Records appended across the engine's lifetime (= next record
    /// index). Monotone; reads under any shard lock are consistent
    /// because fences/DDL exclude appends.
    records: AtomicU64,
    /// The open epoch new records are stamped with (= fences cut so far).
    epoch: AtomicU64,
    gc: Arc<GroupCommit>,
    ckpt: Arc<Checkpointer>,
    committer: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    /// The replication stream followers tail (seeded from recovery so log
    /// sequence numbers are stable across restarts).
    repl: Arc<ReplicationLog>,
}

/// Seeds the replication log from what recovery found, in the exact merge
/// order `sentinel-core` replays: catalog ops stamped `at_index <= i` and
/// fences at `position <= i` precede journal record `i`. A log sequence
/// number is therefore a deterministic function of the recovered history.
fn seed_replication(repl: &ReplicationLog, recovery: &Recovery) {
    let mut cursor = 0usize;
    let mut fcursor = 0usize;
    let mut epoch = 0u64;
    let mut interleave = |repl: &ReplicationLog, upto: u64, epoch: &mut u64| {
        while cursor < recovery.catalog_ops.len() && recovery.catalog_ops[cursor].0 <= upto {
            let (at_index, op) = &recovery.catalog_ops[cursor];
            repl.push(ReplEntry::Catalog { at_index: *at_index, op: op.clone() });
            cursor += 1;
        }
        while fcursor < recovery.fences.len() && recovery.fences[fcursor].0 <= upto {
            let (position, kind) = recovery.fences[fcursor];
            repl.push(ReplEntry::Fence { position, epoch: *epoch, kind, ts: 0 });
            *epoch += 1;
            fcursor += 1;
        }
    };
    for (i, ev) in recovery.events.iter().enumerate() {
        interleave(repl, i as u64, &mut epoch);
        repl.push(ReplEntry::Event { index: i as u64, shard: 0, epoch, ev: ev.clone() });
    }
    interleave(repl, u64::MAX, &mut epoch);
}

impl DurableEngine {
    /// Opens (creating if needed) the data directory, scans and repairs
    /// all stores, and returns the engine plus what it recovered.
    ///
    /// Legacy v1 journals are read (and repaired) but new appends always
    /// go to v2 per-shard streams; the recovered event list is the v1
    /// records followed by the merged v2 streams.
    pub fn open(
        dir: &Path,
        opts: DurableOptions,
    ) -> Result<(Arc<DurableEngine>, Recovery), DurableError> {
        fs::create_dir_all(dir)?;
        let v1 = journal::scan_dir(dir)?;
        let (journal, srec) = ShardedJournal::open(dir, opts.segment_bytes)?;
        let (catalog, crec) = CatalogFile::open(dir)?;
        let ckpts = checkpoint::scan_checkpoints(dir)?;

        let v1_records = v1.events.len() as u64;
        let mut events = v1.events;
        events.extend(srec.events);
        let fences: Vec<(u64, FenceKind)> =
            srec.fences.iter().map(|(pos, kind)| (pos + v1_records, *kind)).collect();

        let mut report = RecoveryReport {
            catalog_ops: crec.ops.len() as u64,
            checkpoint_tag: None,
            checkpoints_scanned: ckpts.scanned,
            checkpoints_rejected: ckpts.rejected,
            journal_segments: v1.segments + srec.segments,
            journal_records: events.len() as u64,
            replayed_records: 0,
            truncated_bytes: v1.truncated_bytes + srec.truncated_bytes + crec.truncated_bytes,
            journal_fences: fences.len() as u64,
            ..RecoveryReport::default()
        };
        report.phases.fence_repair_us = srec.fence_repair_us;
        report.phases.stream_merge_us = srec.stream_merge_us;
        let recovery = Recovery {
            catalog_ops: crec.ops,
            checkpoints: ckpts.checkpoints,
            events,
            fences,
            v1_records,
            report,
        };

        let repl = Arc::new(ReplicationLog::default());
        seed_replication(&repl, &recovery);

        let metrics = Arc::new(DurabilityMetrics::default());
        let journal = Arc::new(journal);
        let gc = Arc::new(GroupCommit::default());
        let ckpt = Arc::new(Checkpointer::default());
        let committer = {
            let journal = journal.clone();
            let gc = gc.clone();
            let metrics = metrics.clone();
            let cfg = CommitterConfig {
                fsync: opts.fsync,
                group_window_us: opts.group_window_us,
                group_bytes: opts.group_bytes,
            };
            let flight_dump = dir.join(flight::FLIGHT_RECORDER_FILE);
            std::thread::Builder::new()
                .name("sentinel-committer".into())
                .spawn(move || group::committer_loop(journal, gc, metrics, cfg, flight_dump))
                .map_err(DurableError::Io)?
        };
        let checkpointer = {
            let ckpt = ckpt.clone();
            std::thread::Builder::new()
                .name("sentinel-checkpointer".into())
                .spawn(move || group::checkpointer_loop(ckpt))
                .map_err(DurableError::Io)?
        };

        let engine = DurableEngine {
            dir: dir.to_path_buf(),
            opts,
            metrics,
            journal,
            catalog: Mutex::new(catalog),
            records: AtomicU64::new(recovery.events.len() as u64),
            epoch: AtomicU64::new(srec.next_epoch),
            gc,
            ckpt,
            committer: Some(committer),
            checkpointer: Some(checkpointer),
            repl,
        };
        if let Some((tag, _)) = recovery.checkpoints.first() {
            engine.metrics.last_checkpoint_tag.set(*tag);
        }
        Ok((Arc::new(engine), recovery))
    }

    /// The data directory this engine persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The options the engine was opened with.
    pub fn options(&self) -> &DurableOptions {
        &self.opts
    }

    /// Appends one DDL operation to the catalog (always fsynced),
    /// stamping it with the current journal position. Callers hold a
    /// whole-graph barrier across DDL, so the position is stable.
    pub fn append_catalog(&self, op: &CatalogOp) -> Result<(), DurableError> {
        let at_index = self.records.load(Ordering::SeqCst);
        self.catalog.lock().append(op, at_index)?;
        self.repl.push(ReplEntry::Catalog { at_index, op: op.clone() });
        self.metrics.catalog_appends.inc();
        Ok(())
    }

    /// Appends one event to `shard`'s journal stream, stamped with the
    /// open epoch. Under [`FsyncPolicy::Always`] this blocks until the
    /// committer's next group commit covers the record. Returns the
    /// record's global index.
    ///
    /// Safe to call from concurrent signalling threads (one per shard);
    /// must **not** be called while holding a whole-graph barrier the
    /// committer would need — it never needs one.
    pub fn append_event(&self, shard: u32, ev: &LoggedEvent) -> Result<u64, DurableError> {
        let index = self.records.fetch_add(1, Ordering::SeqCst);
        let epoch = self.epoch.load(Ordering::SeqCst);
        let out = self.journal.append(shard, epoch, ev)?;
        self.repl.push(ReplEntry::Event { index, shard, epoch, ev: ev.clone() });
        self.metrics.journal_appends.inc();
        self.metrics.journal_bytes.add(out.bytes);
        if out.rotated {
            self.metrics.journal_rotations.inc();
            self.metrics.journal_fsyncs.inc();
        }
        let seq = self.gc.note_append(out.bytes);
        if self.opts.fsync == FsyncPolicy::Always {
            self.gc.wait_durable(seq);
        }
        if self.checkpoint_due(index + 1) {
            self.ckpt.trigger();
        }
        Ok(index)
    }

    /// Appends (and fsyncs) one fence closing the open epoch, then
    /// advances the epoch. Callers hold a whole-graph ordering point
    /// (quiesce or graph write lock), so no record append is in flight.
    pub fn append_fence(&self, kind: FenceKind, ts: u64) -> Result<(), DurableError> {
        let epoch = self.epoch.load(Ordering::SeqCst);
        self.journal.append_fence(epoch, kind, ts)?;
        let position = self.records.load(Ordering::SeqCst);
        self.repl.push(ReplEntry::Fence { position, epoch, kind, ts });
        self.metrics.journal_fences.inc();
        self.metrics.journal_fsyncs.inc();
        self.epoch.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }

    /// Index the next journal append will get (= records logged so far).
    pub fn next_index(&self) -> u64 {
        self.records.load(Ordering::SeqCst)
    }

    /// The replication stream followers tail.
    pub fn replication(&self) -> &Arc<ReplicationLog> {
        &self.repl
    }

    /// Installs the closure the checkpointer thread runs when the
    /// checkpoint cadence fires. The closure must capture only weak
    /// references to the engine (and detector) or the engine never
    /// drops.
    pub fn set_checkpoint_hook(&self, hook: Arc<dyn Fn() + Send + Sync>) {
        self.ckpt.set_hook(hook);
    }

    /// Whether appending record `idx` should trigger an automatic
    /// checkpoint (`checkpoint_every` records apart, never at zero).
    pub fn checkpoint_due(&self, idx: u64) -> bool {
        self.opts.checkpoint_every > 0 && idx > 0 && idx % self.opts.checkpoint_every == 0
    }

    /// Writes a checkpoint covering journal records `< tag`. The journal
    /// streams are flushed first so the checkpoint never claims coverage
    /// of records that could be lost behind it.
    pub fn write_checkpoint(&self, tag: u64, snap: &GraphSnapshot) -> Result<(), DurableError> {
        let started = Instant::now();
        let target = self.gc.pending();
        let result = (|| -> io::Result<u64> {
            let synced = self.journal.sync_dirty()?;
            self.metrics.journal_fsyncs.add(synced);
            checkpoint::write_checkpoint(&self.dir, tag, snap)
        })();
        self.gc.complete(target);
        match result {
            Ok(bytes) => {
                self.metrics.checkpoints.inc();
                self.metrics.checkpoint_bytes.add(bytes);
                self.metrics.last_checkpoint_tag.set(tag);
                self.metrics.checkpoint_duration.record_duration(started.elapsed());
                flight::global().record_static(FlightKind::Checkpoint, "checkpoint", tag, bytes);
                Ok(())
            }
            Err(e) => {
                self.metrics.checkpoint_failures.inc();
                Err(e.into())
            }
        }
    }

    /// Forces every dirty journal stream to disk (the catalog and fence
    /// log are always synced). Also freshens the flight-recorder dump —
    /// flush runs on graceful shutdown, where the ring should be current.
    pub fn flush(&self) -> Result<(), DurableError> {
        let target = self.gc.pending();
        let synced = self.journal.sync_dirty()?;
        self.metrics.journal_fsyncs.add(synced);
        self.gc.complete(target);
        let _ = flight::global().dump_if_dirty(&self.dir.join(flight::FLIGHT_RECORDER_FILE));
        Ok(())
    }

    /// The engine's live metrics.
    pub fn metrics(&self) -> &DurabilityMetrics {
        &self.metrics
    }

    /// Point-in-time snapshot of the metrics (the `durability` stats
    /// section).
    pub fn stats(&self) -> DurabilityStats {
        self.metrics.snapshot()
    }

    /// Writes `report` as `recovery-report.json` in the data directory.
    pub fn write_report(&self, report: &RecoveryReport) -> Result<(), DurableError> {
        fs::write(self.dir.join(RECOVERY_REPORT_FILE), format!("{}\n", report.to_json()))?;
        Ok(())
    }
}

impl Drop for DurableEngine {
    /// Stops the committer and checkpointer. Deliberately does **not**
    /// flush: dropping an engine models a crash for whatever the fsync
    /// policy left unsynced (graceful shutdown calls [`Self::flush`]
    /// explicitly). If the last reference dies on the checkpointer's own
    /// thread the handle is detached instead of self-joined.
    fn drop(&mut self) {
        self.gc.shutdown();
        self.ckpt.shutdown();
        for handle in [self.committer.take(), self.checkpointer.take()].into_iter().flatten() {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_detector::{LocalEventDetector, Value};

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinel-eng-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn ev(i: u64) -> LoggedEvent {
        LoggedEvent::Explicit {
            name: "bump".into(),
            params: vec![("i".into(), Value::Int(i as i64))],
            txn: None,
            ts: i + 1,
        }
    }

    #[test]
    fn open_append_reopen_recovers_everything() {
        let dir = tmp("rt");
        {
            let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
            assert!(rec.events.is_empty() && rec.catalog_ops.is_empty());
            eng.append_catalog(&CatalogOp::DeclareExplicit { name: "bump".into() }).unwrap();
            for i in 0..5 {
                assert_eq!(eng.append_event(0, &ev(i)).unwrap(), i);
            }
            eng.append_catalog(&CatalogOp::DropRule { name: "r".into() }).unwrap();
            let snap = LocalEventDetector::new(1).snapshot_state();
            eng.write_checkpoint(3, &snap).unwrap();
            let stats = eng.stats();
            assert_eq!(stats.journal_appends, 5);
            assert_eq!(stats.catalog_appends, 2);
            assert_eq!(stats.checkpoints, 1);
            assert_eq!(stats.last_checkpoint_tag, 3);
            assert!(stats.group_commits >= 1, "Always policy rides group commits");
        }
        let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 5);
        assert_eq!(rec.v1_records, 0);
        assert_eq!(rec.catalog_ops.len(), 2);
        assert_eq!(rec.catalog_ops[0].0, 0, "first op before any events");
        assert_eq!(rec.catalog_ops[1].0, 5, "second op after five events");
        assert_eq!(rec.checkpoints.len(), 1);
        assert_eq!(rec.checkpoints[0].0, 3);
        assert_eq!(rec.report.journal_records, 5);
        assert_eq!(rec.report.truncated_bytes, 0);
        assert_eq!(eng.next_index(), 5);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fences_advance_epochs_and_recover_in_order() {
        let dir = tmp("fence");
        {
            let (eng, _) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
            eng.append_event(0, &ev(0)).unwrap();
            eng.append_event(1, &ev(1)).unwrap();
            eng.append_fence(FenceKind::FlushTxn(3), 2).unwrap();
            eng.append_event(1, &ev(2)).unwrap();
            eng.append_fence(FenceKind::Barrier, 3).unwrap();
        }
        let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.fences, vec![(2, FenceKind::FlushTxn(3)), (3, FenceKind::Barrier)]);
        assert_eq!(rec.report.journal_fences, 2);
        // New appends continue in the next epoch.
        eng.append_event(0, &ev(3)).unwrap();
        drop(eng);
        let (_, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 4);
        assert_eq!(rec.fences.len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn v1_journal_is_read_and_appends_continue_in_v2() {
        let dir = tmp("v1compat");
        fs::create_dir_all(&dir).unwrap();
        {
            let (mut j, _) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
            for i in 0..4 {
                j.append(&ev(i)).unwrap();
            }
        }
        let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 4);
        assert_eq!(rec.v1_records, 4);
        assert_eq!(eng.next_index(), 4);
        assert_eq!(eng.append_event(2, &ev(4)).unwrap(), 4);
        eng.append_fence(FenceKind::Barrier, 6).unwrap();
        drop(eng);
        let (_, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        assert_eq!(rec.events.len(), 5, "v1 prefix + v2 suffix");
        assert_eq!(rec.v1_records, 4);
        assert_eq!(rec.fences, vec![(5, FenceKind::Barrier)], "positions offset past v1");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_cadence() {
        let dir = tmp("cadence");
        let opts = DurableOptions { checkpoint_every: 4, ..DurableOptions::default() };
        let (eng, _) = DurableEngine::open(&dir, opts).unwrap();
        let due: Vec<u64> = (0..13).filter(|&i| eng.checkpoint_due(i)).collect();
        assert_eq!(due, vec![4, 8, 12]);
        let off = DurableOptions { checkpoint_every: 0, ..DurableOptions::default() };
        drop(eng);
        fs::remove_dir_all(&dir).unwrap();
        let dir = tmp("cadence-off");
        let (eng, _) = DurableEngine::open(&dir, off).unwrap();
        assert!((0..100).all(|i| !eng.checkpoint_due(i)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_hook_runs_on_cadence() {
        let dir = tmp("hook");
        let opts = DurableOptions { checkpoint_every: 2, ..DurableOptions::default() };
        let (eng, _) = DurableEngine::open(&dir, opts).unwrap();
        let hits = Arc::new(AtomicU64::new(0));
        let h = hits.clone();
        eng.set_checkpoint_hook(Arc::new(move || {
            h.fetch_add(1, Ordering::SeqCst);
        }));
        for i in 0..6 {
            eng.append_event(0, &ev(i)).unwrap();
        }
        // The checkpointer is asynchronous; give it a moment.
        for _ in 0..200 {
            if hits.load(Ordering::SeqCst) >= 1 {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
        assert!(hits.load(Ordering::SeqCst) >= 1, "cadence must reach the hook");
        drop(eng);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_report_is_written() {
        let dir = tmp("report");
        let (eng, rec) = DurableEngine::open(&dir, DurableOptions::default()).unwrap();
        eng.write_report(&rec.report).unwrap();
        let text = fs::read_to_string(dir.join(RECOVERY_REPORT_FILE)).unwrap();
        let parsed = sentinel_obs::json::Value::parse(text.trim()).unwrap();
        assert_eq!(
            parsed.get("journal_records").and_then(sentinel_obs::json::Value::as_u64),
            Some(0)
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
