//! The sharded (v2) event journal: one segment-rotated stream **per
//! detector shard** plus a global fence log, so parallel detection can
//! journal without serialising on a single appender.
//!
//! # Layout
//!
//! * `shard-{shard:04}-{seg:06}.seg` — per-shard streams. 16-byte header
//!   (`"SJN2"` magic, `shard: u32 LE`, `base: u64 LE` = records in this
//!   stream before the segment), then frames of
//!   `epoch: u64 LE ++ encode_event` bytes.
//! * `fences.log` — the global fence log. 8-byte header (`"SFN1"` magic,
//!   `version: u32 LE = 1`), then frames of
//!   `epoch: u64 ++ kind: u8 ++ arg: u64 ++ ts: u64`. **Always fsynced**
//!   before the epoch counter advances, so a fence on disk implies every
//!   earlier fence is on disk and fence `i` always has epoch `i`.
//!
//! # Ordering
//!
//! Records carry the epoch they were appended in; within an epoch the
//! shared logical clock timestamp is a total tiebreaker (one atomic
//! clock, globally unique ticks) and no operator compares occurrences
//! from two shards. Recovery therefore merges streams by
//! `(epoch, ts, shard)` and the result is equivalent to the live
//! happened-before order.
//!
//! # Crash repair
//!
//! The fence log is repaired first (truncate at the first bad frame or
//! the first frame whose epoch differs from its index); with `F` valid
//! fences the open epoch is `F`, so any stream record with epoch `> F`
//! can only be the product of a lost fence write — the stream is
//! truncated there. Each stream then gets the v1 repair discipline: torn
//! tails truncated, segments after a hole deleted.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, Bytes, BytesMut};
use parking_lot::Mutex;
use sentinel_detector::log::{decode_event, encode_event, LoggedEvent};
use sentinel_detector::FenceKind;

use crate::frame::{put_frame, scan_frames, HEADER};

const STREAM_MAGIC: &[u8; 4] = b"SJN2";
const STREAM_HEADER: usize = 16;
const FENCE_MAGIC: &[u8; 4] = b"SFN1";
const FENCE_VERSION: u32 = 1;
const FENCE_HEADER: usize = 8;
/// Fence frame payload: epoch + kind + arg + ts.
const FENCE_PAYLOAD: usize = 8 + 1 + 8 + 8;

fn stream_path(dir: &Path, shard: u32, seg: u64) -> PathBuf {
    dir.join(format!("shard-{shard:04}-{seg:06}.seg"))
}

fn fence_path(dir: &Path) -> PathBuf {
    dir.join("fences.log")
}

/// Lists v2 stream segments grouped by shard, each shard's segments
/// ascending.
fn list_streams(dir: &Path) -> io::Result<BTreeMap<u32, Vec<(u64, PathBuf)>>> {
    let mut out: BTreeMap<u32, Vec<(u64, PathBuf)>> = BTreeMap::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(rest) = name.strip_prefix("shard-").and_then(|r| r.strip_suffix(".seg")) else {
            continue;
        };
        let Some((shard, seg)) = rest.split_once('-') else { continue };
        if let (Ok(shard), Ok(seg)) = (shard.parse::<u32>(), seg.parse::<u64>()) {
            out.entry(shard).or_default().push((seg, entry.path()));
        }
    }
    for segs in out.values_mut() {
        segs.sort();
    }
    Ok(out)
}

fn encode_fence_kind(kind: FenceKind) -> (u8, u64) {
    match kind {
        FenceKind::Barrier => (0, 0),
        FenceKind::FlushTxn(txn) => (1, txn),
        FenceKind::AdvanceTime(to) => (2, to),
    }
}

fn decode_fence_kind(tag: u8, arg: u64) -> Option<FenceKind> {
    match tag {
        0 => Some(FenceKind::Barrier),
        1 => Some(FenceKind::FlushTxn(arg)),
        2 => Some(FenceKind::AdvanceTime(arg)),
        _ => None,
    }
}

/// What recovering a sharded journal found.
#[derive(Debug, Default)]
pub struct ShardedRecovery {
    /// Every decodable event, merged across streams into replay order
    /// (sorted by `(epoch, ts, shard)`).
    pub events: Vec<LoggedEvent>,
    /// Fences in epoch order as `(position, kind)`: `position` is the
    /// number of merged records that precede the fence (records with
    /// epoch `<=` the fence's).
    pub fences: Vec<(u64, FenceKind)>,
    /// Stream segment files that survive recovery.
    pub segments: u64,
    /// Bytes discarded from torn tails, dropped segments and the fence
    /// log.
    pub truncated_bytes: u64,
    /// The epoch new appends should use (= number of valid fences).
    pub next_epoch: u64,
    /// Wall time spent repairing the fence log, µs.
    pub fence_repair_us: u64,
    /// Wall time spent scanning the streams and merging them into replay
    /// order, µs.
    pub stream_merge_us: u64,
}

/// One shard's open append stream.
#[derive(Debug)]
struct Stream {
    shard: u32,
    file: File,
    seg: u64,
    seg_len: u64,
    /// Records written to this stream across all its segments.
    records: u64,
    /// Written since the last sync of this stream.
    dirty: bool,
}

fn new_stream_segment(dir: &Path, shard: u32, seg: u64, base: u64) -> io::Result<(File, u64)> {
    let mut file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(stream_path(dir, shard, seg))?;
    let mut header = Vec::with_capacity(STREAM_HEADER);
    header.extend_from_slice(STREAM_MAGIC);
    header.extend_from_slice(&shard.to_le_bytes());
    header.extend_from_slice(&base.to_le_bytes());
    file.write_all(&header)?;
    file.sync_data()?;
    Ok((file, STREAM_HEADER as u64))
}

/// Outcome of one stream append.
#[derive(Debug, Clone, Copy)]
pub struct StreamAppend {
    /// Frame bytes written (header + payload).
    pub bytes: u64,
    /// The segment was sealed (fsynced) and a new one started.
    pub rotated: bool,
}

/// The open sharded journal: per-shard append streams plus the fence
/// log. Appends on different shards only contend on a brief map lookup;
/// the actual write happens under the per-stream lock.
#[derive(Debug)]
pub struct ShardedJournal {
    dir: PathBuf,
    segment_bytes: u64,
    streams: Mutex<BTreeMap<u32, Arc<Mutex<Stream>>>>,
    fences: Mutex<FenceWriter>,
}

/// Valid fences in epoch order, as `(kind, ts)`.
type FenceList = Vec<(FenceKind, u64)>;

/// Tail segment position: `(segment number, valid length)`, with a
/// `u64::MAX` length meaning "whole file".
type SegTail = Option<(u64, u64)>;

#[derive(Debug)]
struct FenceWriter {
    file: File,
}

impl FenceWriter {
    /// Opens (repairing) the fence log; returns the writer, the valid
    /// fences as `(kind, ts)` in epoch order, and bytes truncated.
    fn open(dir: &Path) -> io::Result<(FenceWriter, FenceList, u64)> {
        let path = fence_path(dir);
        let mut fences = Vec::new();
        let mut truncated = 0u64;
        let mut fresh = true;
        if path.exists() {
            let mut data = Vec::new();
            File::open(&path)?.read_to_end(&mut data)?;
            let total = data.len() as u64;
            let header_ok = data.len() >= FENCE_HEADER
                && &data[..4] == FENCE_MAGIC
                && u32::from_le_bytes(data[4..8].try_into().unwrap()) == FENCE_VERSION;
            if header_ok {
                let scan = scan_frames(&data[FENCE_HEADER..]);
                let mut valid_len = FENCE_HEADER as u64;
                for payload in &scan.frames {
                    let ok = payload.len() == FENCE_PAYLOAD
                        && u64::from_le_bytes(payload[..8].try_into().unwrap())
                            == fences.len() as u64;
                    let kind = if ok {
                        decode_fence_kind(
                            payload[8],
                            u64::from_le_bytes(payload[9..17].try_into().unwrap()),
                        )
                    } else {
                        None
                    };
                    match kind {
                        Some(kind) => {
                            let ts = u64::from_le_bytes(payload[17..25].try_into().unwrap());
                            fences.push((kind, ts));
                            valid_len += (HEADER + payload.len()) as u64;
                        }
                        // A malformed fence frame (or an epoch hole) ends
                        // the trusted prefix.
                        None => break,
                    }
                }
                if valid_len < total {
                    truncated = total - valid_len;
                    OpenOptions::new().write(true).open(&path)?.set_len(valid_len)?;
                }
                fresh = false;
            } else {
                truncated = total;
            }
        }
        if fresh {
            let mut file =
                OpenOptions::new().create(true).truncate(true).write(true).open(&path)?;
            let mut header = Vec::with_capacity(FENCE_HEADER);
            header.extend_from_slice(FENCE_MAGIC);
            header.extend_from_slice(&FENCE_VERSION.to_le_bytes());
            file.write_all(&header)?;
            file.sync_data()?;
        }
        let file = OpenOptions::new().append(true).open(&path)?;
        Ok((FenceWriter { file }, fences, truncated))
    }

    fn append(&mut self, epoch: u64, kind: FenceKind, ts: u64) -> io::Result<()> {
        let (tag, arg) = encode_fence_kind(kind);
        let mut payload = Vec::with_capacity(FENCE_PAYLOAD);
        payload.extend_from_slice(&epoch.to_le_bytes());
        payload.push(tag);
        payload.extend_from_slice(&arg.to_le_bytes());
        payload.extend_from_slice(&ts.to_le_bytes());
        let mut buf = Vec::with_capacity(FENCE_PAYLOAD + HEADER);
        put_frame(&mut buf, &payload);
        self.file.write_all(&buf)?;
        // The fence log is the ordering ground truth: always durable
        // before the epoch advances.
        self.file.sync_data()
    }
}

/// One recovered record before merging.
struct RawRecord {
    epoch: u64,
    ts: u64,
    shard: u32,
    ev: LoggedEvent,
}

impl ShardedJournal {
    /// Opens the sharded journal in `dir`, repairing streams and fence
    /// log, and returns the merged recovery.
    pub fn open(dir: &Path, segment_bytes: u64) -> io::Result<(ShardedJournal, ShardedRecovery)> {
        let mut recovery = ShardedRecovery::default();
        let t_fence = std::time::Instant::now();
        let (fence_writer, fence_list, fence_truncated) = FenceWriter::open(dir)?;
        recovery.fence_repair_us = t_fence.elapsed().as_micros() as u64;
        recovery.truncated_bytes += fence_truncated;
        recovery.next_epoch = fence_list.len() as u64;
        let cutoff = recovery.next_epoch;

        let t_merge = std::time::Instant::now();
        let mut records: Vec<RawRecord> = Vec::new();
        let mut streams = BTreeMap::new();
        for (shard, segs) in list_streams(dir)? {
            let (stream_records, tail, truncated) =
                scan_stream(shard, &segs, cutoff, &mut records)?;
            recovery.truncated_bytes += truncated;
            if let Some((seg, valid_len)) = tail {
                let path = stream_path(dir, shard, seg);
                let file = OpenOptions::new().append(true).open(&path)?;
                let seg_len =
                    if valid_len == u64::MAX { file.metadata()?.len() } else { valid_len };
                streams.insert(
                    shard,
                    Arc::new(Mutex::new(Stream {
                        shard,
                        file,
                        seg,
                        seg_len,
                        records: stream_records,
                        dirty: false,
                    })),
                );
            }
        }
        recovery.segments = list_streams(dir)?.values().map(|segs| segs.len() as u64).sum::<u64>();

        // Merge into replay order. Within an epoch the shared clock makes
        // `ts` a total tiebreaker; the sort is stable so same-ts records
        // (pinned-timestamp replays) keep their per-stream order.
        records.sort_by_key(|r| (r.epoch, r.ts, r.shard));
        recovery.fences = fence_list
            .iter()
            .enumerate()
            .map(|(i, (kind, _ts))| {
                let pos = records.partition_point(|r| r.epoch <= i as u64) as u64;
                (pos, *kind)
            })
            .collect();
        recovery.events = records.into_iter().map(|r| r.ev).collect();
        recovery.stream_merge_us = t_merge.elapsed().as_micros() as u64;

        let journal = ShardedJournal {
            dir: dir.to_path_buf(),
            segment_bytes: segment_bytes.max(STREAM_HEADER as u64 + 1),
            streams: Mutex::new(streams),
            fences: Mutex::new(fence_writer),
        };
        Ok((journal, recovery))
    }

    fn stream(&self, shard: u32) -> io::Result<Arc<Mutex<Stream>>> {
        let mut map = self.streams.lock();
        if let Some(s) = map.get(&shard) {
            return Ok(s.clone());
        }
        let (file, seg_len) = new_stream_segment(&self.dir, shard, 0, 0)?;
        let s =
            Arc::new(Mutex::new(Stream { shard, file, seg: 0, seg_len, records: 0, dirty: false }));
        map.insert(shard, s.clone());
        Ok(s)
    }

    /// Appends one event to `shard`'s stream, stamped with `epoch`.
    /// Durability is the committer's job — only rotation syncs inline
    /// (sealing the old segment).
    pub fn append(&self, shard: u32, epoch: u64, ev: &LoggedEvent) -> io::Result<StreamAppend> {
        let stream = self.stream(shard)?;
        let mut s = stream.lock();
        let mut payload = BytesMut::new();
        payload.extend_from_slice(&epoch.to_le_bytes());
        encode_event(&mut payload, ev);
        let mut buf = Vec::with_capacity(payload.len() + HEADER);
        put_frame(&mut buf, &payload);
        s.file.write_all(&buf)?;
        s.seg_len += buf.len() as u64;
        s.records += 1;
        s.dirty = true;
        let rotated = s.seg_len >= self.segment_bytes;
        if rotated {
            // Rotation always seals the old segment durably.
            s.file.sync_data()?;
            s.dirty = false;
            let (file, seg_len) = new_stream_segment(&self.dir, s.shard, s.seg + 1, s.records)?;
            s.seg += 1;
            s.file = file;
            s.seg_len = seg_len;
        }
        Ok(StreamAppend { bytes: buf.len() as u64, rotated })
    }

    /// Appends (and fsyncs) one fence stamped with the epoch it closes.
    pub fn append_fence(&self, epoch: u64, kind: FenceKind, ts: u64) -> io::Result<()> {
        self.fences.lock().append(epoch, kind, ts)
    }

    /// Syncs every stream with unsynced writes; returns how many files
    /// were fsynced.
    pub fn sync_dirty(&self) -> io::Result<u64> {
        let streams: Vec<_> = self.streams.lock().values().cloned().collect();
        let mut synced = 0u64;
        for stream in streams {
            let mut s = stream.lock();
            if s.dirty {
                s.file.sync_data()?;
                s.dirty = false;
                synced += 1;
            }
        }
        Ok(synced)
    }
}

/// Scans one shard's segments in order, appending surviving records to
/// `records`. Returns `(record count, tail, truncated bytes)`.
fn scan_stream(
    shard: u32,
    segs: &[(u64, PathBuf)],
    cutoff: u64,
    records: &mut Vec<RawRecord>,
) -> io::Result<(u64, SegTail, u64)> {
    let mut count = 0u64;
    let mut truncated = 0u64;
    let mut tail: Option<(u64, u64)> = None;
    let mut corrupt_at: Option<usize> = None;
    for (i, (seg, path)) in segs.iter().enumerate() {
        let mut data = Vec::new();
        File::open(path)?.read_to_end(&mut data)?;
        let total = data.len() as u64;
        let header_ok = data.len() >= STREAM_HEADER
            && &data[..4] == STREAM_MAGIC
            && u32::from_le_bytes(data[4..8].try_into().unwrap()) == shard
            && u64::from_le_bytes(data[8..16].try_into().unwrap()) == count;
        if !header_ok {
            truncated += total;
            corrupt_at = Some(i);
            break;
        }
        let scan = scan_frames(&data[STREAM_HEADER..]);
        let mut valid_len = STREAM_HEADER as u64;
        let mut clean = true;
        for payload in &scan.frames {
            if payload.len() <= 8 {
                clean = false;
                break;
            }
            let epoch = u64::from_le_bytes(payload[..8].try_into().unwrap());
            if epoch > cutoff {
                // The fence that would have opened this epoch never made
                // it to disk: the record is from a lost future.
                clean = false;
                break;
            }
            let mut buf = Bytes::copy_from_slice(&payload[8..]);
            match decode_event(&mut buf) {
                Some(ev) if !buf.has_remaining() => {
                    records.push(RawRecord { epoch, ts: ev.ts(), shard, ev });
                    count += 1;
                    valid_len += (HEADER + payload.len()) as u64;
                }
                _ => {
                    clean = false;
                    break;
                }
            }
        }
        clean = clean && scan.truncated(total - STREAM_HEADER as u64) == 0;
        truncated += total - valid_len;
        tail = Some((*seg, valid_len));
        if !clean {
            if valid_len > STREAM_HEADER as u64 {
                fs::OpenOptions::new().write(true).open(path)?.set_len(valid_len)?;
            } else {
                truncated += STREAM_HEADER as u64;
                fs::remove_file(path)?;
                tail = if *seg == 0 { None } else { Some((*seg - 1, u64::MAX)) };
            }
            corrupt_at = Some(i + 1);
            break;
        }
    }
    if let Some(from) = corrupt_at {
        for (_, path) in &segs[from..] {
            truncated += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(path)?;
        }
    }
    Ok((count, tail, truncated))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_detector::Value;

    fn ev(ts: u64, name: &str) -> LoggedEvent {
        LoggedEvent::Explicit {
            name: name.into(),
            params: vec![("ts".into(), Value::Int(ts as i64))],
            txn: None,
            ts,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinel-shj-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn merge_orders_by_epoch_then_ts() {
        let dir = tmp("merge");
        {
            let (j, rec) = ShardedJournal::open(&dir, 1 << 20).unwrap();
            assert!(rec.events.is_empty());
            // Epoch 0: interleaved shards, distinct ts.
            j.append(1, 0, &ev(2, "a")).unwrap();
            j.append(0, 0, &ev(1, "b")).unwrap();
            j.append(0, 0, &ev(4, "c")).unwrap();
            j.append(1, 0, &ev(3, "d")).unwrap();
            j.append_fence(0, FenceKind::FlushTxn(7), 4).unwrap();
            // Epoch 1: even a record with a lower ts than the epoch-0
            // records must sort after the fence — epoch dominates.
            j.append(1, 1, &ev(0, "e")).unwrap();
            j.sync_dirty().unwrap();
        }
        let (_, rec) = ShardedJournal::open(&dir, 1 << 20).unwrap();
        let names: Vec<_> = rec
            .events
            .iter()
            .map(|e| match e {
                LoggedEvent::Explicit { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(names, ["b", "a", "d", "c", "e"]);
        assert_eq!(rec.fences, vec![(4, FenceKind::FlushTxn(7))]);
        assert_eq!(rec.next_epoch, 1);
        assert_eq!(rec.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn streams_rotate_independently() {
        let dir = tmp("rot");
        {
            let (j, _) = ShardedJournal::open(&dir, 200).unwrap();
            for i in 0..30 {
                j.append(0, 0, &ev(i * 2 + 1, "x")).unwrap();
            }
            j.append(1, 0, &ev(100, "y")).unwrap();
            j.sync_dirty().unwrap();
        }
        let (_, rec) = ShardedJournal::open(&dir, 200).unwrap();
        assert_eq!(rec.events.len(), 31);
        let shard0_segs = list_streams(&dir).unwrap()[&0].len();
        assert!(shard0_segs > 1, "tiny cap must rotate shard 0");
        assert_eq!(list_streams(&dir).unwrap()[&1].len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_stream_tail_truncates_only_that_stream() {
        let dir = tmp("torn");
        {
            let (j, _) = ShardedJournal::open(&dir, 1 << 20).unwrap();
            for i in 0..5 {
                j.append(0, 0, &ev(i + 1, "a")).unwrap();
                j.append(1, 0, &ev(i + 10, "b")).unwrap();
            }
            j.sync_dirty().unwrap();
        }
        let path = stream_path(&dir, 1, 0);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();
        let (_, rec) = ShardedJournal::open(&dir, 1 << 20).unwrap();
        assert_eq!(rec.events.len(), 9, "shard 1 loses only its torn record");
        assert!(rec.truncated_bytes > 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_fence_orphans_future_epoch_records() {
        let dir = tmp("fence");
        {
            let (j, _) = ShardedJournal::open(&dir, 1 << 20).unwrap();
            j.append(0, 0, &ev(1, "a")).unwrap();
            j.append_fence(0, FenceKind::Barrier, 1).unwrap();
            j.append(0, 1, &ev(2, "b")).unwrap();
            j.append_fence(1, FenceKind::Barrier, 2).unwrap();
            j.append(0, 2, &ev(3, "c")).unwrap();
            j.sync_dirty().unwrap();
        }
        // Tear the second fence off the log: epoch-2 records are now from
        // a lost future and must be dropped.
        let path = fence_path(&dir);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 5]).unwrap();
        let (_, rec) = ShardedJournal::open(&dir, 1 << 20).unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.fences.len(), 1);
        assert_eq!(rec.next_epoch, 1);
        assert!(rec.truncated_bytes > 0);
        // Reopen once more: the repair is stable.
        let (_, rec) = ShardedJournal::open(&dir, 1 << 20).unwrap();
        assert_eq!(rec.events.len(), 2);
        assert_eq!(rec.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fence_positions_count_preceding_records() {
        let dir = tmp("pos");
        {
            let (j, _) = ShardedJournal::open(&dir, 1 << 20).unwrap();
            j.append_fence(0, FenceKind::Barrier, 0).unwrap();
            j.append(0, 1, &ev(1, "a")).unwrap();
            j.append(1, 1, &ev(2, "b")).unwrap();
            j.append_fence(1, FenceKind::AdvanceTime(50), 2).unwrap();
            j.append_fence(2, FenceKind::FlushTxn(9), 2).unwrap();
            j.append(0, 3, &ev(3, "c")).unwrap();
            j.sync_dirty().unwrap();
        }
        let (_, rec) = ShardedJournal::open(&dir, 1 << 20).unwrap();
        assert_eq!(
            rec.fences,
            vec![
                (0, FenceKind::Barrier),
                (2, FenceKind::AdvanceTime(50)),
                (2, FenceKind::FlushTxn(9)),
            ]
        );
        assert_eq!(rec.events.len(), 3);
        assert_eq!(rec.next_epoch, 3);
        fs::remove_dir_all(&dir).unwrap();
    }
}
