//! Checksummed length-prefixed frames — the on-disk record unit shared by
//! the catalog and the event journal.
//!
//! Layout: `[len: u32 LE][crc32(payload): u32 LE][payload]`. A scan walks
//! frames from the front and stops at the first torn or corrupt one (short
//! header, short payload, length over the cap, or checksum mismatch) — the
//! same truncate-at-first-bad-record discipline as `storage::recovery`.

use sentinel_storage::crc32;

/// Upper bound on one frame's payload; anything larger is corruption.
pub const MAX_FRAME: u32 = 16 * 1024 * 1024;

/// Frame header size in bytes.
pub const HEADER: usize = 8;

/// Serializes one frame into `out`.
pub fn put_frame(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Result of scanning a byte stream for frames.
#[derive(Debug, Default)]
pub struct FrameScan {
    /// Payloads of every well-formed frame, in order.
    pub frames: Vec<Vec<u8>>,
    /// Length of the valid prefix (where appending may resume).
    pub valid_len: u64,
}

impl FrameScan {
    /// Bytes past the valid prefix (the torn/corrupt tail).
    pub fn truncated(&self, total_len: u64) -> u64 {
        total_len.saturating_sub(self.valid_len)
    }
}

/// Walks `data` frame by frame, stopping at the first bad one.
pub fn scan_frames(data: &[u8]) -> FrameScan {
    let mut scan = FrameScan::default();
    let mut off = 0usize;
    while data.len() - off >= HEADER {
        let len = u32::from_le_bytes(data[off..off + 4].try_into().unwrap());
        let crc = u32::from_le_bytes(data[off + 4..off + 8].try_into().unwrap());
        if len > MAX_FRAME {
            break;
        }
        let len = len as usize;
        let start = off + HEADER;
        let Some(end) = start.checked_add(len).filter(|&e| e <= data.len()) else {
            break;
        };
        let payload = &data[start..end];
        if crc32(payload) != crc {
            break;
        }
        scan.frames.push(payload.to_vec());
        off = end;
        scan.valid_len = off as u64;
    }
    scan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_tail_stop() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"one");
        put_frame(&mut buf, b"two two");
        let good_len = buf.len() as u64;
        // Torn tail: header of a third frame without its payload.
        buf.extend_from_slice(&10u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(b"sho");
        let scan = scan_frames(&buf);
        assert_eq!(scan.frames, vec![b"one".to_vec(), b"two two".to_vec()]);
        assert_eq!(scan.valid_len, good_len);
        assert_eq!(scan.truncated(buf.len() as u64), 11);
    }

    #[test]
    fn bit_flip_stops_the_scan() {
        let mut buf = Vec::new();
        put_frame(&mut buf, b"alpha");
        put_frame(&mut buf, b"beta");
        let first_len = (HEADER + 5) as u64;
        // Flip one payload bit of the second frame.
        let idx = first_len as usize + HEADER;
        buf[idx] ^= 0x40;
        let scan = scan_frames(&buf);
        assert_eq!(scan.frames.len(), 1);
        assert_eq!(scan.valid_len, first_len);
    }

    #[test]
    fn insane_length_is_corruption_not_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&[0u8; 64]);
        let scan = scan_frames(&buf);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn empty_input_is_fine() {
        let scan = scan_frames(&[]);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.valid_len, 0);
    }
}
