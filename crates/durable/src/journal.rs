//! The durable primitive-event journal: segment-rotated, checksummed,
//! fsync-policy-configurable persistence of every [`LoggedEvent`] the
//! detector signals.
//!
//! Layout on disk: segments named `events-{seg:06}.seg`, each starting
//! with a 12-byte header (`"SJN1"` magic + `base_index: u64 LE`, the
//! global index of the segment's first record) followed by frames of
//! [`sentinel_detector::log::encode_event`] bytes. A segment rotates
//! once it passes [`crate::DurableOptions::segment_bytes`]; the old
//! segment is fsynced on rotation regardless of policy so only the
//! active tail is ever at risk.
//!
//! Recovery scans segments in index order and stops at the first
//! corruption (bad header, torn frame, undecodable event): that segment
//! is truncated to its valid prefix and every later segment is deleted,
//! since records after a hole cannot be trusted to be ordered.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use bytes::{Buf, Bytes, BytesMut};
use sentinel_detector::log::{decode_event, encode_event, LoggedEvent};

use crate::frame::{put_frame, scan_frames, HEADER};
use crate::FsyncPolicy;

const SEG_MAGIC: &[u8; 4] = b"SJN1";
const SEG_HEADER: usize = 12;

fn segment_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("events-{seg:06}.seg"))
}

/// Lists `(segment-number, path)` pairs in `dir`, ascending.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(num) = name.strip_prefix("events-").and_then(|r| r.strip_suffix(".seg")) {
            if let Ok(num) = num.parse::<u64>() {
                segs.push((num, entry.path()));
            }
        }
    }
    segs.sort();
    Ok(segs)
}

/// What a journal scan recovered.
#[derive(Debug, Default)]
pub struct JournalRecovery {
    /// Every decodable event in global order.
    pub events: Vec<LoggedEvent>,
    /// Number of segment files that survive recovery.
    pub segments: u64,
    /// Bytes discarded — torn tails plus deleted later segments.
    pub truncated_bytes: u64,
}

/// The open event journal, positioned at its active tail segment.
#[derive(Debug)]
pub struct Journal {
    dir: PathBuf,
    file: File,
    seg: u64,
    seg_len: u64,
    segment_bytes: u64,
    next_index: u64,
    fsync: FsyncPolicy,
    appends_since_sync: u64,
}

fn new_segment(dir: &Path, seg: u64, base_index: u64) -> io::Result<(File, u64)> {
    let mut file =
        OpenOptions::new().create(true).truncate(true).write(true).open(segment_path(dir, seg))?;
    let mut header = Vec::with_capacity(SEG_HEADER);
    header.extend_from_slice(SEG_MAGIC);
    header.extend_from_slice(&base_index.to_le_bytes());
    file.write_all(&header)?;
    file.sync_data()?;
    Ok((file, SEG_HEADER as u64))
}

/// Scans the v1 single-stream journal in `dir` read-only-ish: torn tails
/// are truncated and unsalvageable segments deleted (the same repairs as
/// [`Journal::open`]) but no writer is opened and no empty segment is
/// created. A directory that never held a v1 journal yields an empty
/// recovery — the compatibility path for data directories that predate
/// the sharded (v2) journal format.
pub fn scan_dir(dir: &Path) -> io::Result<JournalRecovery> {
    let (recovery, _, _) = scan_and_repair(dir)?;
    Ok(recovery)
}

/// Tail segment position: `(segment number, valid length)`, with a
/// `u64::MAX` length meaning "whole file".
type SegTail = Option<(u64, u64)>;

/// Shared scan/repair pass: returns the recovery, the running record
/// count, and the tail segment if any survives.
fn scan_and_repair(dir: &Path) -> io::Result<(JournalRecovery, u64, SegTail)> {
    let mut recovery = JournalRecovery::default();
    let segs = list_segments(dir)?;
    let mut next_index = 0u64;
    let mut tail: Option<(u64, u64)> = None; // (seg number, valid length)
    let mut corrupt_at: Option<usize> = None;
    {
        for (i, (seg, path)) in segs.iter().enumerate() {
            let mut data = Vec::new();
            File::open(path)?.read_to_end(&mut data)?;
            let total = data.len() as u64;
            // A segment must carry a full header with the right magic and a
            // base index matching the running record count.
            let header_ok = data.len() >= SEG_HEADER
                && &data[..4] == SEG_MAGIC
                && u64::from_le_bytes(data[4..12].try_into().unwrap()) == next_index;
            if !header_ok {
                recovery.truncated_bytes += total;
                corrupt_at = Some(i);
                break;
            }
            let scan = scan_frames(&data[SEG_HEADER..]);
            let mut valid_len = SEG_HEADER as u64;
            let mut clean = true;
            for payload in &scan.frames {
                let mut buf = Bytes::copy_from_slice(payload);
                match decode_event(&mut buf) {
                    Some(ev) if !buf.has_remaining() => {
                        recovery.events.push(ev);
                        next_index += 1;
                        valid_len += (HEADER + payload.len()) as u64;
                    }
                    _ => {
                        clean = false;
                        break;
                    }
                }
            }
            clean = clean && scan.truncated(total - SEG_HEADER as u64) == 0;
            recovery.truncated_bytes += total - valid_len;
            tail = Some((*seg, valid_len));
            if !clean {
                if valid_len > SEG_HEADER as u64 {
                    // Keep the repaired prefix and resume appending here.
                    fs::OpenOptions::new().write(true).open(path)?.set_len(valid_len)?;
                } else {
                    // Nothing salvageable: drop the whole segment.
                    recovery.truncated_bytes += SEG_HEADER as u64;
                    fs::remove_file(path)?;
                    tail = if *seg == 0 { None } else { Some((*seg - 1, u64::MAX)) };
                }
                corrupt_at = Some(i + 1);
                break;
            }
        }
    }
    // Records after a hole are untrusted: delete every later segment.
    if let Some(from) = corrupt_at {
        for (_, path) in &segs[from..] {
            recovery.truncated_bytes += fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            fs::remove_file(path)?;
        }
    }
    recovery.segments = list_segments(dir)?.len() as u64;
    Ok((recovery, next_index, tail))
}

impl Journal {
    /// Opens the journal in `dir`, scanning and repairing existing
    /// segments, and positions the writer after the last valid record.
    pub fn open(
        dir: &Path,
        segment_bytes: u64,
        fsync: FsyncPolicy,
    ) -> io::Result<(Journal, JournalRecovery)> {
        let (mut recovery, next_index, tail) = scan_and_repair(dir)?;
        let (file, seg, seg_len) = match tail {
            None => {
                let (file, len) = new_segment(dir, 0, 0)?;
                (file, 0, len)
            }
            Some((seg, valid_len)) => {
                let path = segment_path(dir, seg);
                let file = OpenOptions::new().append(true).open(&path)?;
                let len = if valid_len == u64::MAX { file.metadata()?.len() } else { valid_len };
                (file, seg, len)
            }
        };
        recovery.segments = list_segments(dir)?.len() as u64;
        let journal = Journal {
            dir: dir.to_path_buf(),
            file,
            seg,
            seg_len,
            segment_bytes: segment_bytes.max(SEG_HEADER as u64 + 1),
            next_index,
            fsync,
            appends_since_sync: 0,
        };
        Ok((journal, recovery))
    }

    /// Index the next appended record will get.
    pub fn next_index(&self) -> u64 {
        self.next_index
    }

    /// Appends one event. Returns `(record index, bytes written, fsynced,
    /// rotated)`.
    pub fn append(&mut self, ev: &LoggedEvent) -> io::Result<(u64, u64, bool, bool)> {
        let mut payload = BytesMut::new();
        encode_event(&mut payload, ev);
        let mut buf = Vec::with_capacity(payload.len() + HEADER);
        put_frame(&mut buf, &payload);
        self.file.write_all(&buf)?;
        let index = self.next_index;
        self.next_index += 1;
        self.seg_len += buf.len() as u64;
        self.appends_since_sync += 1;
        let mut synced = match self.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.appends_since_sync >= n.max(1),
            FsyncPolicy::Never => false,
        };
        let rotated = self.seg_len >= self.segment_bytes;
        if rotated {
            // Rotation always seals the old segment durably.
            synced = true;
        }
        if synced {
            self.file.sync_data()?;
            self.appends_since_sync = 0;
        }
        if rotated {
            self.seg += 1;
            let (file, len) = new_segment(&self.dir, self.seg, self.next_index)?;
            self.file = file;
            self.seg_len = len;
        }
        Ok((index, buf.len() as u64, synced, rotated))
    }

    /// Forces the active tail segment to disk.
    pub fn flush(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.appends_since_sync = 0;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sentinel_detector::Value;

    fn ev(i: u64) -> LoggedEvent {
        LoggedEvent::Explicit {
            name: format!("e{i}"),
            params: vec![("i".into(), Value::Int(i as i64))],
            txn: if i % 2 == 0 { Some(i) } else { None },
            ts: i + 1,
        }
    }

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sentinel-jnl-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn roundtrip_across_rotation() {
        let dir = tmp("rot");
        {
            let (mut j, rec) = Journal::open(&dir, 256, FsyncPolicy::Never).unwrap();
            assert!(rec.events.is_empty());
            for i in 0..40 {
                let (idx, ..) = j.append(&ev(i)).unwrap();
                assert_eq!(idx, i);
            }
            j.flush().unwrap();
        }
        let (j, rec) = Journal::open(&dir, 256, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.events.len(), 40);
        assert!(rec.segments > 1, "tiny segment cap must rotate");
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(j.next_index(), 40);
        for (i, e) in rec.events.iter().enumerate() {
            assert_eq!(e.ts(), i as u64 + 1);
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_and_append_resumes() {
        let dir = tmp("torn");
        {
            let (mut j, _) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
            for i in 0..5 {
                j.append(&ev(i)).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 3]).unwrap();

        let (mut j, rec) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.events.len(), 4);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(j.next_index(), 4);
        j.append(&ev(4)).unwrap();

        let (_, rec) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.events.len(), 5);
        assert_eq!(rec.truncated_bytes, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_middle_segment_drops_later_segments() {
        let dir = tmp("mid");
        {
            let (mut j, _) = Journal::open(&dir, 128, FsyncPolicy::Never).unwrap();
            for i in 0..40 {
                j.append(&ev(i)).unwrap();
            }
            j.flush().unwrap();
        }
        let segs = list_segments(&dir).unwrap();
        assert!(segs.len() >= 3);
        // Flip a payload bit in the middle segment.
        let victim = &segs[1].1;
        let mut data = fs::read(victim).unwrap();
        let idx = SEG_HEADER + HEADER + 2;
        data[idx] ^= 0x01;
        fs::write(victim, &data).unwrap();

        let (j, rec) = Journal::open(&dir, 128, FsyncPolicy::Never).unwrap();
        let survivors = list_segments(&dir).unwrap();
        assert!(rec.events.len() < 40, "events after corruption must be dropped");
        assert!(rec.truncated_bytes > 0);
        assert!(survivors.len() <= 2, "later segments deleted, got {survivors:?}");
        assert_eq!(j.next_index(), rec.events.len() as u64);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scan_dir_reads_without_creating_segments() {
        let dir = tmp("scan");
        // Empty directory: nothing recovered, nothing created.
        let rec = scan_dir(&dir).unwrap();
        assert!(rec.events.is_empty());
        assert_eq!(rec.segments, 0);
        assert!(!segment_path(&dir, 0).exists());
        // With data (and a torn tail) it repairs exactly like open().
        {
            let (mut j, _) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
            for i in 0..6 {
                j.append(&ev(i)).unwrap();
            }
        }
        let path = segment_path(&dir, 0);
        let data = fs::read(&path).unwrap();
        fs::write(&path, &data[..data.len() - 2]).unwrap();
        let rec = scan_dir(&dir).unwrap();
        assert_eq!(rec.events.len(), 5);
        assert!(rec.truncated_bytes > 0);
        assert_eq!(rec.segments, 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_header_segment_is_removed() {
        let dir = tmp("hdr");
        {
            let (mut j, _) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
            for i in 0..3 {
                j.append(&ev(i)).unwrap();
            }
        }
        // A later segment with a garbage header (e.g. preallocated then
        // crashed before the header write hit disk).
        fs::write(segment_path(&dir, 1), [0u8; 7]).unwrap();
        let (mut j, rec) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.events.len(), 3);
        assert!(rec.truncated_bytes >= 7);
        assert!(!segment_path(&dir, 1).exists());
        j.append(&ev(3)).unwrap();
        let (_, rec) = Journal::open(&dir, 1 << 20, FsyncPolicy::Always).unwrap();
        assert_eq!(rec.events.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }
}
