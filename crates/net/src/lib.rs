//! # sentinel-net
//!
//! Client/server subsystem for Sentinel: the network boundary that lets
//! many applications signal events, manage rules, and query one shared
//! detector/rulebase over TCP — the paper's library-linked Sentinel
//! (§2.3) recast as a served system, as production reactive-rule engines
//! deploy (rule engines as networked CEP services).
//!
//! The layers:
//!
//! * [`protocol`] — a versioned, length-prefixed framing with two wire
//!   versions behind one 16-byte header: v1 JSON payload bodies and v2
//!   compact binary bodies ([`codec`]); strict size limits, total
//!   (never-panicking) decoding;
//! * [`codec`] — the CBOR-style binary payload codec v2 frames carry;
//! * [`server`] — [`server::NetServer`] wrapping a
//!   [`sentinel_core::ServeHandle`] behind either transport backend:
//!   the default epoll [`reactor`] (nonblocking sockets, bounded write
//!   queues, stall eviction) or the portable thread-per-connection
//!   reference path — named sessions, the full command set,
//!   per-session/global backpressure, graceful drain-on-shutdown;
//! * [`client`] — blocking [`client::SentinelClient`] with request
//!   pipelining by request id, per-connection request-id spaces,
//!   codec negotiation at `Hello`, reconnect-with-backoff, and typed
//!   errors separating transport failures from server-reported ones.
//!
//! No external async runtime and no libc crate: the workspace builds
//! offline, so the reactor binds the few epoll/eventfd syscalls it needs
//! by hand and everything else is `std::net`, OS threads, and bounded
//! queues.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod codec;
mod commands;
pub mod protocol;
mod reactor;
pub mod server;

pub use client::{BatchSignal, ClientCodec, ClientError, Pending, RuleSpec, SentinelClient};
pub use protocol::{DecodeError, EncodeError, Frame, Opcode, WireError};
pub use server::{NetServer, ServerConfig};
