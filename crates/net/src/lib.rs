//! # sentinel-net
//!
//! Client/server subsystem for Sentinel: the network boundary that lets
//! many applications signal events, manage rules, and query one shared
//! detector/rulebase over TCP — the paper's library-linked Sentinel
//! (§2.3) recast as a served system, as production reactive-rule engines
//! deploy (rule engines as networked CEP services).
//!
//! Three layers:
//!
//! * [`protocol`] — a versioned, length-prefixed binary framing with JSON
//!   payloads; strict size limits, total (never-panicking) decoding;
//! * [`server`] — thread-per-connection [`server::NetServer`] wrapping a
//!   [`sentinel_core::ServeHandle`]: named sessions, the full command
//!   set, per-session/global backpressure, graceful drain-on-shutdown;
//! * [`client`] — blocking [`client::SentinelClient`] with request
//!   pipelining by request id, reconnect-with-backoff, and typed errors
//!   separating transport failures from server-reported ones.
//!
//! Only `std::net` is used: the workspace builds offline, so there is no
//! async runtime — concurrency is OS threads and bounded queues.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::{ClientError, Pending, RuleSpec, SentinelClient};
pub use protocol::{DecodeError, EncodeError, Frame, Opcode, WireError};
pub use server::{NetServer, ServerConfig};
