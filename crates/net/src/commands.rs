//! The server's command layer, shared by both transports.
//!
//! [`execute`] maps one decoded request [`Frame`] to an [`Outcome`]
//! without touching a socket, so the thread-per-connection backend and
//! the epoll reactor run the *same* command set, session rules, and
//! backpressure decisions — the conformance suite in
//! `tests/net_loopback.rs` exercises every case against both. The HTTP
//! sniffing helpers for the `/metrics` side door live here for the same
//! reason.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::channel::TrySendError;
use sentinel_obs::flight::{self, FlightKind};
use sentinel_obs::{json, PromText};

use crate::protocol::{self, Frame, Opcode};
use crate::server::{AsyncJob, State};

/// An authenticated connection (one `Hello` accepted).
pub(crate) struct Session {
    /// Queued-but-unprocessed async signals owned by this session.
    pub(crate) inflight: Arc<AtomicU64>,
}

/// What a connection should do with the result of one request.
pub(crate) enum Outcome {
    /// Write the response and keep serving.
    Reply(Frame),
    /// Write the response, then close the connection.
    ReplyClose(Frame),
    /// Write the response, *flush it*, then signal server shutdown — the
    /// ordering guarantee a client's `shutdown_server()` call relies on.
    ReplyShutdown(Frame),
}

/// Handles one request frame against the shared server state.
pub(crate) fn execute(state: &Arc<State>, session: &mut Option<Session>, frame: Frame) -> Outcome {
    let id = frame.request_id;
    // A replica is read-only over the wire: the apply loop is its only
    // mutator, so concurrent client writes can never diverge it from the
    // primary's stream. `Promote` (or primary-loss auto-promotion) lifts
    // the restriction.
    let is_write = matches!(
        frame.opcode,
        Opcode::SignalSync
            | Opcode::SignalAsync
            | Opcode::SignalBatch
            | Opcode::DefineClass
            | Opcode::DefineEvent
            | Opcode::DefineRule
            | Opcode::EnableRule
            | Opcode::DisableRule
            | Opcode::DropRule
    );
    if is_write && state.handle.sentinel().is_replica() {
        return Outcome::Reply(err_frame(
            id,
            "read-only",
            "node is a read-only replica (Promote to accept writes)",
        ));
    }
    match frame.opcode {
        Opcode::Ping => Outcome::Reply(Frame::new(Opcode::Ok, id, frame.payload)),
        // Monitoring is read-only and session-free, like Ping: a scraper
        // should not have to speak Hello.
        Opcode::MetricsScrape => Outcome::Reply(Frame::new(Opcode::Ok, id, metrics_payload(state))),
        Opcode::Hello => {
            let Some(client) = frame.payload.get("client").and_then(json::Value::as_str) else {
                return Outcome::Reply(err_frame(id, "bad-request", "hello needs client"));
            };
            let sid = state.next_session.fetch_add(1, Ordering::SeqCst) + 1;
            *session = Some(Session { inflight: Arc::new(AtomicU64::new(0)) });
            state.metrics.sessions.inc();
            // Codec negotiation: the reply names the highest protocol
            // version both the client (`max_version`, absent = 1) and
            // this server (`cfg.max_codec_version`) speak. The client
            // uses it for subsequent frames; the server stays polyglot
            // per frame either way.
            let client_max = frame
                .payload
                .get("max_version")
                .and_then(json::Value::as_u64)
                .unwrap_or(u64::from(protocol::VERSION)) as u8;
            let negotiated = client_max.min(state.cfg.max_codec_version).max(protocol::VERSION);
            let reply = json::Value::obj([
                ("session", json::Value::UInt(sid)),
                ("client", json::Value::str(client)),
                ("server", json::Value::str("sentinel")),
                ("version", json::Value::UInt(u64::from(negotiated))),
            ]);
            Outcome::Reply(Frame::new(Opcode::Ok, id, reply))
        }
        Opcode::Ok | Opcode::Err | Opcode::Busy => {
            state.metrics.decode_errors.inc();
            Outcome::ReplyClose(err_frame(id, "bad-request", "response opcode from client"))
        }
        _ if session.is_none() => {
            Outcome::Reply(err_frame(id, "unauthenticated", "send Hello first"))
        }
        Opcode::SignalSync => Outcome::Reply(signal_sync(state, id, &frame.payload)),
        Opcode::SignalBatch => Outcome::Reply(signal_batch(state, id, &frame.payload)),
        Opcode::SignalAsync => {
            let sess = session.as_ref().expect("checked above");
            Outcome::Reply(signal_async(state, sess, id, &frame.payload))
        }
        Opcode::Stats => {
            let mut stats = state.handle.stats_json();
            if let json::Value::Obj(pairs) = &mut stats {
                let mut net = state.metrics.snapshot().to_json();
                if let json::Value::Obj(net_pairs) = &mut net {
                    // The serving process's pid: what lets an external
                    // load generator sample this server's RSS from /proc
                    // during a connection-count sweep.
                    net_pairs.push((
                        "pid".to_string(),
                        json::Value::UInt(u64::from(std::process::id())),
                    ));
                }
                pairs.push(("net".to_string(), net));
            }
            Outcome::Reply(Frame::new(Opcode::Ok, id, stats))
        }
        Opcode::TraceSummaries => {
            let traces = state.handle.trace_summaries_json();
            Outcome::Reply(Frame::new(Opcode::Ok, id, json::Value::obj([("traces", traces)])))
        }
        Opcode::ExportTrace => {
            let chrome = state.handle.export_chrome_trace();
            let reply = json::Value::obj([("chrome", json::Value::Str(chrome))]);
            Outcome::Reply(Frame::new(Opcode::Ok, id, reply))
        }
        Opcode::DefineClass => reply_result(id, define_class(state, &frame.payload)),
        Opcode::DefineEvent => reply_result(id, define_event(state, &frame.payload)),
        Opcode::DefineRule => reply_result(id, define_rule(state, &frame.payload)),
        Opcode::EnableRule => {
            reply_result(id, rule_admin(state, &frame.payload, RuleAdmin::Enable))
        }
        Opcode::DisableRule => {
            reply_result(id, rule_admin(state, &frame.payload, RuleAdmin::Disable))
        }
        Opcode::DropRule => reply_result(id, rule_admin(state, &frame.payload, RuleAdmin::Drop)),
        Opcode::ReplSubscribe => {
            let follower = frame
                .payload
                .get("follower")
                .and_then(json::Value::as_str)
                .unwrap_or("follower")
                .to_string();
            let r = state.handle.sentinel().repl_subscribe_json(&follower);
            reply_result(id, r.map_err(|e| e.to_string()))
        }
        Opcode::ReplSnapshot => {
            let r = state.handle.sentinel().repl_snapshot_json();
            reply_result(id, r.map_err(|e| e.to_string()))
        }
        Opcode::ReplFrames => {
            let from = frame.payload.get("from").and_then(json::Value::as_u64).unwrap_or(0);
            let max = frame.payload.get("max").and_then(json::Value::as_u64).unwrap_or(1024);
            let r = state.handle.sentinel().repl_frames_json(from, max);
            reply_result(id, r.map_err(|e| e.to_string()))
        }
        Opcode::ReplAck => {
            let follower = frame
                .payload
                .get("follower")
                .and_then(json::Value::as_str)
                .unwrap_or("follower")
                .to_string();
            let applied = frame.payload.get("applied").and_then(json::Value::as_u64).unwrap_or(0);
            let r = state.handle.sentinel().repl_ack_json(&follower, applied);
            reply_result(id, r.map_err(|e| e.to_string()))
        }
        Opcode::Promote => {
            let promoted = state.handle.sentinel().promote();
            let reply = json::Value::obj([
                ("role", json::Value::str("primary")),
                ("promoted", json::Value::Bool(promoted)),
            ]);
            Outcome::Reply(Frame::new(Opcode::Ok, id, reply))
        }
        Opcode::Shutdown => Outcome::ReplyShutdown(Frame::new(Opcode::Ok, id, json::Value::Null)),
    }
}

fn signal_sync(state: &Arc<State>, id: u64, payload: &json::Value) -> Frame {
    let Some((event, params, txn, trace)) = parse_signal(payload) else {
        return err_frame(id, "bad-request", "malformed signal");
    };
    let limit = state.cfg.max_inflight_global as u64;
    let cur = state.inflight_sync.fetch_add(1, Ordering::SeqCst) + 1;
    if cur > limit {
        state.inflight_sync.fetch_sub(1, Ordering::SeqCst);
        state.metrics.busy_rejections.inc();
        flight::global().record_static(FlightKind::Busy, "sync_global", cur, limit);
        return busy_frame(id, "global", cur, limit);
    }
    let n = state.handle.signal_traced(&event, params, txn, trace);
    state.inflight_sync.fetch_sub(1, Ordering::SeqCst);
    Frame::new(Opcode::Ok, id, json::Value::obj([("detections", json::Value::UInt(n as u64))]))
}

/// One `SignalBatch` frame: the signals run inline, in array order, as a
/// single backpressure unit — `Busy` covers the whole batch (nothing was
/// processed), so a retried batch preserves event order.
fn signal_batch(state: &Arc<State>, id: u64, payload: &json::Value) -> Frame {
    let Some(list) = payload.get("signals").and_then(json::Value::as_arr) else {
        return err_frame(id, "bad-request", "batch needs signals array");
    };
    let limit = state.cfg.max_inflight_global as u64;
    let cur = state.inflight_sync.fetch_add(1, Ordering::SeqCst) + 1;
    if cur > limit {
        state.inflight_sync.fetch_sub(1, Ordering::SeqCst);
        state.metrics.busy_rejections.inc();
        flight::global().record_static(FlightKind::Busy, "batch_global", cur, limit);
        return busy_frame(id, "global", cur, limit);
    }
    let mut total = 0u64;
    let mut accepted = 0u64;
    let mut bad = false;
    for item in list {
        let Some((event, params, txn, trace)) = parse_signal(item) else {
            bad = true;
            break;
        };
        total += state.handle.signal_traced(&event, params, txn, trace) as u64;
        accepted += 1;
    }
    state.inflight_sync.fetch_sub(1, Ordering::SeqCst);
    if bad {
        // Signals before the malformed entry already ran; the error
        // reports how many, so an accounting client can reconcile.
        let payload = json::Value::obj([
            ("code", json::Value::str("bad-request")),
            ("message", json::Value::str("malformed signal in batch")),
            ("accepted", json::Value::UInt(accepted)),
        ]);
        return Frame::new(Opcode::Err, id, payload);
    }
    let reply = json::Value::obj([
        ("accepted", json::Value::UInt(accepted)),
        ("detections", json::Value::UInt(total)),
    ]);
    Frame::new(Opcode::Ok, id, reply)
}

fn signal_async(state: &Arc<State>, sess: &Session, id: u64, payload: &json::Value) -> Frame {
    let Some((event, params, txn, trace)) = parse_signal(payload) else {
        return err_frame(id, "bad-request", "malformed signal");
    };
    let limit = state.cfg.max_inflight_per_session as u64;
    let cur = sess.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    if cur > limit {
        sess.inflight.fetch_sub(1, Ordering::SeqCst);
        state.metrics.busy_rejections.inc();
        flight::global().record_static(FlightKind::Busy, "session", cur, limit);
        return busy_frame(id, "session", cur, limit);
    }
    let job = AsyncJob { event, params, txn, trace, session_inflight: sess.inflight.clone() };
    let verdict = match state.async_tx.lock().as_ref() {
        Some(tx) => tx.try_send(job).map_err(|e| matches!(e, TrySendError::Full(_))),
        None => Err(false), // shutting down
    };
    match verdict {
        Ok(()) => {
            Frame::new(Opcode::Ok, id, json::Value::obj([("queued", json::Value::Bool(true))]))
        }
        Err(full) => {
            sess.inflight.fetch_sub(1, Ordering::SeqCst);
            if full {
                state.metrics.busy_rejections.inc();
                let cap = state.cfg.max_inflight_global as u64;
                flight::global().record_static(FlightKind::Busy, "async_global", cap, cap);
                busy_frame(id, "global", cap, cap)
            } else {
                err_frame(id, "shutting-down", "server is draining")
            }
        }
    }
}

/// Pulls `(event, params, txn, trace)` out of a signal payload.
#[allow(clippy::type_complexity)]
fn parse_signal(
    payload: &json::Value,
) -> Option<(String, Vec<(Arc<str>, sentinel_detector::Value)>, Option<u64>, Option<u64>)> {
    let event = payload.get("event")?.as_str()?.to_string();
    let params = match payload.get("params") {
        Some(p) => protocol::params_from_json(p)?,
        None => Vec::new(),
    };
    let txn = payload.get("txn").and_then(json::Value::as_u64);
    let trace = payload.get("trace").and_then(json::Value::as_u64);
    Some((event, params, txn, trace))
}

fn define_class(state: &Arc<State>, payload: &json::Value) -> Result<json::Value, String> {
    let name = require_str(payload, "name")?;
    let mut attrs = Vec::new();
    if let Some(list) = payload.get("attrs").and_then(json::Value::as_arr) {
        for attr in list {
            let pair = attr.as_arr().filter(|p| p.len() == 2).ok_or("attrs: want [name, type]")?;
            let (an, at) = (pair[0].as_str(), pair[1].as_str());
            let (an, at) = an.zip(at).ok_or("attrs: want string pairs")?;
            attrs.push((an.to_string(), at.to_string()));
        }
    }
    state.handle.sentinel().register_class_spec(name, &attrs, &[]).map_err(|e| e.to_string())?;
    Ok(json::Value::obj([("class", json::Value::str(name))]))
}

fn define_event(state: &Arc<State>, payload: &json::Value) -> Result<json::Value, String> {
    let name = require_str(payload, "name")?;
    let sentinel = state.handle.sentinel();
    let id = match payload.get("expr").and_then(json::Value::as_str) {
        Some(expr) => sentinel.define_event(name, expr).map_err(|e| e.to_string())?,
        None => sentinel.declare_explicit(name).map_err(|e| e.to_string())?,
    };
    Ok(json::Value::obj([("event", json::Value::UInt(u64::from(id.0)))]))
}

fn define_rule(state: &Arc<State>, payload: &json::Value) -> Result<json::Value, String> {
    // The whole payload is the rule spec; parsing, the action catalog
    // (`count`, `raise`) and catalog journaling live in
    // `Sentinel::define_rule_spec`, shared with durable recovery.
    let rule = state.handle.sentinel().define_rule_spec(payload).map_err(|e| e.to_string())?;
    Ok(json::Value::obj([("rule", json::Value::UInt(rule.0))]))
}

enum RuleAdmin {
    Enable,
    Disable,
    Drop,
}

fn rule_admin(
    state: &Arc<State>,
    payload: &json::Value,
    op: RuleAdmin,
) -> Result<json::Value, String> {
    let name = require_str(payload, "name")?;
    let sentinel = state.handle.sentinel();
    match op {
        RuleAdmin::Enable => sentinel.enable_rule(name).map_err(|e| e.to_string())?,
        RuleAdmin::Disable => sentinel.disable_rule(name).map_err(|e| e.to_string())?,
        RuleAdmin::Drop => sentinel.drop_rule(name).map_err(|e| e.to_string())?,
    }
    Ok(json::Value::obj([("rule", json::Value::str(name))]))
}

fn require_str<'a>(payload: &'a json::Value, key: &str) -> Result<&'a str, String> {
    payload.get(key).and_then(json::Value::as_str).ok_or_else(|| format!("missing `{key}`"))
}

fn reply_result(id: u64, result: Result<json::Value, String>) -> Outcome {
    match result {
        Ok(body) => Outcome::Reply(Frame::new(Opcode::Ok, id, body)),
        Err(message) => Outcome::Reply(err_frame(id, "rejected", &message)),
    }
}

/// Builds a server-error response frame.
pub(crate) fn err_frame(id: u64, code: &str, message: &str) -> Frame {
    let payload = json::Value::obj([
        ("code", json::Value::str(code)),
        ("message", json::Value::str(message)),
    ]);
    Frame::new(Opcode::Err, id, payload)
}

fn busy_frame(id: u64, scope: &str, inflight: u64, limit: u64) -> Frame {
    let payload = json::Value::obj([
        ("scope", json::Value::str(scope)),
        ("inflight", json::Value::UInt(inflight)),
        ("limit", json::Value::UInt(limit)),
    ]);
    Frame::new(Opcode::Busy, id, payload)
}

// ---------------------------------------------------------------------------
// HTTP side door: GET/HEAD on the frame port serves /metrics for scrapers.
// ---------------------------------------------------------------------------

/// True when `buf` could (still) be the start of an HTTP GET/HEAD
/// request — i.e. it is a prefix of (or starts with) either method token.
/// A method token can never open a valid frame (magic `"SN"`), so the
/// sniff is unambiguous.
pub(crate) fn is_http_prefix(buf: &[u8]) -> bool {
    if buf.is_empty() {
        return false;
    }
    let matches = |verb: &[u8]| {
        let n = buf.len().min(verb.len());
        buf[..n] == verb[..n]
    };
    matches(b"GET ") || matches(b"HEAD ")
}

/// The exposition document for `/metrics`: the system families plus the
/// server-side net/service families (which only this process knows).
pub(crate) fn full_prom(state: &Arc<State>) -> String {
    let mut prom = state.handle.prom_text();
    let mut w = PromText::new();
    let m = &state.metrics;
    w.counter("sentinel_net_frames_in_total", "Frames received", &[], m.frames_in.get());
    w.counter("sentinel_net_frames_out_total", "Frames sent", &[], m.frames_out.get());
    w.counter("sentinel_net_bytes_in_total", "Bytes received", &[], m.bytes_in.get());
    w.counter("sentinel_net_bytes_out_total", "Bytes sent", &[], m.bytes_out.get());
    w.counter(
        "sentinel_net_busy_rejections_total",
        "Requests rejected with Busy",
        &[],
        m.busy_rejections.get(),
    );
    w.gauge("sentinel_net_connections_active", "Open connections", &[], m.connections_active.get());
    w.gauge("sentinel_net_event_loops", "Reactor event loops", &[], m.event_loops.get());
    w.counter(
        "sentinel_net_epoll_wakeups_total",
        "epoll_wait returns across reactor loops",
        &[],
        m.epoll_wakeups.get(),
    );
    w.counter(
        "sentinel_net_partial_writes_total",
        "Writes resumed under EPOLLOUT",
        &[],
        m.partial_writes.get(),
    );
    w.counter(
        "sentinel_net_stall_evictions_total",
        "Connections evicted for stalling mid-frame or mid-write",
        &[],
        m.stall_evictions.get(),
    );
    w.counter(
        "sentinel_net_overflow_evictions_total",
        "Connections evicted for overflowing the bounded write queue",
        &[],
        m.overflow_evictions.get(),
    );
    if let Some(svc) = state.service_metrics.lock().clone() {
        w.gauge(
            "sentinel_service_queue_depth",
            "Queued, undrained async signals",
            &[],
            svc.queue_depth.get(),
        );
        w.counter(
            "sentinel_service_processed_total",
            "Async signals processed",
            &[],
            svc.processed.get(),
        );
        w.histogram(
            "sentinel_service_drain_latency_ns",
            "Enqueue-to-processed latency",
            &[],
            &svc.drain_latency_ns.snapshot(),
        );
    }
    prom.push_str(&w.finish());
    prom
}

/// The `MetricsScrape` payload: the full exposition text plus the
/// time-series ring snapshot (`Null` when telemetry is off).
pub(crate) fn metrics_payload(state: &Arc<State>) -> json::Value {
    json::Value::obj([
        ("prom", json::Value::Str(full_prom(state))),
        ("telemetry", state.handle.sentinel().telemetry_json()),
    ])
}

/// Renders the full HTTP response for one sniffed request (`head` is
/// everything before the header/body separator).
pub(crate) fn http_response(state: &Arc<State>, head: &[u8]) -> Vec<u8> {
    let line = head.split(|&b| b == b'\r').next().unwrap_or(head);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", full_prom(state)),
        "/metrics.json" => {
            ("200 OK", "application/json", state.handle.sentinel().telemetry_json().to_string())
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let mut resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if method != "HEAD" {
        resp.push_str(&body);
    }
    resp.into_bytes()
}
