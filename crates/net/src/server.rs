//! The Sentinel network server: many clients, one shared active DBMS.
//!
//! Thread model (`std::net` only — the workspace is offline, so no async
//! runtime): one acceptor thread, one OS thread per connection (bounded by
//! [`ServerConfig::max_connections`]), one *async pump* thread that routes
//! queued signals into a [`DetectorPool`] of
//! [`ServerConfig::detector_threads`] workers — the paper's Figure 2
//! separation of detection from application execution, applied at the
//! network boundary and scaled across event-graph shards. Signals of one
//! shard stay FIFO on one worker; disjoint shards detect concurrently. A
//! dispatcher thread drains pooled detections into the rule scheduler so
//! slow rule actions never stall signal intake.
//!
//! Request handling per connection is serial, but clients pipeline: every
//! frame carries a request id and responses echo it, so a client may have
//! many requests outstanding on one socket.
//!
//! Backpressure is explicit, never unbounded queueing:
//!
//! * **sync signals** run inline on the connection thread and are capped
//!   globally ([`ServerConfig::max_inflight_global`]) — past the cap the
//!   server answers `Busy {"scope": "global"}`;
//! * **async signals** enter a bounded queue drained by the pump; a full
//!   queue is a global `Busy`, and each session is further capped at
//!   [`ServerConfig::max_inflight_per_session`] queued signals
//!   (`Busy {"scope": "session"}`).
//!
//! Graceful shutdown (client `Shutdown` frame or [`NetServer::shutdown`])
//! stops accepting, joins every connection thread, closes the async queue
//! so the pump drains it, and finally calls [`DetectorPool::shutdown`],
//! which processes everything still queued on every worker before joining
//! them (and the dispatcher drains the last detections).

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TrySendError};
use parking_lot::Mutex;
use sentinel_core::ServeHandle;
use sentinel_detector::service::{ServiceMetrics, Signal};
use sentinel_detector::DetectorPool;
use sentinel_obs::flight::{self, FlightKind};
use sentinel_obs::span;
use sentinel_obs::timeseries::Sample;
use sentinel_obs::trace::Field;
use sentinel_obs::{json, NetMetrics, PromText};

use crate::protocol::{self, Frame, Opcode, WireError};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Maximum concurrently open connections; further connects receive an
    /// error frame and are closed.
    pub max_connections: usize,
    /// Per-session cap on queued async signals.
    pub max_inflight_per_session: usize,
    /// Global cap on in-flight signals (inline sync + queued async).
    pub max_inflight_global: usize,
    /// Socket read timeout — the granularity at which connection threads
    /// notice a shutdown.
    pub read_timeout: Duration,
    /// Detector worker threads behind the async pump. Signals of one
    /// event-graph shard always run FIFO on one worker; more threads let
    /// disjoint shards detect concurrently.
    pub detector_threads: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_inflight_per_session: 128,
            max_inflight_global: 1024,
            read_timeout: Duration::from_millis(50),
            detector_threads: 1,
        }
    }
}

/// A signal accepted from a `SignalAsync` frame, waiting for the pump.
struct AsyncJob {
    event: String,
    params: Vec<(Arc<str>, sentinel_detector::Value)>,
    txn: Option<u64>,
    trace: Option<u64>,
    /// The owning session's in-flight counter, decremented when processed.
    session_inflight: Arc<AtomicU64>,
}

/// An authenticated connection (one `Hello` accepted).
struct Session {
    inflight: Arc<AtomicU64>,
}

/// State shared by every server thread.
struct State {
    handle: ServeHandle,
    cfg: ServerConfig,
    metrics: Arc<NetMetrics>,
    shutdown: AtomicBool,
    active_conns: AtomicU64,
    inflight_sync: AtomicU64,
    next_session: AtomicU64,
    async_tx: Mutex<Option<Sender<AsyncJob>>>,
    /// The detector pool's queue counters (depth, drain latency),
    /// installed once the pool is spawned; scraped by `/metrics`.
    service_metrics: Mutex<Option<Arc<ServiceMetrics>>>,
    /// Signals a client-requested shutdown to [`NetServer::wait_for_shutdown`].
    shutdown_tx: Sender<()>,
}

/// A running server; dropping it shuts it down.
pub struct NetServer {
    state: Arc<State>,
    local_addr: SocketAddr,
    acceptor: Mutex<Option<JoinHandle<()>>>,
    pump: Mutex<Option<JoinHandle<()>>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
    shutdown_rx: Receiver<()>,
}

impl NetServer {
    /// Binds `cfg.addr` and starts serving `handle`.
    pub fn start(handle: ServeHandle, cfg: ServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        // Publish the *actually bound* address on the system handle: with
        // port 0 in `cfg.addr` this is the only place the resolved port
        // exists, and in-process harnesses (two-node tests, embedded
        // servers) need it without parsing stdout.
        handle.sentinel().set_bound_addr(local_addr);
        let metrics = Arc::new(NetMetrics::default());
        let (async_tx, async_rx) = bounded::<AsyncJob>(cfg.max_inflight_global.max(1));
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let state = Arc::new(State {
            handle: handle.clone(),
            cfg,
            metrics,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            inflight_sync: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            async_tx: Mutex::new(Some(async_tx)),
            service_metrics: Mutex::new(None),
            shutdown_tx,
        });

        let pool =
            DetectorPool::spawn(handle.sentinel().detector().clone(), state.cfg.detector_threads);
        *state.service_metrics.lock() = Some(pool.metrics().clone());
        // When the system's telemetry sampler is running, feed the net and
        // service counters into the same registry. The source holds only a
        // weak server reference — telemetry never keeps a dead server (or
        // the sentinel ← handle cycle) alive.
        if let Some(registry) = handle.sentinel().telemetry() {
            let weak = Arc::downgrade(&state);
            registry.register_fn(move |out| {
                let Some(state) = weak.upgrade() else { return };
                let m = &state.metrics;
                out.push(Sample::counter("net.frames_in", m.frames_in.get()));
                out.push(Sample::counter("net.frames_out", m.frames_out.get()));
                out.push(Sample::counter("net.bytes_in", m.bytes_in.get()));
                out.push(Sample::counter("net.bytes_out", m.bytes_out.get()));
                out.push(Sample::counter("net.busy_rejections", m.busy_rejections.get()));
                out.push(Sample::gauge("net.connections_active", m.connections_active.get()));
                let svc = state.service_metrics.lock().clone();
                if let Some(svc) = svc {
                    out.push(Sample::gauge("service.queue_depth", svc.queue_depth.get()));
                    out.push(Sample::counter("service.processed", svc.processed.get()));
                    out.push(Sample::gauge(
                        "service.drain_p99_ns",
                        svc.drain_latency_ns.snapshot().p99_ns(),
                    ));
                }
            });
        }
        let pump_state = state.clone();
        let pump = std::thread::Builder::new()
            .name("sentinel-net-pump".into())
            .spawn(move || pump_loop(pool, async_rx, pump_state))
            .expect("spawn pump thread");

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_state = state.clone();
        let accept_conns = conn_threads.clone();
        let acceptor = std::thread::Builder::new()
            .name("sentinel-net-accept".into())
            .spawn(move || accept_loop(listener, accept_state, accept_conns))
            .expect("spawn acceptor thread");

        Ok(NetServer {
            state,
            local_addr,
            acceptor: Mutex::new(Some(acceptor)),
            pump: Mutex::new(Some(pump)),
            conn_threads,
            shutdown_rx,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's network counters.
    pub fn metrics(&self) -> &Arc<NetMetrics> {
        &self.state.metrics
    }

    /// Blocks until a client sends a `Shutdown` frame, then shuts down.
    pub fn wait_for_shutdown(&self) {
        let _ = self.shutdown_rx.recv();
        self.shutdown();
    }

    /// Graceful shutdown: stop accepting, join connection threads, drain
    /// the async queue and the detector service. Idempotent.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor's `incoming()` with a throwaway connect.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(t) = self.acceptor.lock().take() {
            let _ = t.join();
        }
        let threads: Vec<_> = self.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        // Closing the queue lets the pump drain what is left, shut the
        // detector service down (which drains *its* queue), and exit.
        *self.state.async_tx.lock() = None;
        if let Some(t) = self.pump.lock().take() {
            let _ = t.join();
        }
        // With every signal drained, persist the tail: force the journal
        // to disk and cut a final checkpoint so a restart replays nothing.
        // No-ops when the system is not durable.
        let sentinel = self.state.handle.sentinel();
        let _ = sentinel.flush_journal();
        let _ = sentinel.checkpoint_now();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Routes accepted async signals to their shard's worker in the detector
/// pool. Detections stream back on the pool's channel and a dedicated
/// dispatcher thread feeds them to the rule scheduler, so a slow rule
/// action never blocks signal intake. A job's session in-flight counter is
/// decremented by a completion callback on the worker that processed it.
fn pump_loop(mut pool: DetectorPool, rx: Receiver<AsyncJob>, state: Arc<State>) {
    let det_rx = pool.detections().clone();
    let disp_state = state.clone();
    let dispatcher = std::thread::Builder::new()
        .name("sentinel-net-dispatch".into())
        .spawn(move || {
            while let Ok(d) = det_rx.recv() {
                disp_state.handle.dispatch(vec![d]);
            }
        })
        .expect("spawn dispatch thread");
    let spans = state.handle.sentinel().trace_store().clone();
    while let Ok(job) = rx.recv() {
        let sig = Signal::Explicit { name: job.event.clone(), params: job.params, txn: job.txn };
        let inflight = job.session_inflight;
        match job.trace.filter(|_| spans.is_enabled()) {
            Some(raw) => {
                let trace = spans.adopt_remote(raw);
                let h = spans.start(trace, None, "net_signal", Arc::from(job.event.as_str()));
                let store = spans.clone();
                // Submission captures the ambient span, so the worker's
                // detector spans join the client's trace; the net span
                // closes on the worker once the signal is processed.
                let _g = span::push_current(h.ctx);
                pool.signal_async_done(
                    sig,
                    Box::new(move || {
                        store.finish(h, 0, vec![("remote_trace", Field::U64(raw))]);
                        inflight.fetch_sub(1, Ordering::SeqCst);
                    }),
                );
            }
            None => pool.signal_async_done(
                sig,
                Box::new(move || {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                }),
            ),
        }
    }
    // Queue closed: graceful shutdown. Drain every worker queue, then
    // drop the pool so the detections channel closes and the dispatcher
    // exits after delivering the tail.
    pool.shutdown();
    drop(pool);
    let _ = dispatcher.join();
}

fn accept_loop(listener: TcpListener, state: Arc<State>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = state.active_conns.load(Ordering::SeqCst);
        if active >= state.cfg.max_connections as u64 {
            state.metrics.connections_refused.inc();
            let _ = protocol::write_frame(
                &mut &stream,
                &err_frame(0, "connection-limit", "server connection limit reached"),
            );
            continue; // dropping the stream closes it
        }
        state.metrics.connections_opened.inc();
        let n = state.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
        state.metrics.connections_active.set(n);
        let conn_state = state.clone();
        let t = std::thread::Builder::new()
            .name("sentinel-net-conn".into())
            .spawn(move || {
                handle_conn(&stream, &conn_state);
                let n = conn_state.active_conns.fetch_sub(1, Ordering::SeqCst) - 1;
                conn_state.metrics.connections_active.set(n);
            })
            .expect("spawn connection thread");
        conns.lock().push(t);
    }
}

/// Serves one connection until EOF, a protocol error, or server shutdown.
fn handle_conn(stream: &TcpStream, state: &Arc<State>) {
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut session: Option<Session> = None;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    'conn: loop {
        // A plain HTTP GET/HEAD (e.g. `curl /metrics`) shares the port
        // with the frame protocol: the method token can never open a
        // valid frame (magic "SN"), so sniff it before frame-decoding,
        // serve one response, and close (`Connection: close` — scrapers
        // reconnect per poll).
        if is_http_prefix(&buf) {
            if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                serve_http(stream, state, &buf[..end]);
                break 'conn;
            }
            if buf.len() > 16 * 1024 {
                break 'conn; // runaway header block
            }
        } else {
            // Handle every complete frame already buffered.
            loop {
                match protocol::decode(&buf) {
                    Ok(Some((frame, used))) => {
                        buf.drain(..used);
                        state.metrics.frames_in.inc();
                        if !handle_frame(stream, state, &mut session, frame) {
                            break 'conn;
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Corrupt stream: report once, then hang up —
                        // resync inside a length-prefixed stream is
                        // impossible.
                        state.metrics.decode_errors.inc();
                        send(stream, state, &err_frame(0, "decode", &e.to_string()));
                        break 'conn;
                    }
                }
            }
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match (&mut &*stream).read(&mut chunk) {
            Ok(0) => break, // client hung up
            Ok(n) => {
                state.metrics.bytes_in.add(n as u64);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // timeout tick: re-check the shutdown flag
            }
            Err(_) => break,
        }
    }
}

/// True when `buf` could (still) be the start of an HTTP GET/HEAD
/// request — i.e. it is a prefix of (or starts with) either method token.
fn is_http_prefix(buf: &[u8]) -> bool {
    if buf.is_empty() {
        return false;
    }
    let matches = |verb: &[u8]| {
        let n = buf.len().min(verb.len());
        buf[..n] == verb[..n]
    };
    matches(b"GET ") || matches(b"HEAD ")
}

/// The exposition document for `/metrics`: the system families plus the
/// server-side net/service families (which only this process knows).
fn full_prom(state: &Arc<State>) -> String {
    let mut prom = state.handle.prom_text();
    let mut w = PromText::new();
    let m = &state.metrics;
    w.counter("sentinel_net_frames_in_total", "Frames received", &[], m.frames_in.get());
    w.counter("sentinel_net_frames_out_total", "Frames sent", &[], m.frames_out.get());
    w.counter("sentinel_net_bytes_in_total", "Bytes received", &[], m.bytes_in.get());
    w.counter("sentinel_net_bytes_out_total", "Bytes sent", &[], m.bytes_out.get());
    w.counter(
        "sentinel_net_busy_rejections_total",
        "Requests rejected with Busy",
        &[],
        m.busy_rejections.get(),
    );
    w.gauge("sentinel_net_connections_active", "Open connections", &[], m.connections_active.get());
    if let Some(svc) = state.service_metrics.lock().clone() {
        w.gauge(
            "sentinel_service_queue_depth",
            "Queued, undrained async signals",
            &[],
            svc.queue_depth.get(),
        );
        w.counter(
            "sentinel_service_processed_total",
            "Async signals processed",
            &[],
            svc.processed.get(),
        );
        w.histogram(
            "sentinel_service_drain_latency_ns",
            "Enqueue-to-processed latency",
            &[],
            &svc.drain_latency_ns.snapshot(),
        );
    }
    prom.push_str(&w.finish());
    prom
}

/// The `MetricsScrape` payload: the full exposition text plus the
/// time-series ring snapshot (`Null` when telemetry is off).
fn metrics_payload(state: &Arc<State>) -> json::Value {
    json::Value::obj([
        ("prom", json::Value::Str(full_prom(state))),
        ("telemetry", state.handle.sentinel().telemetry_json()),
    ])
}

/// Serves one sniffed HTTP request (`head` is everything before the
/// header/body separator) and lets the caller close the connection.
fn serve_http(stream: &TcpStream, state: &Arc<State>, head: &[u8]) {
    use std::io::Write as _;
    let line = head.split(|&b| b == b'\r').next().unwrap_or(head);
    let line = String::from_utf8_lossy(line);
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    let (status, ctype, body) = match path {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4", full_prom(state)),
        "/metrics.json" => {
            ("200 OK", "application/json", state.handle.sentinel().telemetry_json().to_string())
        }
        _ => ("404 Not Found", "text/plain", "not found\n".to_string()),
    };
    let mut resp = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    if method != "HEAD" {
        resp.push_str(&body);
    }
    if (&mut &*stream).write_all(resp.as_bytes()).is_ok() {
        state.metrics.bytes_out.add(resp.len() as u64);
    }
}

/// Handles one request; returns `false` to close the connection.
fn handle_frame(
    stream: &TcpStream,
    state: &Arc<State>,
    session: &mut Option<Session>,
    frame: Frame,
) -> bool {
    let id = frame.request_id;
    // A replica is read-only over the wire: the apply loop is its only
    // mutator, so concurrent client writes can never diverge it from the
    // primary's stream. `Promote` (or primary-loss auto-promotion) lifts
    // the restriction.
    let is_write = matches!(
        frame.opcode,
        Opcode::SignalSync
            | Opcode::SignalAsync
            | Opcode::DefineClass
            | Opcode::DefineEvent
            | Opcode::DefineRule
            | Opcode::EnableRule
            | Opcode::DisableRule
            | Opcode::DropRule
    );
    if is_write && state.handle.sentinel().is_replica() {
        return send(
            stream,
            state,
            &err_frame(id, "read-only", "node is a read-only replica (Promote to accept writes)"),
        );
    }
    match frame.opcode {
        Opcode::Ping => send(stream, state, &Frame::new(Opcode::Ok, id, frame.payload)),
        // Monitoring is read-only and session-free, like Ping: a scraper
        // should not have to speak Hello.
        Opcode::MetricsScrape => {
            send(stream, state, &Frame::new(Opcode::Ok, id, metrics_payload(state)))
        }
        Opcode::Hello => {
            let Some(client) = frame.payload.get("client").and_then(json::Value::as_str) else {
                return send(stream, state, &err_frame(id, "bad-request", "hello needs client"));
            };
            let sid = state.next_session.fetch_add(1, Ordering::SeqCst) + 1;
            *session = Some(Session { inflight: Arc::new(AtomicU64::new(0)) });
            state.metrics.sessions.inc();
            let reply = json::Value::obj([
                ("session", json::Value::UInt(sid)),
                ("client", json::Value::str(client)),
                ("server", json::Value::str("sentinel")),
                ("version", json::Value::UInt(u64::from(protocol::VERSION))),
            ]);
            send(stream, state, &Frame::new(Opcode::Ok, id, reply))
        }
        Opcode::Ok | Opcode::Err | Opcode::Busy => {
            state.metrics.decode_errors.inc();
            send(stream, state, &err_frame(id, "bad-request", "response opcode from client"));
            false
        }
        _ if session.is_none() => {
            send(stream, state, &err_frame(id, "unauthenticated", "send Hello first"))
        }
        Opcode::SignalSync => handle_signal_sync(stream, state, id, &frame.payload),
        Opcode::SignalAsync => {
            let sess = session.as_ref().expect("checked above");
            handle_signal_async(stream, state, sess, id, &frame.payload)
        }
        Opcode::Stats => {
            let mut stats = state.handle.stats_json();
            if let json::Value::Obj(pairs) = &mut stats {
                pairs.push(("net".to_string(), state.metrics.snapshot().to_json()));
            }
            send(stream, state, &Frame::new(Opcode::Ok, id, stats))
        }
        Opcode::TraceSummaries => {
            let traces = state.handle.trace_summaries_json();
            let reply = json::Value::obj([("traces", traces)]);
            send(stream, state, &Frame::new(Opcode::Ok, id, reply))
        }
        Opcode::ExportTrace => {
            let chrome = state.handle.export_chrome_trace();
            let reply = json::Value::obj([("chrome", json::Value::Str(chrome))]);
            send(stream, state, &Frame::new(Opcode::Ok, id, reply))
        }
        Opcode::DefineClass => reply_result(stream, state, id, define_class(state, &frame.payload)),
        Opcode::DefineEvent => reply_result(stream, state, id, define_event(state, &frame.payload)),
        Opcode::DefineRule => reply_result(stream, state, id, define_rule(state, &frame.payload)),
        Opcode::EnableRule => {
            reply_result(stream, state, id, rule_admin(state, &frame.payload, RuleAdmin::Enable))
        }
        Opcode::DisableRule => {
            reply_result(stream, state, id, rule_admin(state, &frame.payload, RuleAdmin::Disable))
        }
        Opcode::DropRule => {
            reply_result(stream, state, id, rule_admin(state, &frame.payload, RuleAdmin::Drop))
        }
        Opcode::ReplSubscribe => {
            let follower = frame
                .payload
                .get("follower")
                .and_then(json::Value::as_str)
                .unwrap_or("follower")
                .to_string();
            let r = state.handle.sentinel().repl_subscribe_json(&follower);
            reply_result(stream, state, id, r.map_err(|e| e.to_string()))
        }
        Opcode::ReplSnapshot => {
            let r = state.handle.sentinel().repl_snapshot_json();
            reply_result(stream, state, id, r.map_err(|e| e.to_string()))
        }
        Opcode::ReplFrames => {
            let from = frame.payload.get("from").and_then(json::Value::as_u64).unwrap_or(0);
            let max = frame.payload.get("max").and_then(json::Value::as_u64).unwrap_or(1024);
            let r = state.handle.sentinel().repl_frames_json(from, max);
            reply_result(stream, state, id, r.map_err(|e| e.to_string()))
        }
        Opcode::ReplAck => {
            let follower = frame
                .payload
                .get("follower")
                .and_then(json::Value::as_str)
                .unwrap_or("follower")
                .to_string();
            let applied = frame.payload.get("applied").and_then(json::Value::as_u64).unwrap_or(0);
            let r = state.handle.sentinel().repl_ack_json(&follower, applied);
            reply_result(stream, state, id, r.map_err(|e| e.to_string()))
        }
        Opcode::Promote => {
            let promoted = state.handle.sentinel().promote();
            let reply = json::Value::obj([
                ("role", json::Value::str("primary")),
                ("promoted", json::Value::Bool(promoted)),
            ]);
            send(stream, state, &Frame::new(Opcode::Ok, id, reply))
        }
        Opcode::Shutdown => {
            let ok = send(stream, state, &Frame::new(Opcode::Ok, id, json::Value::Null));
            let _ = state.shutdown_tx.send(());
            ok
        }
    }
}

fn handle_signal_sync(
    stream: &TcpStream,
    state: &Arc<State>,
    id: u64,
    payload: &json::Value,
) -> bool {
    let Some((event, params, txn, trace)) = parse_signal(payload) else {
        return send(stream, state, &err_frame(id, "bad-request", "malformed signal"));
    };
    let limit = state.cfg.max_inflight_global as u64;
    let cur = state.inflight_sync.fetch_add(1, Ordering::SeqCst) + 1;
    if cur > limit {
        state.inflight_sync.fetch_sub(1, Ordering::SeqCst);
        state.metrics.busy_rejections.inc();
        flight::global().record_static(FlightKind::Busy, "sync_global", cur, limit);
        return send(stream, state, &busy_frame(id, "global", cur, limit));
    }
    let n = state.handle.signal_traced(&event, params, txn, trace);
    state.inflight_sync.fetch_sub(1, Ordering::SeqCst);
    let reply = json::Value::obj([("detections", json::Value::UInt(n as u64))]);
    send(stream, state, &Frame::new(Opcode::Ok, id, reply))
}

fn handle_signal_async(
    stream: &TcpStream,
    state: &Arc<State>,
    sess: &Session,
    id: u64,
    payload: &json::Value,
) -> bool {
    let Some((event, params, txn, trace)) = parse_signal(payload) else {
        return send(stream, state, &err_frame(id, "bad-request", "malformed signal"));
    };
    let limit = state.cfg.max_inflight_per_session as u64;
    let cur = sess.inflight.fetch_add(1, Ordering::SeqCst) + 1;
    if cur > limit {
        sess.inflight.fetch_sub(1, Ordering::SeqCst);
        state.metrics.busy_rejections.inc();
        flight::global().record_static(FlightKind::Busy, "session", cur, limit);
        return send(stream, state, &busy_frame(id, "session", cur, limit));
    }
    let job = AsyncJob { event, params, txn, trace, session_inflight: sess.inflight.clone() };
    let verdict = match state.async_tx.lock().as_ref() {
        Some(tx) => tx.try_send(job).map_err(|e| matches!(e, TrySendError::Full(_))),
        None => Err(false), // shutting down
    };
    match verdict {
        Ok(()) => {
            let reply = json::Value::obj([("queued", json::Value::Bool(true))]);
            send(stream, state, &Frame::new(Opcode::Ok, id, reply))
        }
        Err(full) => {
            sess.inflight.fetch_sub(1, Ordering::SeqCst);
            if full {
                state.metrics.busy_rejections.inc();
                let cap = state.cfg.max_inflight_global as u64;
                flight::global().record_static(FlightKind::Busy, "async_global", cap, cap);
                send(stream, state, &busy_frame(id, "global", cap, cap))
            } else {
                send(stream, state, &err_frame(id, "shutting-down", "server is draining"))
            }
        }
    }
}

/// Pulls `(event, params, txn, trace)` out of a signal payload.
#[allow(clippy::type_complexity)]
fn parse_signal(
    payload: &json::Value,
) -> Option<(String, Vec<(Arc<str>, sentinel_detector::Value)>, Option<u64>, Option<u64>)> {
    let event = payload.get("event")?.as_str()?.to_string();
    let params = match payload.get("params") {
        Some(p) => protocol::params_from_json(p)?,
        None => Vec::new(),
    };
    let txn = payload.get("txn").and_then(json::Value::as_u64);
    let trace = payload.get("trace").and_then(json::Value::as_u64);
    Some((event, params, txn, trace))
}

fn define_class(state: &Arc<State>, payload: &json::Value) -> Result<json::Value, String> {
    let name = require_str(payload, "name")?;
    let mut attrs = Vec::new();
    if let Some(list) = payload.get("attrs").and_then(json::Value::as_arr) {
        for attr in list {
            let pair = attr.as_arr().filter(|p| p.len() == 2).ok_or("attrs: want [name, type]")?;
            let (an, at) = (pair[0].as_str(), pair[1].as_str());
            let (an, at) = an.zip(at).ok_or("attrs: want string pairs")?;
            attrs.push((an.to_string(), at.to_string()));
        }
    }
    state.handle.sentinel().register_class_spec(name, &attrs, &[]).map_err(|e| e.to_string())?;
    Ok(json::Value::obj([("class", json::Value::str(name))]))
}

fn define_event(state: &Arc<State>, payload: &json::Value) -> Result<json::Value, String> {
    let name = require_str(payload, "name")?;
    let sentinel = state.handle.sentinel();
    let id = match payload.get("expr").and_then(json::Value::as_str) {
        Some(expr) => sentinel.define_event(name, expr).map_err(|e| e.to_string())?,
        None => sentinel.declare_explicit(name).map_err(|e| e.to_string())?,
    };
    Ok(json::Value::obj([("event", json::Value::UInt(u64::from(id.0)))]))
}

fn define_rule(state: &Arc<State>, payload: &json::Value) -> Result<json::Value, String> {
    // The whole payload is the rule spec; parsing, the action catalog
    // (`count`, `raise`) and catalog journaling live in
    // `Sentinel::define_rule_spec`, shared with durable recovery.
    let rule = state.handle.sentinel().define_rule_spec(payload).map_err(|e| e.to_string())?;
    Ok(json::Value::obj([("rule", json::Value::UInt(rule.0))]))
}

enum RuleAdmin {
    Enable,
    Disable,
    Drop,
}

fn rule_admin(
    state: &Arc<State>,
    payload: &json::Value,
    op: RuleAdmin,
) -> Result<json::Value, String> {
    let name = require_str(payload, "name")?;
    let sentinel = state.handle.sentinel();
    match op {
        RuleAdmin::Enable => sentinel.enable_rule(name).map_err(|e| e.to_string())?,
        RuleAdmin::Disable => sentinel.disable_rule(name).map_err(|e| e.to_string())?,
        RuleAdmin::Drop => sentinel.drop_rule(name).map_err(|e| e.to_string())?,
    }
    Ok(json::Value::obj([("rule", json::Value::str(name))]))
}

fn require_str<'a>(payload: &'a json::Value, key: &str) -> Result<&'a str, String> {
    payload.get(key).and_then(json::Value::as_str).ok_or_else(|| format!("missing `{key}`"))
}

fn reply_result(
    stream: &TcpStream,
    state: &Arc<State>,
    id: u64,
    result: Result<json::Value, String>,
) -> bool {
    match result {
        Ok(body) => send(stream, state, &Frame::new(Opcode::Ok, id, body)),
        Err(message) => send(stream, state, &err_frame(id, "rejected", &message)),
    }
}

fn err_frame(id: u64, code: &str, message: &str) -> Frame {
    let payload = json::Value::obj([
        ("code", json::Value::str(code)),
        ("message", json::Value::str(message)),
    ]);
    Frame::new(Opcode::Err, id, payload)
}

fn busy_frame(id: u64, scope: &str, inflight: u64, limit: u64) -> Frame {
    let payload = json::Value::obj([
        ("scope", json::Value::str(scope)),
        ("inflight", json::Value::UInt(inflight)),
        ("limit", json::Value::UInt(limit)),
    ]);
    Frame::new(Opcode::Busy, id, payload)
}

/// Writes a response, counting frames/bytes. An oversized body degrades to
/// an error frame; a transport failure closes the connection.
fn send(stream: &TcpStream, state: &Arc<State>, frame: &Frame) -> bool {
    match protocol::write_frame(&mut &*stream, frame) {
        Ok(n) => {
            state.metrics.frames_out.inc();
            state.metrics.bytes_out.add(n as u64);
            true
        }
        Err(WireError::Encode(_)) => {
            let fallback = err_frame(frame.request_id, "oversized", "response exceeds frame limit");
            match protocol::write_frame(&mut &*stream, &fallback) {
                Ok(n) => {
                    state.metrics.frames_out.inc();
                    state.metrics.bytes_out.add(n as u64);
                    true
                }
                Err(_) => false,
            }
        }
        Err(_) => false,
    }
}
