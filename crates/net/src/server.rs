//! The Sentinel network server: many clients, one shared active DBMS.
//!
//! Two interchangeable transport backends serve the same command set
//! (shared via [`crate::commands`]) behind one [`NetServer`] front:
//!
//! * **epoll reactor** (default, [`ServerConfig::event_loops`] > 0):
//!   a small fixed set of event loops multiplexing nonblocking sockets —
//!   see [`crate::reactor`]. This is the C10K path: connections cost a
//!   few KiB of buffers, not a thread.
//! * **thread-per-connection** (`event_loops = 0`): one acceptor thread
//!   and one OS thread per connection (bounded by
//!   [`ServerConfig::max_connections`]), kept as the portable reference
//!   implementation; the conformance suite in `tests/net_loopback.rs`
//!   runs against both.
//!
//! Either way, one *async pump* thread routes queued signals into a
//! [`DetectorPool`] of [`ServerConfig::detector_threads`] workers — the
//! paper's Figure 2 separation of detection from application execution,
//! applied at the network boundary and scaled across event-graph shards.
//! Signals of one shard stay FIFO on one worker; disjoint shards detect
//! concurrently. A dispatcher thread drains pooled detections into the
//! rule scheduler so slow rule actions never stall signal intake.
//!
//! Request handling per connection is serial, but clients pipeline: every
//! frame carries a request id and responses echo it, so a client may have
//! many requests outstanding on one socket. Frames arrive in either wire
//! version (v1 JSON / v2 binary, up to
//! [`ServerConfig::max_codec_version`]) and the server answers each in
//! the version it arrived in.
//!
//! Backpressure is explicit, never unbounded queueing:
//!
//! * **sync signals** (and [`crate::protocol::Opcode::SignalBatch`]
//!   frames, each counting as one unit) run inline and are capped
//!   globally ([`ServerConfig::max_inflight_global`]) — past the cap the
//!   server answers `Busy {"scope": "global"}`;
//! * **async signals** enter a bounded queue drained by the pump; a full
//!   queue is a global `Busy`, and each session is further capped at
//!   [`ServerConfig::max_inflight_per_session`] queued signals
//!   (`Busy {"scope": "session"}`);
//! * the reactor additionally bounds each connection's **write queue**
//!   ([`ServerConfig::max_write_queue`]) and evicts peers that stall
//!   mid-frame or mid-write past [`ServerConfig::stall_timeout`].
//!
//! Graceful shutdown (client `Shutdown` frame or [`NetServer::shutdown`])
//! stops accepting, winds down the backend (joining connection threads or
//! event loops), closes the async queue so the pump drains it, and
//! finally calls [`DetectorPool::shutdown`], which processes everything
//! still queued on every worker before joining them (and the dispatcher
//! drains the last detections).

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use sentinel_core::ServeHandle;
use sentinel_detector::service::{ServiceMetrics, Signal};
use sentinel_detector::DetectorPool;
use sentinel_obs::span;
use sentinel_obs::timeseries::Sample;
use sentinel_obs::trace::Field;
use sentinel_obs::NetMetrics;

use crate::commands::{self, Outcome, Session};
use crate::protocol::{self, Frame, WireError};
use crate::reactor::Reactor;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; use port 0 to let the OS pick (see
    /// [`NetServer::local_addr`]).
    pub addr: String,
    /// Maximum concurrently open connections; further connects receive an
    /// error frame and are closed.
    pub max_connections: usize,
    /// Per-session cap on queued async signals.
    pub max_inflight_per_session: usize,
    /// Global cap on in-flight signals (inline sync + queued async).
    pub max_inflight_global: usize,
    /// Socket read timeout — the granularity at which *threaded*
    /// connection threads notice a shutdown (unused by the reactor,
    /// which is woken by eventfd).
    pub read_timeout: Duration,
    /// Detector worker threads behind the async pump. Signals of one
    /// event-graph shard always run FIFO on one worker; more threads let
    /// disjoint shards detect concurrently.
    pub detector_threads: usize,
    /// Reactor event loops; `0` selects the thread-per-connection
    /// backend instead.
    pub event_loops: usize,
    /// Highest wire version this server accepts and advertises
    /// ([`protocol::VERSION`] = JSON only, [`protocol::VERSION_BINARY`]
    /// adds the compact codec). Lowering it emulates an old server for
    /// negotiation tests.
    pub max_codec_version: u8,
    /// Reactor: bytes of unsent responses a connection may accumulate
    /// before it is evicted (always at least one max-size frame).
    pub max_write_queue: usize,
    /// Reactor: a connection stuck mid-frame or mid-write longer than
    /// this is evicted; zero disables the scan. Idle connections are
    /// never evicted.
    pub stall_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 64,
            max_inflight_per_session: 128,
            max_inflight_global: 1024,
            read_timeout: Duration::from_millis(50),
            detector_threads: 1,
            event_loops: 2,
            max_codec_version: protocol::VERSION_MAX,
            max_write_queue: 4 << 20,
            stall_timeout: Duration::from_secs(30),
        }
    }
}

/// A signal accepted from a `SignalAsync` frame, waiting for the pump.
pub(crate) struct AsyncJob {
    pub(crate) event: String,
    pub(crate) params: Vec<(Arc<str>, sentinel_detector::Value)>,
    pub(crate) txn: Option<u64>,
    pub(crate) trace: Option<u64>,
    /// The owning session's in-flight counter, decremented when processed.
    pub(crate) session_inflight: Arc<AtomicU64>,
}

/// State shared by every server thread (both backends and the pump).
pub(crate) struct State {
    pub(crate) handle: ServeHandle,
    pub(crate) cfg: ServerConfig,
    pub(crate) metrics: Arc<NetMetrics>,
    pub(crate) shutdown: AtomicBool,
    pub(crate) active_conns: AtomicU64,
    pub(crate) inflight_sync: AtomicU64,
    pub(crate) next_session: AtomicU64,
    pub(crate) async_tx: Mutex<Option<Sender<AsyncJob>>>,
    /// The detector pool's queue counters (depth, drain latency),
    /// installed once the pool is spawned; scraped by `/metrics`.
    pub(crate) service_metrics: Mutex<Option<Arc<ServiceMetrics>>>,
    /// Signals a client-requested shutdown to [`NetServer::wait_for_shutdown`].
    pub(crate) shutdown_tx: Sender<()>,
}

/// The transport actually serving sockets.
enum Backend {
    Threaded { acceptor: JoinHandle<()>, conns: Arc<Mutex<Vec<JoinHandle<()>>>> },
    Reactor(Reactor),
}

/// A running server; dropping it shuts it down.
pub struct NetServer {
    state: Arc<State>,
    local_addr: SocketAddr,
    backend: Mutex<Option<Backend>>,
    pump: Mutex<Option<JoinHandle<()>>>,
    shutdown_rx: Receiver<()>,
}

impl NetServer {
    /// Binds `cfg.addr` and starts serving `handle`.
    pub fn start(handle: ServeHandle, cfg: ServerConfig) -> std::io::Result<NetServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let local_addr = listener.local_addr()?;
        // Publish the *actually bound* address on the system handle: with
        // port 0 in `cfg.addr` this is the only place the resolved port
        // exists, and in-process harnesses (two-node tests, embedded
        // servers) need it without parsing stdout.
        handle.sentinel().set_bound_addr(local_addr);
        let metrics = Arc::new(NetMetrics::default());
        let (async_tx, async_rx) = bounded::<AsyncJob>(cfg.max_inflight_global.max(1));
        let (shutdown_tx, shutdown_rx) = unbounded::<()>();
        let state = Arc::new(State {
            handle: handle.clone(),
            cfg,
            metrics,
            shutdown: AtomicBool::new(false),
            active_conns: AtomicU64::new(0),
            inflight_sync: AtomicU64::new(0),
            next_session: AtomicU64::new(0),
            async_tx: Mutex::new(Some(async_tx)),
            service_metrics: Mutex::new(None),
            shutdown_tx,
        });

        let pool =
            DetectorPool::spawn(handle.sentinel().detector().clone(), state.cfg.detector_threads);
        *state.service_metrics.lock() = Some(pool.metrics().clone());
        // When the system's telemetry sampler is running, feed the net and
        // service counters into the same registry. The source holds only a
        // weak server reference — telemetry never keeps a dead server (or
        // the sentinel ← handle cycle) alive.
        if let Some(registry) = handle.sentinel().telemetry() {
            let weak = Arc::downgrade(&state);
            registry.register_fn(move |out| {
                let Some(state) = weak.upgrade() else { return };
                let m = &state.metrics;
                out.push(Sample::counter("net.frames_in", m.frames_in.get()));
                out.push(Sample::counter("net.frames_out", m.frames_out.get()));
                out.push(Sample::counter("net.bytes_in", m.bytes_in.get()));
                out.push(Sample::counter("net.bytes_out", m.bytes_out.get()));
                out.push(Sample::counter("net.busy_rejections", m.busy_rejections.get()));
                out.push(Sample::gauge("net.connections_active", m.connections_active.get()));
                out.push(Sample::counter("net.epoll_wakeups", m.epoll_wakeups.get()));
                out.push(Sample::counter("net.partial_writes", m.partial_writes.get()));
                out.push(Sample::counter("net.stall_evictions", m.stall_evictions.get()));
                out.push(Sample::counter("net.overflow_evictions", m.overflow_evictions.get()));
                let svc = state.service_metrics.lock().clone();
                if let Some(svc) = svc {
                    out.push(Sample::gauge("service.queue_depth", svc.queue_depth.get()));
                    out.push(Sample::counter("service.processed", svc.processed.get()));
                    out.push(Sample::gauge(
                        "service.drain_p99_ns",
                        svc.drain_latency_ns.snapshot().p99_ns(),
                    ));
                }
            });
        }
        let pump_state = state.clone();
        let pump = std::thread::Builder::new()
            .name("sentinel-net-pump".into())
            .spawn(move || pump_loop(pool, async_rx, pump_state))
            .expect("spawn pump thread");

        let backend = if state.cfg.event_loops == 0 {
            let conn_threads = Arc::new(Mutex::new(Vec::new()));
            let accept_state = state.clone();
            let accept_conns = conn_threads.clone();
            let acceptor = std::thread::Builder::new()
                .name("sentinel-net-accept".into())
                .spawn(move || accept_loop(listener, accept_state, accept_conns))
                .expect("spawn acceptor thread");
            Backend::Threaded { acceptor, conns: conn_threads }
        } else {
            Backend::Reactor(Reactor::start(listener, state.clone())?)
        };

        Ok(NetServer {
            state,
            local_addr,
            backend: Mutex::new(Some(backend)),
            pump: Mutex::new(Some(pump)),
            shutdown_rx,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The server's network counters.
    pub fn metrics(&self) -> &Arc<NetMetrics> {
        &self.state.metrics
    }

    /// Blocks until a client sends a `Shutdown` frame, then shuts down.
    pub fn wait_for_shutdown(&self) {
        let _ = self.shutdown_rx.recv();
        self.shutdown();
    }

    /// Graceful shutdown: stop accepting, wind the backend down, drain
    /// the async queue and the detector service. Idempotent.
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
        if let Some(backend) = self.backend.lock().take() {
            match backend {
                Backend::Threaded { acceptor, conns } => {
                    // Unblock the acceptor's `incoming()` with a throwaway
                    // connect.
                    let _ = TcpStream::connect(self.local_addr);
                    let _ = acceptor.join();
                    let threads: Vec<_> = conns.lock().drain(..).collect();
                    for t in threads {
                        let _ = t.join();
                    }
                }
                Backend::Reactor(reactor) => reactor.shutdown(),
            }
        }
        // Closing the queue lets the pump drain what is left, shut the
        // detector service down (which drains *its* queue), and exit.
        *self.state.async_tx.lock() = None;
        if let Some(t) = self.pump.lock().take() {
            let _ = t.join();
        }
        // With every signal drained, persist the tail: force the journal
        // to disk and cut a final checkpoint so a restart replays nothing.
        // No-ops when the system is not durable.
        let sentinel = self.state.handle.sentinel();
        let _ = sentinel.flush_journal();
        let _ = sentinel.checkpoint_now();
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Routes accepted async signals to their shard's worker in the detector
/// pool. Detections stream back on the pool's channel and a dedicated
/// dispatcher thread feeds them to the rule scheduler, so a slow rule
/// action never blocks signal intake. A job's session in-flight counter is
/// decremented by a completion callback on the worker that processed it.
fn pump_loop(mut pool: DetectorPool, rx: Receiver<AsyncJob>, state: Arc<State>) {
    let det_rx = pool.detections().clone();
    let disp_state = state.clone();
    let dispatcher = std::thread::Builder::new()
        .name("sentinel-net-dispatch".into())
        .spawn(move || {
            while let Ok(d) = det_rx.recv() {
                disp_state.handle.dispatch(vec![d]);
            }
        })
        .expect("spawn dispatch thread");
    let spans = state.handle.sentinel().trace_store().clone();
    while let Ok(job) = rx.recv() {
        let sig = Signal::Explicit { name: job.event.clone(), params: job.params, txn: job.txn };
        let inflight = job.session_inflight;
        match job.trace.filter(|_| spans.is_enabled()) {
            Some(raw) => {
                let trace = spans.adopt_remote(raw);
                let h = spans.start(trace, None, "net_signal", Arc::from(job.event.as_str()));
                let store = spans.clone();
                // Submission captures the ambient span, so the worker's
                // detector spans join the client's trace; the net span
                // closes on the worker once the signal is processed.
                let _g = span::push_current(h.ctx);
                pool.signal_async_done(
                    sig,
                    Box::new(move || {
                        store.finish(h, 0, vec![("remote_trace", Field::U64(raw))]);
                        inflight.fetch_sub(1, Ordering::SeqCst);
                    }),
                );
            }
            None => pool.signal_async_done(
                sig,
                Box::new(move || {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                }),
            ),
        }
    }
    // Queue closed: graceful shutdown. Drain every worker queue, then
    // drop the pool so the detections channel closes and the dispatcher
    // exits after delivering the tail.
    pool.shutdown();
    drop(pool);
    let _ = dispatcher.join();
}

fn accept_loop(listener: TcpListener, state: Arc<State>, conns: Arc<Mutex<Vec<JoinHandle<()>>>>) {
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = state.active_conns.load(Ordering::SeqCst);
        if active >= state.cfg.max_connections as u64 {
            state.metrics.connections_refused.inc();
            let _ = protocol::write_frame(
                &mut &stream,
                &commands::err_frame(0, "connection-limit", "server connection limit reached"),
            );
            continue; // dropping the stream closes it
        }
        state.metrics.connections_opened.inc();
        let n = state.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
        state.metrics.connections_active.set(n);
        let conn_state = state.clone();
        let t = std::thread::Builder::new()
            .name("sentinel-net-conn".into())
            .spawn(move || {
                handle_conn(&stream, &conn_state);
                let n = conn_state.active_conns.fetch_sub(1, Ordering::SeqCst) - 1;
                conn_state.metrics.connections_active.set(n);
            })
            .expect("spawn connection thread");
        conns.lock().push(t);
    }
}

/// Serves one connection until EOF, a protocol error, or server shutdown
/// (thread-per-connection backend).
fn handle_conn(stream: &TcpStream, state: &Arc<State>) {
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_nodelay(true);
    let mut session: Option<Session> = None;
    let mut buf: Vec<u8> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    'conn: loop {
        // A plain HTTP GET/HEAD (e.g. `curl /metrics`) shares the port
        // with the frame protocol: the method token can never open a
        // valid frame (magic "SN"), so sniff it before frame-decoding,
        // serve one response, and close (`Connection: close` — scrapers
        // reconnect per poll).
        if commands::is_http_prefix(&buf) {
            if let Some(end) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
                use std::io::Write as _;
                let resp = commands::http_response(state, &buf[..end]);
                if (&mut &*stream).write_all(&resp).is_ok() {
                    state.metrics.bytes_out.add(resp.len() as u64);
                }
                break 'conn;
            }
            if buf.len() > 16 * 1024 {
                break 'conn; // runaway header block
            }
        } else {
            // Handle every complete frame already buffered, answering
            // each in the wire version it arrived in.
            loop {
                match protocol::decode_with(&buf, state.cfg.max_codec_version) {
                    Ok(Some((frame, wire, used))) => {
                        buf.drain(..used);
                        state.metrics.frames_in.inc();
                        match commands::execute(state, &mut session, frame) {
                            Outcome::Reply(f) => {
                                if !send(stream, state, &f, wire) {
                                    break 'conn;
                                }
                            }
                            Outcome::ReplyClose(f) => {
                                send(stream, state, &f, wire);
                                break 'conn;
                            }
                            Outcome::ReplyShutdown(f) => {
                                let ok = send(stream, state, &f, wire);
                                let _ = state.shutdown_tx.send(());
                                if !ok {
                                    break 'conn;
                                }
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Corrupt stream: report once, then hang up —
                        // resync inside a length-prefixed stream is
                        // impossible.
                        state.metrics.decode_errors.inc();
                        send(
                            stream,
                            state,
                            &commands::err_frame(0, "decode", &e.to_string()),
                            protocol::VERSION,
                        );
                        break 'conn;
                    }
                }
            }
        }
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match (&mut &*stream).read(&mut chunk) {
            Ok(0) => break, // client hung up
            Ok(n) => {
                state.metrics.bytes_in.add(n as u64);
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue; // timeout tick: re-check the shutdown flag
            }
            Err(_) => break,
        }
    }
}

/// Writes a response in `wire` version, counting frames/bytes. An
/// oversized body degrades to an error frame; a transport failure closes
/// the connection.
fn send(stream: &TcpStream, state: &Arc<State>, frame: &Frame, wire: u8) -> bool {
    match protocol::write_frame_with(&mut &*stream, frame, wire) {
        Ok(n) => {
            state.metrics.frames_out.inc();
            state.metrics.bytes_out.add(n as u64);
            true
        }
        Err(WireError::Encode(_)) => {
            let fallback =
                commands::err_frame(frame.request_id, "oversized", "response exceeds frame limit");
            match protocol::write_frame_with(&mut &*stream, &fallback, wire) {
                Ok(n) => {
                    state.metrics.frames_out.inc();
                    state.metrics.bytes_out.add(n as u64);
                    true
                }
                Err(_) => false,
            }
        }
        Err(_) => false,
    }
}
