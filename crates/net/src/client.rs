//! Blocking Sentinel client with request pipelining.
//!
//! [`SentinelClient`] owns one TCP connection. Writes are serialized
//! through a mutex; a dedicated reader thread routes response frames back
//! to callers by request id, so any number of requests may be in flight
//! at once ([`SentinelClient::send`] returns a [`Pending`] handle;
//! the convenience methods send and wait in one call).
//!
//! Errors are typed: [`ClientError::Transport`] is the socket or framing
//! layer failing, [`ClientError::Server`] is the server processing the
//! request and rejecting it, [`ClientError::Busy`] is backpressure —
//! retry later — and [`ClientError::Disconnected`] means the connection
//! died while a response was outstanding.
//!
//! **Wire version.** `Hello` (always sent as v1 JSON, which every server
//! build understands) advertises the client's `max_version`; the server
//! replies with the highest version both sides speak, and all subsequent
//! frames on the connection use it ([`ClientCodec`] can pin either
//! version instead of negotiating).
//!
//! **Request-id spaces are per-connection.** Every connection draws its
//! ids from a distinct 2³² range, so after a reconnect a stale response
//! to an old request id (e.g. one still draining out of a reactor write
//! queue) can never match — and thus never be routed to — a new
//! connection's [`Pending`] handle.

use std::collections::HashMap;
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::channel::{bounded, Receiver, Sender};
use parking_lot::Mutex;
use sentinel_detector::Value as EventValue;
use sentinel_obs::json;

use crate::protocol::{self, Frame, Opcode, WireError};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket or the framing layer failed (connection-level).
    Transport(WireError),
    /// The server processed the request and reported an error.
    Server {
        /// Machine-readable error code (e.g. `"unauthenticated"`).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// The server rejected the request under backpressure; retrying later
    /// is expected to succeed.
    Busy {
        /// Which limit was hit: `"session"` or `"global"`.
        scope: String,
    },
    /// The connection closed with the response still outstanding.
    Disconnected,
    /// The server's response was missing an expected field.
    BadResponse(&'static str),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Transport(e) => write!(f, "transport: {e}"),
            ClientError::Server { code, message } => write!(f, "server error [{code}]: {message}"),
            ClientError::Busy { scope } => write!(f, "server busy ({scope} limit)"),
            ClientError::Disconnected => write!(f, "connection closed"),
            ClientError::BadResponse(what) => write!(f, "malformed response: {what}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// Which payload codec a connection should use after `Hello`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientCodec {
    /// Negotiate: advertise binary, accept whatever the server grants
    /// (old JSON-only servers answer `version: 1`). The default.
    Auto,
    /// Pin v1 JSON bodies, even against a binary-capable server.
    Json,
    /// Require v2 binary bodies; connecting to a server that only speaks
    /// JSON fails with [`ClientError::BadResponse`].
    Binary,
}

/// One signal in a [`SentinelClient::signal_batch`] /
/// [`SentinelClient::send_batch`] frame: `(event, params, txn)`.
pub type BatchSignal<'a> = (&'a str, &'a [(Arc<str>, EventValue)], Option<u64>);

/// Hands each connection a disjoint 2³² request-id range (see the module
/// docs on reconnect safety).
static CONN_EPOCH: AtomicU64 = AtomicU64::new(0);

struct Shared {
    writer: Mutex<TcpStream>,
    pending: Mutex<HashMap<u64, Sender<Frame>>>,
    closed: AtomicBool,
}

/// A blocking connection to a Sentinel server.
pub struct SentinelClient {
    shared: Arc<Shared>,
    next_id: AtomicU64,
    reader: Option<JoinHandle<()>>,
    session: u64,
    /// Wire version for frames after `Hello` (1 = JSON, 2 = binary);
    /// fixed at connect time, before the client is ever shared.
    wire: u8,
}

/// An in-flight request; [`Pending::wait`] blocks for its response.
/// Dropping it abandons the response (the reader discards it on arrival).
#[must_use = "wait() retrieves the response"]
pub struct Pending {
    rx: Receiver<Frame>,
    shared: Arc<Shared>,
    id: u64,
}

impl Pending {
    /// Blocks until the response arrives, mapping `Err`/`Busy` frames to
    /// typed errors.
    pub fn wait(self) -> Result<json::Value, ClientError> {
        let frame = self.rx.recv().map_err(|_| ClientError::Disconnected)?;
        match frame.opcode {
            Opcode::Ok => Ok(frame.payload),
            Opcode::Err => {
                let get = |k: &str| {
                    frame.payload.get(k).and_then(json::Value::as_str).unwrap_or("?").to_string()
                };
                Err(ClientError::Server { code: get("code"), message: get("message") })
            }
            Opcode::Busy => {
                let scope = frame
                    .payload
                    .get("scope")
                    .and_then(json::Value::as_str)
                    .unwrap_or("?")
                    .to_string();
                Err(ClientError::Busy { scope })
            }
            _ => Err(ClientError::BadResponse("non-response opcode")),
        }
    }
}

impl Drop for Pending {
    fn drop(&mut self) {
        self.shared.pending.lock().remove(&self.id);
    }
}

/// Declarative rule definition for [`SentinelClient::define_rule`], naming
/// an action from the server-side catalog.
#[derive(Debug, Clone)]
pub struct RuleSpec {
    name: String,
    event: String,
    action: json::Value,
    context: Option<&'static str>,
    coupling: Option<&'static str>,
    priority: Option<u32>,
}

impl RuleSpec {
    /// A rule whose action bumps the server-side `rule_hits` counter.
    pub fn count(name: &str, event: &str) -> RuleSpec {
        RuleSpec {
            name: name.to_string(),
            event: event.to_string(),
            action: json::Value::obj([("action", json::Value::str("count"))]),
            context: None,
            coupling: None,
            priority: None,
        }
    }

    /// A rule whose action raises the explicit event `target` (cascading).
    pub fn raise(name: &str, event: &str, target: &str) -> RuleSpec {
        RuleSpec {
            name: name.to_string(),
            event: event.to_string(),
            action: json::Value::obj([
                ("action", json::Value::str("raise")),
                ("event", json::Value::str(target)),
            ]),
            context: None,
            coupling: None,
            priority: None,
        }
    }

    /// Sets the parameter context (`"recent"`, `"chronicle"`,
    /// `"continuous"`, `"cumulative"`).
    pub fn context(mut self, ctx: &'static str) -> RuleSpec {
        self.context = Some(ctx);
        self
    }

    /// Sets the coupling mode (`"immediate"`, `"deferred"`, `"detached"`).
    pub fn coupling(mut self, c: &'static str) -> RuleSpec {
        self.coupling = Some(c);
        self
    }

    /// Sets the priority class.
    pub fn priority(mut self, p: u32) -> RuleSpec {
        self.priority = Some(p);
        self
    }

    fn to_payload(&self) -> json::Value {
        let mut pairs = vec![
            ("name".to_string(), json::Value::str(self.name.as_str())),
            ("event".to_string(), json::Value::str(self.event.as_str())),
            ("action".to_string(), self.action.clone()),
        ];
        if let Some(c) = self.context {
            pairs.push(("context".to_string(), json::Value::str(c)));
        }
        if let Some(c) = self.coupling {
            pairs.push(("coupling".to_string(), json::Value::str(c)));
        }
        if let Some(p) = self.priority {
            pairs.push(("priority".to_string(), json::Value::UInt(u64::from(p))));
        }
        json::Value::Obj(pairs)
    }
}

impl SentinelClient {
    /// Connects and opens a session named `client`, negotiating the
    /// binary codec when the server supports it ([`ClientCodec::Auto`]).
    pub fn connect(addr: &str, client: &str) -> Result<SentinelClient, ClientError> {
        Self::connect_with(addr, client, ClientCodec::Auto)
    }

    /// [`SentinelClient::connect`] with an explicit codec choice.
    pub fn connect_with(
        addr: &str,
        client: &str,
        codec: ClientCodec,
    ) -> Result<SentinelClient, ClientError> {
        let stream =
            TcpStream::connect(addr).map_err(|e| ClientError::Transport(WireError::Io(e)))?;
        let _ = stream.set_nodelay(true);
        let reader_stream =
            stream.try_clone().map_err(|e| ClientError::Transport(WireError::Io(e)))?;
        let shared = Arc::new(Shared {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            closed: AtomicBool::new(false),
        });
        let reader_shared = shared.clone();
        let reader = std::thread::Builder::new()
            .name("sentinel-client-reader".into())
            .spawn(move || reader_loop(reader_stream, &reader_shared))
            .expect("spawn client reader");
        let epoch = CONN_EPOCH.fetch_add(1, Ordering::SeqCst);
        let mut c = SentinelClient {
            shared,
            next_id: AtomicU64::new(epoch.wrapping_shl(32)),
            reader: Some(reader),
            session: 0,
            wire: protocol::VERSION,
        };
        let advertise = match codec {
            ClientCodec::Json => protocol::VERSION,
            ClientCodec::Auto | ClientCodec::Binary => protocol::VERSION_BINARY,
        };
        // Hello itself always travels as v1 JSON (`c.wire` is still 1
        // here): that is what makes an old server answer at all.
        let hello = c.request(
            Opcode::Hello,
            json::Value::obj([
                ("client", json::Value::str(client)),
                ("max_version", json::Value::UInt(u64::from(advertise))),
            ]),
        )?;
        c.session = hello.get("session").and_then(json::Value::as_u64).unwrap_or_default();
        let granted = hello
            .get("version")
            .and_then(json::Value::as_u64)
            .unwrap_or(u64::from(protocol::VERSION)) as u8;
        c.wire = granted.min(advertise).max(protocol::VERSION);
        if codec == ClientCodec::Binary && c.wire < protocol::VERSION_BINARY {
            return Err(ClientError::BadResponse("server does not speak the binary codec"));
        }
        Ok(c)
    }

    /// [`SentinelClient::connect`] with doubling backoff: up to `attempts`
    /// tries, sleeping `backoff` (then 2×, 4×, …) between failures. Lets a
    /// client outlive a server restart. Each successful attempt is a fresh
    /// connection with a fresh request-id space.
    pub fn connect_with_backoff(
        addr: &str,
        client: &str,
        attempts: u32,
        mut backoff: Duration,
    ) -> Result<SentinelClient, ClientError> {
        let mut last = ClientError::Disconnected;
        for attempt in 0..attempts.max(1) {
            match Self::connect(addr, client) {
                Ok(c) => return Ok(c),
                Err(e) => last = e,
            }
            if attempt + 1 < attempts {
                std::thread::sleep(backoff);
                backoff = backoff.saturating_mul(2);
            }
        }
        Err(last)
    }

    /// The session id the server assigned at `Hello`.
    pub fn session(&self) -> u64 {
        self.session
    }

    /// The wire version negotiated at `Hello` (1 = JSON bodies,
    /// 2 = binary codec).
    pub fn negotiated_version(&self) -> u8 {
        self.wire
    }

    /// Sends a request without waiting — the pipelining primitive. Call
    /// [`Pending::wait`] for the response; further sends may happen in
    /// between.
    pub fn send(&self, opcode: Opcode, payload: json::Value) -> Result<Pending, ClientError> {
        if self.shared.closed.load(Ordering::SeqCst) {
            return Err(ClientError::Disconnected);
        }
        let id = self.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let (tx, rx) = bounded(1);
        self.shared.pending.lock().insert(id, tx);
        let frame = Frame::new(opcode, id, payload);
        let res = {
            let mut writer = self.shared.writer.lock();
            protocol::write_frame_with(&mut *writer, &frame, self.wire)
        };
        if let Err(e) = res {
            self.shared.pending.lock().remove(&id);
            return Err(ClientError::Transport(e));
        }
        Ok(Pending { rx, shared: self.shared.clone(), id })
    }

    /// Sends a request and blocks for its response.
    pub fn request(
        &self,
        opcode: Opcode,
        payload: json::Value,
    ) -> Result<json::Value, ClientError> {
        self.send(opcode, payload)?.wait()
    }

    // --- typed commands ----------------------------------------------

    /// Registers a reactive class (extends `REACTIVE` server-side);
    /// `attrs` pairs are `(name, type)` with types `int`/`float`/`bool`/
    /// `str`/`ref`.
    pub fn define_class(&self, name: &str, attrs: &[(&str, &str)]) -> Result<(), ClientError> {
        let attrs_json = json::Value::Arr(
            attrs
                .iter()
                .map(|(n, t)| json::Value::Arr(vec![json::Value::str(*n), json::Value::str(*t)]))
                .collect(),
        );
        self.request(
            Opcode::DefineClass,
            json::Value::obj([("name", json::Value::str(name)), ("attrs", attrs_json)]),
        )?;
        Ok(())
    }

    /// Defines an event: with `expr` a named Snoop composite, without it
    /// an explicit (application-raised) event. Returns the event id.
    pub fn define_event(&self, name: &str, expr: Option<&str>) -> Result<u64, ClientError> {
        let mut pairs = vec![("name".to_string(), json::Value::str(name))];
        if let Some(e) = expr {
            pairs.push(("expr".to_string(), json::Value::str(e)));
        }
        let reply = self.request(Opcode::DefineEvent, json::Value::Obj(pairs))?;
        reply
            .get("event")
            .and_then(json::Value::as_u64)
            .ok_or(ClientError::BadResponse("missing event id"))
    }

    /// Defines a rule from a [`RuleSpec`]; returns the rule id.
    pub fn define_rule(&self, spec: &RuleSpec) -> Result<u64, ClientError> {
        let reply = self.request(Opcode::DefineRule, spec.to_payload())?;
        reply
            .get("rule")
            .and_then(json::Value::as_u64)
            .ok_or(ClientError::BadResponse("missing rule id"))
    }

    /// Enables a rule by name.
    pub fn enable_rule(&self, name: &str) -> Result<(), ClientError> {
        self.rule_admin(Opcode::EnableRule, name)
    }

    /// Disables a rule by name.
    pub fn disable_rule(&self, name: &str) -> Result<(), ClientError> {
        self.rule_admin(Opcode::DisableRule, name)
    }

    /// Deletes a rule by name.
    pub fn drop_rule(&self, name: &str) -> Result<(), ClientError> {
        self.rule_admin(Opcode::DropRule, name)
    }

    fn rule_admin(&self, op: Opcode, name: &str) -> Result<(), ClientError> {
        self.request(op, json::Value::obj([("name", json::Value::str(name))]))?;
        Ok(())
    }

    /// Signals an event and waits for immediate rules to finish
    /// server-side; returns the number of detections it produced.
    pub fn signal_sync(
        &self,
        event: &str,
        params: &[(Arc<str>, EventValue)],
        txn: Option<u64>,
    ) -> Result<u64, ClientError> {
        self.signal_sync_inner(event, params, txn, None)
    }

    /// [`SentinelClient::signal_sync`] carrying a client-chosen trace id,
    /// so the server's provenance spans stitch into this client's trace.
    pub fn signal_sync_traced(
        &self,
        event: &str,
        params: &[(Arc<str>, EventValue)],
        txn: Option<u64>,
        trace: u64,
    ) -> Result<u64, ClientError> {
        self.signal_sync_inner(event, params, txn, Some(trace))
    }

    fn signal_sync_inner(
        &self,
        event: &str,
        params: &[(Arc<str>, EventValue)],
        txn: Option<u64>,
        trace: Option<u64>,
    ) -> Result<u64, ClientError> {
        let reply = self.request(Opcode::SignalSync, signal_payload(event, params, txn, trace))?;
        reply
            .get("detections")
            .and_then(json::Value::as_u64)
            .ok_or(ClientError::BadResponse("missing detections"))
    }

    /// Signals many events in one `SignalBatch` frame. The batch runs
    /// inline, in order, as **one** unit against the server's global
    /// inflight cap — a `Busy` covers the whole batch and nothing was
    /// processed, so retrying preserves event order. Returns
    /// `(accepted, detections)` totals.
    pub fn signal_batch(&self, signals: &[BatchSignal<'_>]) -> Result<(u64, u64), ClientError> {
        let reply = self.send_batch(signals)?.wait()?;
        let get = |k| reply.get(k).and_then(json::Value::as_u64);
        match (get("accepted"), get("detections")) {
            (Some(a), Some(d)) => Ok((a, d)),
            _ => Err(ClientError::BadResponse("missing batch totals")),
        }
    }

    /// [`SentinelClient::signal_batch`] without waiting — the pipelining
    /// form (several batches may be in flight at once).
    pub fn send_batch(&self, signals: &[BatchSignal<'_>]) -> Result<Pending, ClientError> {
        let list: Vec<json::Value> = signals
            .iter()
            .map(|(event, params, txn)| signal_payload(event, params, *txn, None))
            .collect();
        self.send(Opcode::SignalBatch, json::Value::obj([("signals", json::Value::Arr(list))]))
    }

    /// Queues a signal on the server and returns as soon as it is
    /// accepted; detections surface through server-side rules.
    pub fn signal_async(
        &self,
        event: &str,
        params: &[(Arc<str>, EventValue)],
        txn: Option<u64>,
    ) -> Result<(), ClientError> {
        self.request(Opcode::SignalAsync, signal_payload(event, params, txn, None))?;
        Ok(())
    }

    /// Fetches the server's combined stats snapshot (including the `net`
    /// section and `rule_hits`).
    pub fn stats(&self) -> Result<json::Value, ClientError> {
        self.request(Opcode::Stats, json::Value::Null)
    }

    /// Fetches the live telemetry scrape: `{"prom": "<exposition
    /// text>", "telemetry": {<time-series ring snapshot>}}`.
    pub fn metrics_scrape(&self) -> Result<json::Value, ClientError> {
        self.request(Opcode::MetricsScrape, json::Value::Null)
    }

    /// Fetches per-trace roll-ups.
    pub fn trace_summaries(&self) -> Result<json::Value, ClientError> {
        self.request(Opcode::TraceSummaries, json::Value::Null)
    }

    /// Fetches the Chrome trace-event export as a JSON string.
    pub fn export_chrome_trace(&self) -> Result<String, ClientError> {
        let reply = self.request(Opcode::ExportTrace, json::Value::Null)?;
        reply
            .get("chrome")
            .and_then(json::Value::as_str)
            .map(str::to_string)
            .ok_or(ClientError::BadResponse("missing chrome export"))
    }

    // --- replication / cluster ---------------------------------------

    /// Subscribes this client as a replication follower named `follower`;
    /// returns the primary's reply (`{"tip": N, "app": A}`).
    pub fn repl_subscribe(&self, follower: &str) -> Result<json::Value, ClientError> {
        self.request(
            Opcode::ReplSubscribe,
            json::Value::obj([("follower", json::Value::str(follower))]),
        )
    }

    /// Fetches a bootstrap package: `{"seq", "catalog", "snapshot",
    /// "clock"}` — the DDL catalog prefix plus a hex-encoded graph
    /// snapshot, consistent at log sequence `seq`.
    pub fn repl_snapshot(&self) -> Result<json::Value, ClientError> {
        self.request(Opcode::ReplSnapshot, json::Value::Null)
    }

    /// Fetches replication log entries `[from, from+max)`:
    /// `{"entries": [...], "tip": N}`.
    pub fn repl_frames(&self, from: u64, max: u64) -> Result<json::Value, ClientError> {
        self.request(
            Opcode::ReplFrames,
            json::Value::obj([("from", json::Value::UInt(from)), ("max", json::Value::UInt(max))]),
        )
    }

    /// Acknowledges that `follower` has applied entries `< applied`;
    /// returns the primary's current tip.
    pub fn repl_ack(&self, follower: &str, applied: u64) -> Result<u64, ClientError> {
        let reply = self.request(
            Opcode::ReplAck,
            json::Value::obj([
                ("follower", json::Value::str(follower)),
                ("applied", json::Value::UInt(applied)),
            ]),
        )?;
        reply
            .get("tip")
            .and_then(json::Value::as_u64)
            .ok_or(ClientError::BadResponse("missing tip"))
    }

    /// Promotes a replica server to primary; `Ok(true)` if this call did
    /// the promotion, `Ok(false)` if the node already was a primary.
    pub fn promote(&self) -> Result<bool, ClientError> {
        let reply = self.request(Opcode::Promote, json::Value::Null)?;
        match reply.get("promoted") {
            Some(json::Value::Bool(b)) => Ok(*b),
            _ => Err(ClientError::BadResponse("missing promoted")),
        }
    }

    /// Round-trips `payload` through the server.
    pub fn ping(&self, payload: json::Value) -> Result<json::Value, ClientError> {
        self.request(Opcode::Ping, payload)
    }

    /// Asks the server to shut down gracefully.
    pub fn shutdown_server(&self) -> Result<(), ClientError> {
        self.request(Opcode::Shutdown, json::Value::Null)?;
        Ok(())
    }
}

impl Drop for SentinelClient {
    fn drop(&mut self) {
        self.shared.closed.store(true, Ordering::SeqCst);
        // Shut the socket down to unblock the reader thread.
        let _ = self.shared.writer.lock().shutdown(std::net::Shutdown::Both);
        if let Some(t) = self.reader.take() {
            let _ = t.join();
        }
    }
}

fn signal_payload(
    event: &str,
    params: &[(Arc<str>, EventValue)],
    txn: Option<u64>,
    trace: Option<u64>,
) -> json::Value {
    let mut pairs = vec![("event".to_string(), json::Value::str(event))];
    if !params.is_empty() {
        pairs.push(("params".to_string(), protocol::params_to_json(params)));
    }
    if let Some(t) = txn {
        pairs.push(("txn".to_string(), json::Value::UInt(t)));
    }
    if let Some(t) = trace {
        pairs.push(("trace".to_string(), json::Value::UInt(t)));
    }
    json::Value::Obj(pairs)
}

/// Routes response frames to their waiting [`Pending`] handles; on
/// transport failure, wakes every waiter with [`ClientError::Disconnected`].
fn reader_loop(mut stream: TcpStream, shared: &Arc<Shared>) {
    loop {
        match protocol::read_frame(&mut stream) {
            Ok((frame, _)) => {
                let waiter = shared.pending.lock().remove(&frame.request_id);
                if let Some(tx) = waiter {
                    let _ = tx.send(frame);
                }
                // No waiter: response to an abandoned request; drop it.
            }
            Err(_) => {
                shared.closed.store(true, Ordering::SeqCst);
                // Dropping the senders disconnects every waiting receiver,
                // which surfaces as `Disconnected` at the call sites.
                shared.pending.lock().clear();
                break;
            }
        }
    }
}
