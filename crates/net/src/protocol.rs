//! The Sentinel wire protocol: versioned, length-prefixed binary frames.
//!
//! Every frame is a fixed 16-byte header followed by an optional payload
//! whose encoding the header's *version byte* selects — version 1 is
//! UTF-8 JSON text (rendered/parsed with [`sentinel_obs::json`], the same
//! serializer the stats snapshots use), version 2 is the compact binary
//! codec in [`crate::codec`] (CBOR-style tags over the same value trees):
//!
//! | offset | size | field       | value                                  |
//! |-------:|-----:|-------------|----------------------------------------|
//! |      0 |    2 | magic       | `b"SN"`                                |
//! |      2 |    1 | version     | `1` = JSON payload, `2` = binary codec |
//! |      3 |    1 | opcode      | [`Opcode`] discriminant                |
//! |      4 |    8 | request id  | `u64` little-endian, chosen by sender  |
//! |     12 |    4 | payload len | `u32` little-endian, ≤ [`MAX_PAYLOAD`] |
//! |     16 |    n | payload     | JSON text or codec bytes (absent if 0) |
//!
//! Both versions carry the *same* decoded [`Frame`]: the version byte is
//! a per-frame codec tag, not a session mode, so a polyglot server just
//! answers each request in the version it arrived in and a v1-only
//! client never sees a v2 byte. Version negotiation happens in `Hello`
//! (the client states its `max_version`, the server answers with the
//! highest version both sides and [`decode_with`]'s caller accept) — see
//! `net::client` for the downgrade path against old servers.
//!
//! Responses echo the request id, which is what lets a client pipeline
//! many requests on one connection and match replies as they return.
//! Decoding is strict and total: malformed input yields a typed
//! [`DecodeError`], never a panic, and an incomplete buffer is simply
//! `Ok(None)` (read more bytes and retry).

use std::fmt;
use std::io::{self, Read, Write};

use sentinel_obs::json;

use crate::codec;

/// First two bytes of every frame.
pub const MAGIC: [u8; 2] = *b"SN";
/// The baseline protocol version: JSON payload bodies.
pub const VERSION: u8 = 1;
/// The compact-codec protocol version: binary payload bodies.
pub const VERSION_BINARY: u8 = 2;
/// Highest version this build speaks.
pub const VERSION_MAX: u8 = VERSION_BINARY;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Hard ceiling on a frame's payload (1 MiB). Oversized frames are
/// rejected at decode time before any allocation of the stated size.
pub const MAX_PAYLOAD: usize = 1 << 20;

/// Frame opcodes. Requests occupy `0x01..=0x14` (`0x10..=0x14` are the
/// replication/cluster opcodes); responses have the high bit set
/// (`0x80..`), so [`Opcode::is_response`] is one mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Opcode {
    /// Open a session: `{"client": name}` → `Ok {"session": id}`.
    Hello = 0x01,
    /// Register a reactive class: `{"name", "attrs": [[name, type]...]}`.
    DefineClass = 0x02,
    /// Define an event: `{"name", "expr"?}` (no `expr` = explicit event).
    DefineEvent = 0x03,
    /// Define a rule from the server-side action catalog:
    /// `{"name", "event", "action", "context"?, "coupling"?, "priority"?}`.
    DefineRule = 0x04,
    /// Enable a rule by name: `{"name"}`.
    EnableRule = 0x05,
    /// Disable a rule by name: `{"name"}`.
    DisableRule = 0x06,
    /// Delete a rule by name: `{"name"}`.
    DropRule = 0x07,
    /// Signal a primitive event and wait for immediate rules:
    /// `{"event", "params"?, "txn"?, "trace"?}` → `Ok {"detections": n}`.
    SignalSync = 0x08,
    /// Queue a signal and return immediately: same payload as
    /// [`Opcode::SignalSync`] → `Ok {"queued": true}`.
    SignalAsync = 0x09,
    /// Fetch the combined stats snapshot (with `net` and `rule_hits`).
    Stats = 0x0A,
    /// Fetch per-trace roll-ups → `Ok {"traces": [...]}`.
    TraceSummaries = 0x0B,
    /// Fetch the Chrome trace-event export → `Ok {"chrome": "..."}`.
    ExportTrace = 0x0C,
    /// Liveness probe; the payload is echoed back.
    Ping = 0x0D,
    /// Ask the server to shut down gracefully (drains the detector).
    Shutdown = 0x0E,
    /// Fetch the live telemetry scrape: `Ok {"prom": "<exposition
    /// text>", "telemetry": {<time-series ring snapshot>}}`.
    MetricsScrape = 0x0F,
    /// A follower announces itself: `{"follower": name}` →
    /// `Ok {"tip": seq, "app": id}`.
    ReplSubscribe = 0x10,
    /// Bootstrap catch-up: → `Ok {"seq", "catalog": [op...],
    /// "snapshot": "<hex>", "clock": ts}` — the primary's graph snapshot
    /// and full catalog at replication sequence `seq`, cut with
    /// signalling paused.
    ReplSnapshot = 0x11,
    /// Tail the replication stream: `{"from": seq, "max"?: n}` →
    /// `Ok {"entries": [...], "tip": seq}`.
    ReplFrames = 0x12,
    /// Acknowledge an apply watermark: `{"follower": name, "applied":
    /// seq}` → `Ok {}`.
    ReplAck = 0x13,
    /// Promote this node to primary (idempotent): → `Ok {"role":
    /// "primary"}`.
    Promote = 0x14,
    /// Signal many events in one frame, processed in array order:
    /// `{"signals": [{"event", "params"?, "txn"?, "trace"?}, ...]}` →
    /// `Ok {"accepted": n, "detections": total}`. The batch counts as
    /// *one* unit against the global in-flight cap, so a `Busy` rejection
    /// always covers the whole batch and a retry preserves event order.
    SignalBatch = 0x15,
    /// Success response; payload shape depends on the request.
    Ok = 0x80,
    /// Server-reported failure: `{"code", "message"}`.
    Err = 0x81,
    /// Backpressure rejection: `{"scope", "inflight", "limit"}`.
    Busy = 0x82,
}

impl Opcode {
    /// Every opcode, requests then responses (used by the round-trip
    /// property tests).
    pub const ALL: [Opcode; 24] = [
        Opcode::Hello,
        Opcode::DefineClass,
        Opcode::DefineEvent,
        Opcode::DefineRule,
        Opcode::EnableRule,
        Opcode::DisableRule,
        Opcode::DropRule,
        Opcode::SignalSync,
        Opcode::SignalAsync,
        Opcode::Stats,
        Opcode::TraceSummaries,
        Opcode::ExportTrace,
        Opcode::Ping,
        Opcode::Shutdown,
        Opcode::MetricsScrape,
        Opcode::ReplSubscribe,
        Opcode::ReplSnapshot,
        Opcode::ReplFrames,
        Opcode::ReplAck,
        Opcode::Promote,
        Opcode::SignalBatch,
        Opcode::Ok,
        Opcode::Err,
        Opcode::Busy,
    ];

    /// Decodes a wire byte; `None` for unassigned values.
    pub fn from_u8(b: u8) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|op| *op as u8 == b)
    }

    /// True for the response opcodes (`Ok`/`Err`/`Busy`).
    pub fn is_response(self) -> bool {
        self as u8 & 0x80 != 0
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the frame asks for or answers.
    pub opcode: Opcode,
    /// Correlates a response with its request (client-chosen).
    pub request_id: u64,
    /// JSON payload; [`json::Value::Null`] encodes as an empty payload.
    pub payload: json::Value,
}

impl Frame {
    /// Builds a frame.
    pub fn new(opcode: Opcode, request_id: u64, payload: json::Value) -> Frame {
        Frame { opcode, request_id, payload }
    }
}

/// Why a byte buffer failed to decode as a frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// First two bytes were not [`MAGIC`].
    BadMagic([u8; 2]),
    /// Version byte this build does not speak.
    BadVersion(u8),
    /// Unassigned opcode byte.
    UnknownOpcode(u8),
    /// Stated payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Payload present but not valid UTF-8 JSON.
    BadPayload(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownOpcode(b) => write!(f, "unknown opcode {b:#04x}"),
            DecodeError::Oversized(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            DecodeError::BadPayload(m) => write!(f, "malformed payload: {m}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Why a frame could not be encoded (only size can fail).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Rendered payload exceeds [`MAX_PAYLOAD`] bytes.
    Oversized(usize),
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::Oversized(n) => write!(f, "payload of {n} bytes exceeds {MAX_PAYLOAD}"),
        }
    }
}

impl std::error::Error for EncodeError {}

/// Encodes a frame to wire bytes in the baseline (version 1, JSON)
/// encoding — what pre-codec builds speak.
pub fn encode(frame: &Frame) -> Result<Vec<u8>, EncodeError> {
    encode_with(frame, VERSION)
}

/// Encodes a frame to wire bytes in the given protocol version
/// (`1` = JSON text payload, `2` = compact binary payload).
pub fn encode_with(frame: &Frame, version: u8) -> Result<Vec<u8>, EncodeError> {
    let body: Vec<u8> = match version {
        VERSION_BINARY => match &frame.payload {
            json::Value::Null => Vec::new(),
            p => codec::encode_to_vec(p).map_err(|_| EncodeError::Oversized(usize::MAX))?,
        },
        _ => match &frame.payload {
            json::Value::Null => Vec::new(),
            p => p.to_string().into_bytes(),
        },
    };
    if body.len() > MAX_PAYLOAD {
        return Err(EncodeError::Oversized(body.len()));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    out.extend_from_slice(&MAGIC);
    out.push(if version == VERSION_BINARY { VERSION_BINARY } else { VERSION });
    out.push(frame.opcode as u8);
    out.extend_from_slice(&frame.request_id.to_le_bytes());
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Validates a 16-byte header, returning
/// `(version, opcode, request_id, payload_len)`. `max_version` bounds the
/// versions accepted, so a v1-only endpoint rejects v2 frames exactly
/// like a pre-codec build did.
fn decode_header(
    h: &[u8; HEADER_LEN],
    max_version: u8,
) -> Result<(u8, Opcode, u64, usize), DecodeError> {
    if h[0..2] != MAGIC {
        return Err(DecodeError::BadMagic([h[0], h[1]]));
    }
    if h[2] < VERSION || h[2] > max_version {
        return Err(DecodeError::BadVersion(h[2]));
    }
    let opcode = Opcode::from_u8(h[3]).ok_or(DecodeError::UnknownOpcode(h[3]))?;
    let request_id = u64::from_le_bytes(h[4..12].try_into().expect("8 bytes"));
    let len = u32::from_le_bytes(h[12..16].try_into().expect("4 bytes"));
    if len as usize > MAX_PAYLOAD {
        return Err(DecodeError::Oversized(len));
    }
    Ok((h[2], opcode, request_id, len as usize))
}

fn parse_payload(version: u8, bytes: &[u8]) -> Result<json::Value, DecodeError> {
    if bytes.is_empty() {
        return Ok(json::Value::Null);
    }
    if version == VERSION_BINARY {
        return codec::decode_value(bytes).map_err(DecodeError::BadPayload);
    }
    let text = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadPayload("invalid utf-8"))?;
    json::Value::parse(text).map_err(|e| DecodeError::BadPayload(e.message))
}

/// Tries to decode one frame from the front of `buf`, accepting every
/// version this build speaks (see [`decode_with`]).
///
/// * `Ok(Some((frame, consumed)))` — a complete frame; drop `consumed`
///   bytes from the buffer before decoding again.
/// * `Ok(None)` — the buffer holds a valid prefix of a frame; read more.
/// * `Err(_)` — the stream is corrupt at the buffer's front; the only
///   safe recovery is closing the connection.
pub fn decode(buf: &[u8]) -> Result<Option<(Frame, usize)>, DecodeError> {
    decode_with(buf, VERSION_MAX).map(|r| r.map(|(f, _, used)| (f, used)))
}

/// [`decode`] with an explicit version ceiling, also reporting which
/// version the frame arrived in — a polyglot server answers each request
/// in the version it came in, so v1 clients never see a v2 byte.
pub fn decode_with(buf: &[u8], max_version: u8) -> Result<Option<(Frame, u8, usize)>, DecodeError> {
    if buf.len() < HEADER_LEN {
        // Reject garbage early: a wrong magic is detectable from the
        // first bytes alone, before a full header arrives.
        if !MAGIC.starts_with(&buf[..buf.len().min(2)]) {
            return Err(DecodeError::BadMagic([
                buf.first().copied().unwrap_or_default(),
                buf.get(1).copied().unwrap_or_default(),
            ]));
        }
        return Ok(None);
    }
    let header: &[u8; HEADER_LEN] = buf[..HEADER_LEN].try_into().expect("checked length");
    let (version, opcode, request_id, len) = decode_header(header, max_version)?;
    let total = HEADER_LEN + len;
    if buf.len() < total {
        return Ok(None);
    }
    let payload = parse_payload(version, &buf[HEADER_LEN..total])?;
    Ok(Some((Frame { opcode, request_id, payload }, version, total)))
}

/// Transport-or-framing error for the stream helpers.
#[derive(Debug)]
pub enum WireError {
    /// The underlying socket failed.
    Io(io::Error),
    /// The peer sent bytes that do not decode.
    Decode(DecodeError),
    /// The frame to send does not encode (oversized payload).
    Encode(EncodeError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "i/o: {e}"),
            WireError::Decode(e) => write!(f, "decode: {e}"),
            WireError::Encode(e) => write!(f, "encode: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}
impl From<DecodeError> for WireError {
    fn from(e: DecodeError) -> Self {
        WireError::Decode(e)
    }
}
impl From<EncodeError> for WireError {
    fn from(e: EncodeError) -> Self {
        WireError::Encode(e)
    }
}

/// Writes one frame in the baseline (JSON) encoding, returning the bytes
/// put on the wire.
pub fn write_frame<W: Write>(w: &mut W, frame: &Frame) -> Result<usize, WireError> {
    write_frame_with(w, frame, VERSION)
}

/// Writes one frame in the given protocol version.
pub fn write_frame_with<W: Write>(
    w: &mut W,
    frame: &Frame,
    version: u8,
) -> Result<usize, WireError> {
    let bytes = encode_with(frame, version)?;
    w.write_all(&bytes)?;
    Ok(bytes.len())
}

/// Reads exactly one frame (either payload version), blocking until it is
/// complete.
pub fn read_frame<R: Read>(r: &mut R) -> Result<(Frame, usize), WireError> {
    let mut header = [0u8; HEADER_LEN];
    r.read_exact(&mut header)?;
    let (version, opcode, request_id, len) = decode_header(&header, VERSION_MAX)?;
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    let payload = parse_payload(version, &payload)?;
    Ok((Frame { opcode, request_id, payload }, HEADER_LEN + len))
}

// ---------------------------------------------------------------------------
// Event-parameter (de)serialization — the tagged-JSON value codec lives in
// `sentinel-core::durable` (the catalog persists rule specs in the same
// format); re-exported here so wire-protocol users keep their import path.
// ---------------------------------------------------------------------------

pub use sentinel_core::durable::{
    params_from_json, params_to_json, value_from_json, value_to_json,
};

#[cfg(test)]
mod tests {
    use std::sync::Arc;

    use sentinel_detector::Value as EventValue;

    use super::*;

    fn frame(op: Opcode) -> Frame {
        Frame::new(op, 42, json::Value::obj([("k", json::Value::UInt(7))]))
    }

    #[test]
    fn encode_decode_round_trips() {
        for op in Opcode::ALL {
            let f = frame(op);
            let bytes = encode(&f).unwrap();
            let (back, used) = decode(&bytes).unwrap().expect("complete");
            assert_eq!(back, f);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn empty_payload_is_null() {
        let f = Frame::new(Opcode::Stats, 1, json::Value::Null);
        let bytes = encode(&f).unwrap();
        assert_eq!(bytes.len(), HEADER_LEN);
        let (back, _) = decode(&bytes).unwrap().unwrap();
        assert_eq!(back.payload, json::Value::Null);
    }

    #[test]
    fn incomplete_buffers_ask_for_more() {
        let bytes = encode(&frame(Opcode::Ping)).unwrap();
        for cut in [0, 1, HEADER_LEN - 1, HEADER_LEN, bytes.len() - 1] {
            assert_eq!(decode(&bytes[..cut]).unwrap(), None, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_headers_are_typed_errors() {
        let good = encode(&frame(Opcode::Ping)).unwrap();
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(decode(&bad), Err(DecodeError::BadMagic(_))));
        let mut bad = good.clone();
        bad[2] = 9;
        assert!(matches!(decode(&bad), Err(DecodeError::BadVersion(9))));
        let mut bad = good.clone();
        bad[3] = 0x7F;
        assert!(matches!(decode(&bad), Err(DecodeError::UnknownOpcode(0x7F))));
        let mut bad = good;
        bad[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&bad), Err(DecodeError::Oversized(_))));
    }

    #[test]
    fn oversized_payload_refuses_to_encode() {
        let f = Frame::new(Opcode::Ping, 0, json::Value::str("x".repeat(MAX_PAYLOAD)));
        assert!(matches!(encode(&f), Err(EncodeError::Oversized(_))));
    }

    #[test]
    fn binary_frames_round_trip_and_are_version_tagged() {
        for op in Opcode::ALL {
            let f = frame(op);
            let bytes = encode_with(&f, VERSION_BINARY).unwrap();
            assert_eq!(bytes[2], VERSION_BINARY);
            let (back, version, used) =
                decode_with(&bytes, VERSION_MAX).unwrap().expect("complete");
            assert_eq!(back, f);
            assert_eq!(version, VERSION_BINARY);
            assert_eq!(used, bytes.len());
        }
    }

    #[test]
    fn v1_ceiling_rejects_binary_frames_like_an_old_build() {
        let bytes = encode_with(&frame(Opcode::Ping), VERSION_BINARY).unwrap();
        assert!(matches!(
            decode_with(&bytes, VERSION),
            Err(DecodeError::BadVersion(VERSION_BINARY))
        ));
        // The permissive entry point still takes it.
        assert!(decode(&bytes).unwrap().is_some());
    }

    #[test]
    fn params_round_trip() {
        let params: Vec<(Arc<str>, EventValue)> = vec![
            (Arc::from("i"), EventValue::Int(-3)),
            (Arc::from("f"), EventValue::Float(2.5)),
            (Arc::from("b"), EventValue::Bool(true)),
            (Arc::from("s"), EventValue::Str(Arc::from("hi"))),
            (Arc::from("o"), EventValue::Oid(9)),
            (Arc::from("n"), EventValue::Null),
        ];
        let j = params_to_json(&params);
        let text = j.to_string();
        let parsed = json::Value::parse(&text).unwrap();
        assert_eq!(params_from_json(&parsed).unwrap(), params);
    }

    #[test]
    fn opcode_bytes_are_stable() {
        assert_eq!(Opcode::Hello as u8, 0x01);
        assert_eq!(Opcode::Shutdown as u8, 0x0E);
        assert_eq!(Opcode::MetricsScrape as u8, 0x0F);
        assert_eq!(Opcode::ReplSubscribe as u8, 0x10);
        assert_eq!(Opcode::ReplSnapshot as u8, 0x11);
        assert_eq!(Opcode::ReplFrames as u8, 0x12);
        assert_eq!(Opcode::ReplAck as u8, 0x13);
        assert_eq!(Opcode::Promote as u8, 0x14);
        assert_eq!(Opcode::SignalBatch as u8, 0x15);
        assert!(!Opcode::Promote.is_response());
        assert!(!Opcode::SignalBatch.is_response());
        assert_eq!(Opcode::Ok as u8, 0x80);
        assert!(Opcode::Busy.is_response());
        assert!(!Opcode::SignalSync.is_response());
        assert_eq!(Opcode::from_u8(0x00), None);
        assert_eq!(Opcode::from_u8(0xFF), None);
    }
}
