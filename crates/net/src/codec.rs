//! The compact binary payload codec (wire version 2): CBOR-style tagged
//! encoding of [`json::Value`] trees.
//!
//! Version 1 frames carry UTF-8 JSON text; version 2 frames carry the
//! same value trees in CBOR's head-byte form — major type in the high 3
//! bits, additional info in the low 5 — which makes the common payload
//! shapes (event-param tuples, stats snapshots, trace roll-ups) several
//! times smaller and removes text parsing from the hot path entirely:
//!
//! | major | meaning            | encodes                               |
//! |------:|--------------------|---------------------------------------|
//! |     0 | unsigned integer   | `UInt`, and non-negative `Int`        |
//! |     1 | negative integer   | negative `Int` (`-1 - n`)             |
//! |     3 | text string        | `Str` (UTF-8, length-prefixed)        |
//! |     4 | array              | `Arr` (definite length)               |
//! |     5 | map                | `Obj` (text keys, insertion order)    |
//! |     7 | simple/float       | `false`/`true`/`null`, f64 (info 27)  |
//!
//! Additional info `0..=23` is an immediate value; `24`/`25`/`26`/`27`
//! mean a 1/2/4/8-byte big-endian argument follows. Encoding always picks
//! the shortest argument width, so encoding is canonical: equal values
//! produce identical bytes.
//!
//! Decoding is **total and canonicalizing**: arbitrary bytes yield
//! `Ok`/`Err`, never a panic, and a decoded tree is in the same canonical
//! form [`json::Value::parse`] produces (non-negative integers are
//! `UInt`, negatives `Int`, floats stay `Float`) — which is what makes
//! the JSON-vs-binary differential property (`tests/net_codec.rs`) an
//! equality, not an equivalence. Guards: nesting is capped at
//! [`MAX_DEPTH`], and every declared length is checked against the bytes
//! actually remaining before anything is allocated, so a 5-byte buffer
//! claiming a 4 GiB string is rejected immediately.

use sentinel_obs::json;

/// Maximum nesting depth a decoded value may have. Deeper input is
/// rejected (`"nesting too deep"`) instead of recursing toward stack
/// exhaustion; the encoder enforces the same cap so the two stay in sync.
pub const MAX_DEPTH: usize = 64;

/// Why a byte buffer failed to decode as a value.
pub type CodecError = &'static str;

// CBOR head bytes for the fixed simple values.
const SIMPLE_FALSE: u8 = 0xF4;
const SIMPLE_TRUE: u8 = 0xF5;
const SIMPLE_NULL: u8 = 0xF6;
const FLOAT64: u8 = 0xFB;

/// Encodes `v` onto the end of `out`. Returns `Err` only when the tree
/// nests deeper than [`MAX_DEPTH`] (the decoder would refuse it anyway).
pub fn encode_value(v: &json::Value, out: &mut Vec<u8>) -> Result<(), CodecError> {
    encode_at(v, out, 0)
}

/// Encodes `v` into a fresh buffer.
pub fn encode_to_vec(v: &json::Value) -> Result<Vec<u8>, CodecError> {
    let mut out = Vec::new();
    encode_value(v, &mut out)?;
    Ok(out)
}

fn encode_at(v: &json::Value, out: &mut Vec<u8>, depth: usize) -> Result<(), CodecError> {
    if depth > MAX_DEPTH {
        return Err("nesting too deep");
    }
    match v {
        json::Value::Null => out.push(SIMPLE_NULL),
        json::Value::Bool(false) => out.push(SIMPLE_FALSE),
        json::Value::Bool(true) => out.push(SIMPLE_TRUE),
        json::Value::UInt(n) => head(out, 0, *n),
        json::Value::Int(n) if *n >= 0 => head(out, 0, *n as u64),
        json::Value::Int(n) => head(out, 1, !(*n) as u64), // -1 - n, two's complement
        json::Value::Float(f) => {
            out.push(FLOAT64);
            out.extend_from_slice(&f.to_bits().to_be_bytes());
        }
        json::Value::Str(s) => {
            head(out, 3, s.len() as u64);
            out.extend_from_slice(s.as_bytes());
        }
        json::Value::Arr(items) => {
            head(out, 4, items.len() as u64);
            for item in items {
                encode_at(item, out, depth + 1)?;
            }
        }
        json::Value::Obj(pairs) => {
            head(out, 5, pairs.len() as u64);
            for (k, val) in pairs {
                head(out, 3, k.len() as u64);
                out.extend_from_slice(k.as_bytes());
                encode_at(val, out, depth + 1)?;
            }
        }
    }
    Ok(())
}

/// Writes a CBOR head: 3-bit major type + shortest-form argument.
fn head(out: &mut Vec<u8>, major: u8, arg: u64) {
    let m = major << 5;
    match arg {
        0..=23 => out.push(m | arg as u8),
        24..=0xFF => {
            out.push(m | 24);
            out.push(arg as u8);
        }
        0x100..=0xFFFF => {
            out.push(m | 25);
            out.extend_from_slice(&(arg as u16).to_be_bytes());
        }
        0x1_0000..=0xFFFF_FFFF => {
            out.push(m | 26);
            out.extend_from_slice(&(arg as u32).to_be_bytes());
        }
        _ => {
            out.push(m | 27);
            out.extend_from_slice(&arg.to_be_bytes());
        }
    }
}

/// Decodes one value spanning exactly `bytes` (trailing bytes are an
/// error, mirroring [`json::Value::parse`]'s strictness).
pub fn decode_value(bytes: &[u8]) -> Result<json::Value, CodecError> {
    let mut d = Decoder { bytes, pos: 0 };
    let v = d.value(0)?;
    if d.pos != bytes.len() {
        return Err("trailing bytes after value");
    }
    Ok(v)
}

struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Decoder<'_> {
    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.bytes.get(self.pos).ok_or("truncated value")?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&[u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or("length overflow")?;
        if end > self.bytes.len() {
            return Err("truncated value");
        }
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Reads a head's argument given its additional-info bits.
    fn arg(&mut self, info: u8) -> Result<u64, CodecError> {
        match info {
            0..=23 => Ok(u64::from(info)),
            24 => Ok(u64::from(self.byte()?)),
            25 => Ok(u64::from(u16::from_be_bytes(self.take(2)?.try_into().expect("2 bytes")))),
            26 => Ok(u64::from(u32::from_be_bytes(self.take(4)?.try_into().expect("4 bytes")))),
            27 => Ok(u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes"))),
            _ => Err("reserved length encoding"),
        }
    }

    /// A declared element/byte count, sanity-checked against the bytes
    /// remaining (every element costs at least `unit` bytes), so hostile
    /// lengths fail before any allocation of the stated size.
    fn checked_len(&self, n: u64, unit: usize) -> Result<usize, CodecError> {
        let remaining = self.bytes.len() - self.pos;
        let n = usize::try_from(n).map_err(|_| "length exceeds buffer")?;
        match n.checked_mul(unit.max(1)) {
            Some(need) if need <= remaining => Ok(n),
            _ => Err("length exceeds buffer"),
        }
    }

    fn text(&mut self, info: u8) -> Result<String, CodecError> {
        let len = self.arg(info)?;
        let len = self.checked_len(len, 1)?;
        let raw = self.take(len)?;
        match std::str::from_utf8(raw) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err("string is not utf-8"),
        }
    }

    fn value(&mut self, depth: usize) -> Result<json::Value, CodecError> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep");
        }
        let b = self.byte()?;
        let (major, info) = (b >> 5, b & 0x1F);
        match major {
            // Canonical form matches the JSON parser: non-negative → UInt.
            0 => Ok(json::Value::UInt(self.arg(info)?)),
            1 => {
                let n = self.arg(info)?;
                if n > i64::MAX as u64 {
                    return Err("negative integer overflows i64");
                }
                Ok(json::Value::Int(-1 - (n as i64)))
            }
            3 => Ok(json::Value::Str(self.text(info)?)),
            4 => {
                let arg = self.arg(info)?;
                let n = self.checked_len(arg, 1)?;
                let mut items = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    items.push(self.value(depth + 1)?);
                }
                Ok(json::Value::Arr(items))
            }
            5 => {
                // Two bytes minimum per entry: a key head and a value byte.
                let arg = self.arg(info)?;
                let n = self.checked_len(arg, 2)?;
                let mut pairs = Vec::with_capacity(n.min(4096));
                for _ in 0..n {
                    let kb = self.byte()?;
                    if kb >> 5 != 3 {
                        return Err("map key is not text");
                    }
                    let key = self.text(kb & 0x1F)?;
                    pairs.push((key, self.value(depth + 1)?));
                }
                Ok(json::Value::Obj(pairs))
            }
            7 => match b {
                SIMPLE_FALSE => Ok(json::Value::Bool(false)),
                SIMPLE_TRUE => Ok(json::Value::Bool(true)),
                SIMPLE_NULL => Ok(json::Value::Null),
                FLOAT64 => {
                    let bits = u64::from_be_bytes(self.take(8)?.try_into().expect("8 bytes"));
                    Ok(json::Value::Float(f64::from_bits(bits)))
                }
                _ => Err("unsupported simple value"),
            },
            _ => Err("unsupported major type"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: json::Value) {
        let bytes = encode_to_vec(&v).unwrap();
        assert_eq!(decode_value(&bytes).unwrap(), v, "bytes {bytes:02x?}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(json::Value::Null);
        round_trip(json::Value::Bool(true));
        round_trip(json::Value::Bool(false));
        round_trip(json::Value::UInt(0));
        round_trip(json::Value::UInt(23));
        round_trip(json::Value::UInt(24));
        round_trip(json::Value::UInt(u64::MAX));
        round_trip(json::Value::Int(-1));
        round_trip(json::Value::Int(i64::MIN));
        round_trip(json::Value::Float(2.5));
        round_trip(json::Value::str("héllo — ünïcode"));
        round_trip(json::Value::str(""));
    }

    #[test]
    fn containers_round_trip() {
        round_trip(json::Value::Arr(vec![]));
        round_trip(json::Value::obj([
            ("k", json::Value::UInt(7)),
            ("nested", json::Value::Arr(vec![json::Value::Int(-3), json::Value::Null])),
        ]));
    }

    #[test]
    fn non_negative_int_canonicalizes_to_uint() {
        // Same canonical form the JSON text round trip produces.
        let bytes = encode_to_vec(&json::Value::Int(5)).unwrap();
        assert_eq!(decode_value(&bytes).unwrap(), json::Value::UInt(5));
    }

    #[test]
    fn encoding_is_canonical_shortest_form() {
        assert_eq!(encode_to_vec(&json::Value::UInt(5)).unwrap(), vec![0x05]);
        assert_eq!(encode_to_vec(&json::Value::UInt(200)).unwrap(), vec![0x18, 200]);
        assert_eq!(encode_to_vec(&json::Value::Int(-1)).unwrap(), vec![0x20]);
        assert_eq!(encode_to_vec(&json::Value::str("a")).unwrap(), vec![0x61, b'a']);
    }

    #[test]
    fn hostile_lengths_fail_before_allocation() {
        // A tiny buffer claiming a 4 GiB string.
        assert!(decode_value(&[0x7A, 0xFF, 0xFF, 0xFF, 0xFF]).is_err());
        // An array claiming u64::MAX elements.
        let mut b = vec![0x80 | 27];
        b.extend_from_slice(&u64::MAX.to_be_bytes());
        assert!(decode_value(&b).is_err());
    }

    #[test]
    fn deep_nesting_is_rejected_not_overflowed() {
        // 1000 nested single-element arrays: decoder must refuse, not
        // recurse to stack exhaustion.
        let mut b = vec![0x81u8; 1000];
        b.push(0x00);
        assert_eq!(decode_value(&b), Err("nesting too deep"));
        // And the encoder refuses to produce what the decoder rejects.
        let mut v = json::Value::UInt(0);
        for _ in 0..(MAX_DEPTH + 2) {
            v = json::Value::Arr(vec![v]);
        }
        assert!(encode_to_vec(&v).is_err());
    }

    #[test]
    fn truncations_and_garbage_are_errors_not_panics() {
        let v = json::Value::obj([("k", json::Value::Arr(vec![json::Value::UInt(300)]))]);
        let bytes = encode_to_vec(&v).unwrap();
        for cut in 0..bytes.len() {
            assert!(decode_value(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        for b in 0..=255u8 {
            let _ = decode_value(&[b]);
            let _ = decode_value(&[b, b, b]);
        }
    }
}
