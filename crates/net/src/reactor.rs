//! Epoll readiness reactor: the server's event-loop backend.
//!
//! A small, fixed set of event loops ([`crate::server::ServerConfig::event_loops`])
//! multiplexes every connection over nonblocking sockets — no thread per
//! connection, no external async runtime (the workspace is offline, so
//! the epoll/eventfd syscalls are bound by hand in [`sys`]). Loop 0 also
//! owns the listener and hands accepted sockets to the other loops
//! round-robin through a mailbox + eventfd wakeup.
//!
//! Each connection is a tiny state machine:
//!
//! * a **read buffer** accumulates partial frames; every readiness event
//!   drains the socket and decodes as many complete frames as arrived
//!   ([`protocol::decode_with`] is resumable by construction — `Ok(None)`
//!   means "need more bytes");
//! * a **bounded write queue** holds response bytes a slow peer has not
//!   accepted yet. A short write registers `EPOLLOUT` interest and the
//!   remainder goes out when the socket drains (partial-write
//!   resumption); queue overflow evicts the connection
//!   (`overflow_evictions`) rather than buffering without bound;
//! * a **progress stamp** updated by every productive read/write. A
//!   connection sitting mid-frame or mid-write past
//!   [`crate::server::ServerConfig::stall_timeout`] is evicted
//!   (`stall_evictions`) — this is what reclaims half-open peers
//!   (SIGSTOP'd, cable-pulled) that the TCP stack alone would keep
//!   forever. *Idle* connections — no partial frame, nothing queued —
//!   are never evicted, which is what makes 10k+ mostly-idle
//!   connections cheap (the C10K sweep in `sentinel-loadgen`).
//!
//! Command execution is shared with the thread-per-connection backend
//! ([`crate::commands`]): sync signals run inline on the loop, async
//! signals enter the pump queue, and the HTTP `/metrics` sniff works
//! byte-for-byte the same.

use std::collections::HashMap;
use std::io::{Read as _, Write as _};
use std::net::{TcpListener, TcpStream};
use std::os::raw::c_int;
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::commands::{self, Outcome, Session};
use crate::protocol::{self, Frame};
use crate::server::State;

/// Raw bindings for the five syscalls the reactor needs. Linux-only, like
/// epoll itself.
mod sys {
    use std::os::raw::{c_int, c_uint, c_void};

    pub const EPOLL_CLOEXEC: c_int = 0o2000000;
    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EFD_CLOEXEC: c_int = 0o2000000;
    pub const EFD_NONBLOCK: c_int = 0o4000;

    /// Mirror of the kernel's `struct epoll_event`. On x86-64 the kernel
    /// ABI packs it (no padding between `events` and `data`); elsewhere
    /// the natural C layout matches.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }
    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        pub fn close(fd: c_int) -> c_int;
        pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    }
}

/// Epoll token for a loop's eventfd waker.
const TOKEN_WAKER: u64 = u64::MAX;
/// Epoll token for the listener (loop 0 only).
const TOKEN_LISTENER: u64 = u64::MAX - 1;
/// Reads drained per readiness event before yielding to other
/// connections (level-triggered epoll re-reports leftover data).
const MAX_READS_PER_EVENT: usize = 32;

fn ep_ctl(epfd: RawFd, op: c_int, fd: RawFd, events: u32, data: u64) -> std::io::Result<()> {
    let mut ev = sys::EpollEvent { events, data };
    let rc = unsafe { sys::epoll_ctl(epfd, op, fd, &mut ev) };
    if rc < 0 {
        Err(std::io::Error::last_os_error())
    } else {
        Ok(())
    }
}

/// An eventfd another thread writes to pull an event loop out of
/// `epoll_wait` (new connections in the mailbox, or server shutdown).
struct Waker {
    fd: RawFd,
}

impl Waker {
    fn new() -> std::io::Result<Waker> {
        let fd = unsafe { sys::eventfd(0, sys::EFD_CLOEXEC | sys::EFD_NONBLOCK) };
        if fd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Waker { fd })
    }

    fn wake(&self) {
        let one: u64 = 1;
        let _ =
            unsafe { sys::write(self.fd, &one as *const u64 as *const std::os::raw::c_void, 8) };
    }

    fn drain(&self) {
        let mut buf: u64 = 0;
        loop {
            let n =
                unsafe { sys::read(self.fd, &mut buf as *mut u64 as *mut std::os::raw::c_void, 8) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.fd);
        }
    }
}

/// The cross-thread face of one event loop: where loop 0 parks accepted
/// sockets for it, plus the waker that tells it to look.
struct LoopShared {
    inbox: Mutex<Vec<TcpStream>>,
    waker: Waker,
}

/// The running reactor backend: its event-loop threads and their wakers.
pub(crate) struct Reactor {
    loops: Vec<LoopHandle>,
}

struct LoopHandle {
    thread: JoinHandle<()>,
    shared: Arc<LoopShared>,
}

impl Reactor {
    /// Spawns `cfg.event_loops` loops (min 1); loop 0 adopts `listener`.
    pub(crate) fn start(listener: TcpListener, state: Arc<State>) -> std::io::Result<Reactor> {
        let n = state.cfg.event_loops.max(1);
        listener.set_nonblocking(true)?;
        let mut shareds = Vec::with_capacity(n);
        for _ in 0..n {
            shareds
                .push(Arc::new(LoopShared { inbox: Mutex::new(Vec::new()), waker: Waker::new()? }));
        }
        let shareds = Arc::new(shareds);
        state.metrics.event_loops.set(n as u64);
        let mut listener = Some(listener);
        let mut loops = Vec::with_capacity(n);
        for index in 0..n {
            let l = if index == 0 { listener.take() } else { None };
            let el = EventLoop::new(index, l, state.clone(), shareds.clone())?;
            let thread = std::thread::Builder::new()
                .name(format!("sentinel-net-loop{index}"))
                .spawn(move || el.run())
                .expect("spawn event loop");
            loops.push(LoopHandle { thread, shared: shareds[index].clone() });
        }
        Ok(Reactor { loops })
    }

    /// Wakes every loop (they observe the server's shutdown flag, flush
    /// what they can, and exit) and joins them.
    pub(crate) fn shutdown(self) {
        for h in &self.loops {
            h.shared.waker.wake();
        }
        for h in self.loops {
            let _ = h.thread.join();
        }
    }
}

/// Eviction verdict: the connection must be closed now. The site that
/// decides also records *why* (stall/overflow metrics); `Evict` itself
/// just unwinds to the loop's bookkeeping.
struct Evict;

/// Per-connection state machine.
struct Conn {
    stream: TcpStream,
    token: u64,
    session: Option<Session>,
    /// Accumulated inbound bytes; a prefix of zero or more complete
    /// frames plus at most one partial frame (or an HTTP header block).
    rbuf: Vec<u8>,
    /// Outbound bytes not yet accepted by the socket; `woff` is how far
    /// the kernel has taken them.
    wbuf: Vec<u8>,
    woff: usize,
    /// Whether `EPOLLOUT` interest is currently registered.
    want_write: bool,
    /// Close once `wbuf` fully drains (HTTP responses, fatal errors).
    close_after_flush: bool,
    /// Last productive read or write; the stall scan compares this.
    last_progress: Instant,
}

impl Conn {
    fn new(stream: TcpStream, token: u64) -> Conn {
        Conn {
            stream,
            token,
            session: None,
            rbuf: Vec::new(),
            wbuf: Vec::new(),
            woff: 0,
            want_write: false,
            close_after_flush: false,
            last_progress: Instant::now(),
        }
    }

    fn pending_out(&self) -> usize {
        self.wbuf.len() - self.woff
    }

    /// Drains the socket and executes every complete frame that arrived.
    fn readable(
        &mut self,
        state: &Arc<State>,
        epfd: RawFd,
        scratch: &mut [u8],
    ) -> Result<(), Evict> {
        for _ in 0..MAX_READS_PER_EVENT {
            match (&self.stream).read(scratch) {
                Ok(0) => return Err(Evict), // peer hung up
                Ok(n) => {
                    state.metrics.bytes_in.add(n as u64);
                    self.rbuf.extend_from_slice(&scratch[..n]);
                    self.last_progress = Instant::now();
                    // Decode between reads so a pipelining blaster can't
                    // balloon `rbuf`: frames are executed (and their
                    // bytes freed) as fast as they arrive.
                    self.process(state, epfd)?;
                    if n < scratch.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(Evict),
            }
        }
        Ok(())
    }

    /// Decodes and executes everything complete in `rbuf` (or serves one
    /// sniffed HTTP request).
    fn process(&mut self, state: &Arc<State>, epfd: RawFd) -> Result<(), Evict> {
        if commands::is_http_prefix(&self.rbuf) {
            if let Some(end) = self.rbuf.windows(4).position(|w| w == b"\r\n\r\n") {
                let resp = commands::http_response(state, &self.rbuf[..end]);
                self.rbuf.clear();
                self.close_after_flush = true;
                return self.enqueue_bytes(state, epfd, &resp);
            }
            if self.rbuf.len() > 16 * 1024 {
                return Err(Evict); // runaway header block
            }
            return Ok(());
        }
        loop {
            if self.close_after_flush {
                // A terminal reply is already queued; ignore the rest.
                return Ok(());
            }
            match protocol::decode_with(&self.rbuf, state.cfg.max_codec_version) {
                Ok(Some((frame, wire, used))) => {
                    self.rbuf.drain(..used);
                    state.metrics.frames_in.inc();
                    match commands::execute(state, &mut self.session, frame) {
                        Outcome::Reply(f) => self.enqueue_frame(state, epfd, &f, wire)?,
                        Outcome::ReplyClose(f) => {
                            self.enqueue_frame(state, epfd, &f, wire)?;
                            self.close_after_flush = true;
                        }
                        Outcome::ReplyShutdown(f) => {
                            // Flush the acknowledgment *before* signaling
                            // shutdown so the requester's reply can't be
                            // cut off by the teardown it asked for.
                            self.enqueue_frame(state, epfd, &f, wire)?;
                            let _ = state.shutdown_tx.send(());
                        }
                    }
                }
                Ok(None) => return Ok(()),
                Err(e) => {
                    // Corrupt stream: report once, then hang up — resync
                    // inside a length-prefixed stream is impossible.
                    state.metrics.decode_errors.inc();
                    let f = commands::err_frame(0, "decode", &e.to_string());
                    self.close_after_flush = true;
                    return self.enqueue_frame(state, epfd, &f, protocol::VERSION);
                }
            }
        }
    }

    /// Encodes a response in the request's wire version and queues it.
    /// An oversized body degrades to an error frame, like the threaded
    /// backend's `send`.
    fn enqueue_frame(
        &mut self,
        state: &Arc<State>,
        epfd: RawFd,
        frame: &Frame,
        wire: u8,
    ) -> Result<(), Evict> {
        let bytes = match protocol::encode_with(frame, wire) {
            Ok(b) => b,
            Err(_) => {
                let fb = commands::err_frame(
                    frame.request_id,
                    "oversized",
                    "response exceeds frame limit",
                );
                protocol::encode_with(&fb, wire).expect("error frame fits in a frame")
            }
        };
        state.metrics.frames_out.inc();
        self.enqueue_bytes(state, epfd, &bytes)
    }

    /// Appends to the bounded write queue and flushes as much as the
    /// socket will take.
    fn enqueue_bytes(
        &mut self,
        state: &Arc<State>,
        epfd: RawFd,
        bytes: &[u8],
    ) -> Result<(), Evict> {
        let pending = self.pending_out() + bytes.len();
        // The cap always admits one maximum-size frame so a single big
        // response (e.g. a replication snapshot) can never evict on its
        // own — the queue bounds *accumulation* against slow readers.
        let cap =
            state.cfg.max_write_queue.max(protocol::MAX_PAYLOAD + protocol::HEADER_LEN + 1024);
        if pending > cap {
            state.metrics.overflow_evictions.inc();
            return Err(Evict);
        }
        if self.woff == self.wbuf.len() {
            self.wbuf.clear();
            self.woff = 0;
        } else if self.woff > 64 * 1024 {
            self.wbuf.drain(..self.woff);
            self.woff = 0;
        }
        self.wbuf.extend_from_slice(bytes);
        state.metrics.write_queue_hwm.set(pending as u64);
        self.flush(state, epfd)
    }

    /// Writes queued bytes until done or the socket pushes back, managing
    /// `EPOLLOUT` interest either way.
    fn flush(&mut self, state: &Arc<State>, epfd: RawFd) -> Result<(), Evict> {
        while self.woff < self.wbuf.len() {
            match (&self.stream).write(&self.wbuf[self.woff..]) {
                Ok(0) => return Err(Evict),
                Ok(n) => {
                    self.woff += n;
                    state.metrics.bytes_out.add(n as u64);
                    self.last_progress = Instant::now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    state.metrics.partial_writes.inc();
                    if !self.want_write {
                        self.want_write = true;
                        let _ = ep_ctl(
                            epfd,
                            sys::EPOLL_CTL_MOD,
                            self.stream.as_raw_fd(),
                            sys::EPOLLIN | sys::EPOLLOUT,
                            self.token,
                        );
                    }
                    return Ok(());
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return Err(Evict),
            }
        }
        self.wbuf.clear();
        self.woff = 0;
        if self.want_write {
            self.want_write = false;
            let _ =
                ep_ctl(epfd, sys::EPOLL_CTL_MOD, self.stream.as_raw_fd(), sys::EPOLLIN, self.token);
        }
        if self.close_after_flush {
            return Err(Evict); // graceful close: everything was delivered
        }
        Ok(())
    }
}

/// One event loop: an epoll instance, its connections, and (for loop 0)
/// the listener.
struct EventLoop {
    index: usize,
    epfd: RawFd,
    listener: Option<TcpListener>,
    state: Arc<State>,
    shareds: Arc<Vec<Arc<LoopShared>>>,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Round-robin cursor for handing accepted sockets across loops.
    rr: usize,
}

impl EventLoop {
    fn new(
        index: usize,
        listener: Option<TcpListener>,
        state: Arc<State>,
        shareds: Arc<Vec<Arc<LoopShared>>>,
    ) -> std::io::Result<EventLoop> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(std::io::Error::last_os_error());
        }
        ep_ctl(epfd, sys::EPOLL_CTL_ADD, shareds[index].waker.fd, sys::EPOLLIN, TOKEN_WAKER)?;
        if let Some(l) = &listener {
            ep_ctl(epfd, sys::EPOLL_CTL_ADD, l.as_raw_fd(), sys::EPOLLIN, TOKEN_LISTENER)?;
        }
        Ok(EventLoop {
            index,
            epfd,
            listener,
            state,
            shareds,
            conns: HashMap::new(),
            next_token: 0,
            rr: 0,
        })
    }

    fn run(mut self) {
        let mut events = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let mut scratch = vec![0u8; 64 * 1024];
        let stall = self.state.cfg.stall_timeout;
        // Wait granularity: fine enough to enforce the stall timeout,
        // coarse enough that an idle loop barely wakes.
        let tick_ms =
            if stall.is_zero() { 500 } else { (stall.as_millis() / 4).clamp(10, 500) as c_int };
        let mut last_scan = Instant::now();
        loop {
            let n = unsafe { sys::epoll_wait(self.epfd, events.as_mut_ptr(), 256, tick_ms) };
            self.state.metrics.epoll_wakeups.inc();
            if self.state.shutdown.load(Ordering::SeqCst) {
                break;
            }
            if n > 0 {
                for ev in events.iter().take(n as usize) {
                    let ev = *ev; // copy out of the packed array
                    match ev.data {
                        TOKEN_WAKER => {
                            self.shareds[self.index].waker.drain();
                            self.adopt_inbox();
                        }
                        TOKEN_LISTENER => self.accept_ready(),
                        token => self.conn_ready(token, ev.events, &mut scratch),
                    }
                }
            }
            if !stall.is_zero() && last_scan.elapsed().as_millis() >= tick_ms as u128 {
                last_scan = Instant::now();
                self.scan_stalls(stall);
            }
        }
        self.drain_on_shutdown();
        unsafe {
            sys::close(self.epfd);
        }
    }

    /// Registers connections other loops handed us.
    fn adopt_inbox(&mut self) {
        let streams: Vec<TcpStream> = {
            let mut inbox = self.shareds[self.index].inbox.lock();
            inbox.drain(..).collect()
        };
        for stream in streams {
            self.register_conn(stream);
        }
    }

    fn register_conn(&mut self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        if stream.set_nonblocking(true).is_err() {
            self.conn_closed();
            return;
        }
        let token = self.next_token;
        self.next_token += 1;
        if ep_ctl(self.epfd, sys::EPOLL_CTL_ADD, stream.as_raw_fd(), sys::EPOLLIN, token).is_err() {
            self.conn_closed();
            return;
        }
        self.conns.insert(token, Conn::new(stream, token));
    }

    /// Accepts every pending connection; applies the connection cap and
    /// deals sockets across loops round-robin.
    fn accept_ready(&mut self) {
        let mut accepted = Vec::new();
        if let Some(l) = &self.listener {
            loop {
                match l.accept() {
                    Ok((stream, _)) => accepted.push(stream),
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }
        for stream in accepted {
            if self.state.shutdown.load(Ordering::SeqCst) {
                continue; // drop: closing
            }
            let active = self.state.active_conns.load(Ordering::SeqCst);
            if active >= self.state.cfg.max_connections as u64 {
                self.state.metrics.connections_refused.inc();
                refuse(stream);
                continue;
            }
            self.state.metrics.connections_opened.inc();
            let n = self.state.active_conns.fetch_add(1, Ordering::SeqCst) + 1;
            self.state.metrics.connections_active.set(n);
            let target = self.rr % self.shareds.len();
            self.rr += 1;
            if target == self.index {
                self.register_conn(stream);
            } else {
                self.shareds[target].inbox.lock().push(stream);
                self.shareds[target].waker.wake();
            }
        }
    }

    fn conn_ready(&mut self, token: u64, bits: u32, scratch: &mut [u8]) {
        let state = self.state.clone();
        let epfd = self.epfd;
        let Some(conn) = self.conns.get_mut(&token) else { return };
        let mut verdict = Ok(());
        if bits & (sys::EPOLLIN | sys::EPOLLERR | sys::EPOLLHUP) != 0 {
            // Errors and hangups surface through read() (EOF or the
            // pending socket error), which also lets any final bytes in.
            verdict = conn.readable(&state, epfd, scratch);
        }
        if verdict.is_ok() && bits & sys::EPOLLOUT != 0 {
            verdict = conn.flush(&state, epfd);
        }
        if verdict.is_err() {
            self.evict(token);
        }
    }

    /// Evicts connections that sit mid-frame or mid-write without
    /// progress past the stall timeout. Fully idle connections (empty
    /// buffers) are exempt — mass idle is the C10K steady state, not a
    /// fault.
    fn scan_stalls(&mut self, stall: Duration) {
        let now = Instant::now();
        let stale: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                (!c.rbuf.is_empty() || c.pending_out() > 0)
                    && now.duration_since(c.last_progress) > stall
            })
            .map(|(t, _)| *t)
            .collect();
        for token in stale {
            self.state.metrics.stall_evictions.inc();
            self.evict(token);
        }
    }

    fn evict(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = ep_ctl(self.epfd, sys::EPOLL_CTL_DEL, conn.stream.as_raw_fd(), 0, 0);
            self.conn_closed();
        }
    }

    fn conn_closed(&self) {
        let n = self.state.active_conns.fetch_sub(1, Ordering::SeqCst) - 1;
        self.state.metrics.connections_active.set(n);
    }

    /// Best-effort flush of every queued response before the loop exits.
    fn drain_on_shutdown(&mut self) {
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        let state = self.state.clone();
        let epfd = self.epfd;
        for token in tokens {
            if let Some(conn) = self.conns.get_mut(&token) {
                let _ = conn.flush(&state, epfd);
            }
            self.evict(token);
        }
    }
}

/// Tells an over-cap connection why it is being turned away (bounded
/// blocking write so a wedged peer can't hold up the acceptor).
fn refuse(stream: TcpStream) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = protocol::write_frame(
        &mut &stream,
        &commands::err_frame(0, "connection-limit", "server connection limit reached"),
    );
}
