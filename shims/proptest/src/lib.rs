//! Offline shim for the `proptest` crate.
//!
//! Implements the strategy combinators and macros Sentinel's property tests
//! use: `proptest!`, `prop_oneof!`, `prop_assert!`/`prop_assert_eq!`,
//! `Strategy::{prop_map, prop_recursive}`, regex-literal string strategies,
//! integer-range and tuple strategies, `prop::collection::vec`,
//! `prop::sample::{select, Index}`, `any::<T>()`, and `Just`.
//!
//! Differences from real proptest: no shrinking (failures report the raw
//! generated inputs), and generation is seeded deterministically per test
//! name so failures reproduce across runs.

use std::fmt::Debug;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic generator used to drive strategies (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seeded(seed: u64) -> Self {
        TestRng { state: seed ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Seed derived from a test's name, so each test has a stable stream.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seeded(h)
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    pub fn chance(&mut self, num: u64, denom: u64) -> bool {
        self.below(denom) < num
    }
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::*;

    /// A generator of values of one type.
    pub trait Strategy: Sized {
        type Value: Debug + 'static;

        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Send + Sync + 'static,
        {
            BoxedStrategy { gen: Arc::new(move |rng| self.gen_value(rng)) }
        }

        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Send + Sync + 'static,
            O: Debug + 'static,
            F: Fn(Self::Value) -> O + Send + Sync + 'static,
        {
            BoxedStrategy { gen: Arc::new(move |rng| f(self.gen_value(rng))) }
        }

        /// Bounded-depth recursive strategy: each of `depth` layers either
        /// recurses (via `recurse`) or falls back to the base strategy.
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Send + Sync + 'static,
            R: Strategy<Value = Self::Value> + Send + Sync + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                let base = leaf.clone();
                strat = BoxedStrategy {
                    gen: Arc::new(move |rng: &mut TestRng| {
                        if rng.chance(2, 3) {
                            deeper.gen_value(rng)
                        } else {
                            base.gen_value(rng)
                        }
                    }),
                };
            }
            strat
        }
    }

    /// Type-erased, cheaply-cloneable strategy.
    pub struct BoxedStrategy<T> {
        gen: Arc<dyn Fn(&mut TestRng) -> T + Send + Sync>,
    }

    impl<T: Debug + 'static> BoxedStrategy<T> {
        pub(crate) fn from_fn(
            f: impl Fn(&mut TestRng) -> T + Send + Sync + 'static,
        ) -> BoxedStrategy<T> {
            BoxedStrategy { gen: Arc::new(f) }
        }
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy { gen: self.gen.clone() }
        }
    }

    impl<T> std::fmt::Debug for BoxedStrategy<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("BoxedStrategy")
        }
    }

    impl<T: Debug + 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.gen)(rng)
        }
    }

    /// Uniform choice among same-valued strategies (`prop_oneof!` backend).
    pub fn one_of<T: Debug + 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        BoxedStrategy {
            gen: Arc::new(move |rng: &mut TestRng| {
                let i = rng.below(arms.len() as u64) as usize;
                arms[i].gen_value(rng)
            }),
        }
    }

    /// Constant strategy.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug + 'static> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    // Integer range strategies.
    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for std::ops::Range<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
            impl Strategy for std::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn gen_value(&self, rng: &mut TestRng) -> $ty {
                    let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo + 1) as u64;
                    (lo + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Tuple strategies.
    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.gen_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// String strategies from regex literals (subset: char classes,
    /// literals, `{n}` / `{m,n}` quantifiers).
    impl Strategy for &'static str {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            gen_from_regex(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;
        fn gen_value(&self, rng: &mut TestRng) -> String {
            gen_from_regex(self, rng)
        }
    }

    fn gen_from_regex(pattern: &str, rng: &mut TestRng) -> String {
        let chars: Vec<char> = pattern.chars().collect();
        let mut out = String::new();
        let mut i = 0;
        while i < chars.len() {
            // Atom: char class or literal.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed char class in `{pattern}`"));
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("valid char range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            } else if chars[i] == '\\' && i + 1 < chars.len() {
                i += 2;
                vec![chars[i - 1]]
            } else {
                i += 1;
                vec![chars[i - 1]]
            };
            // Quantifier: {n} or {m,n}; default exactly once.
            let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .map(|p| i + p)
                    .unwrap_or_else(|| panic!("unclosed quantifier in `{pattern}`"));
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse::<usize>().expect("quantifier lower bound"),
                        n.trim().parse::<usize>().expect("quantifier upper bound"),
                    ),
                    None => {
                        let n = body.trim().parse::<usize>().expect("quantifier count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = lo + rng.below((hi - lo + 1) as u64) as usize;
            for _ in 0..count {
                out.push(class[rng.below(class.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

pub mod arbitrary {
    use super::strategy::BoxedStrategy;
    use super::*;

    pub trait Arbitrary: Debug + Sized + 'static {
        fn arbitrary_with(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary_with(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for super::sample::Index {
        fn arbitrary_with(rng: &mut TestRng) -> Self {
            super::sample::Index(rng.next_u64() as usize)
        }
    }

    pub fn any<T: Arbitrary>() -> BoxedStrategy<T> {
        BoxedStrategy::from_fn(T::arbitrary_with)
    }
}

// ---------------------------------------------------------------------------
// prop::collection / prop::sample
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::{BoxedStrategy, Strategy};
    use super::*;

    /// `Vec` strategy with length drawn from `len`.
    pub fn vec<S>(element: S, len: std::ops::Range<usize>) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + Send + Sync + 'static,
    {
        assert!(len.start < len.end, "empty length range");
        let (lo, hi) = (len.start, len.end);
        let element = Arc::new(element);
        BoxedStrategy::from_fn(move |rng| {
            let n = lo + rng.below((hi - lo) as u64) as usize;
            (0..n).map(|_| element.gen_value(rng)).collect()
        })
    }
}

pub mod sample {
    use super::strategy::BoxedStrategy;
    use super::*;

    /// Opaque index resolvable against any collection length.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(pub(crate) usize);

    impl Index {
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.0 % len
        }
    }

    /// Uniform choice from a fixed slice of values.
    pub fn select<T: Clone + Debug + Send + Sync + 'static>(options: &[T]) -> BoxedStrategy<T> {
        assert!(!options.is_empty(), "select from empty slice");
        let options: Vec<T> = options.to_vec();
        BoxedStrategy::from_fn(move |rng| options[rng.below(options.len() as u64) as usize].clone())
    }
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

pub mod test_runner {
    /// Error raised by `prop_assert!` family; aborts the current case.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        message: String,
    }

    impl TestCaseError {
        pub fn fail(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
        // Reject is accepted for API compatibility; the shim treats it as failure.
        pub fn reject(message: impl Into<String>) -> Self {
            TestCaseError { message: message.into() }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.message)
        }
    }

    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is meaningful in the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_shrink_iters: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64, max_shrink_iters: 0 }
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                left,
                right
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left
            )));
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg); $($rest)*);
    };
    (@run ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(stringify!($name));
                for case in 0..cfg.cases {
                    $(let $arg = $crate::strategy::Strategy::gen_value(&$strat, &mut rng);)+
                    #[allow(clippy::redundant_closure_call)]
                    let inputs = (|| -> ::std::string::String {
                        let mut s = ::std::string::String::new();
                        $(
                            s.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));
                        )+
                        s
                    })();
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg = $arg;)+
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest `{}` failed at case {}/{}:\n{}\ninputs:\n{}",
                            stringify!($name), case + 1, cfg.cases, e, inputs
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::` namespace as re-exported by the real prelude.
    pub mod prop {
        pub use crate::{collection, sample, strategy};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3u8..9, y in 10u64..1000) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((10..1000).contains(&y));
        }

        #[test]
        fn regex_strings_match_shape(s in "[a-z][a-z0-9_]{0,6}") {
            prop_assert!(!s.is_empty() && s.len() <= 7);
            let first = s.chars().next().unwrap();
            prop_assert!(first.is_ascii_lowercase());
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }

        #[test]
        fn vec_lengths_respected(v in prop::collection::vec(0u8..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_select(x in prop_oneof![0u8..1, 5u8..6], c in prop::sample::select(&[10u8, 20, 30][..])) {
            prop_assert!(x == 0 || x == 5);
            prop_assert!(c == 10 || c == 20 || c == 30);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]
        #[test]
        fn config_cases_respected(_x in 0u8..2) {
            // Runs exactly 3 cases; nothing to assert beyond not panicking.
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        use crate::strategy::Strategy;
        let leaf = (0u32..10).prop_map(|n| n.to_string());
        let strat = leaf.prop_recursive(4, 32, 4, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| format!("({a}+{b})"))
        });
        let mut rng = crate::TestRng::seeded(1);
        for _ in 0..50 {
            let s = strat.gen_value(&mut rng);
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn index_resolves() {
        use crate::arbitrary::Arbitrary;
        let mut rng = crate::TestRng::seeded(2);
        for _ in 0..100 {
            let idx = crate::sample::Index::arbitrary_with(&mut rng);
            assert!(idx.index(7) < 7);
        }
    }
}
