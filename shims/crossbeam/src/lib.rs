//! Offline shim for the `crossbeam` crate.
//!
//! Implements the `crossbeam::channel` MPMC channel surface Sentinel uses
//! (`bounded`, `unbounded`, cloneable `Sender`/`Receiver`, blocking and
//! timed receives, disconnect-on-last-drop semantics) on top of
//! `std::sync::{Mutex, Condvar}`.

pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct Inner<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        inner: Mutex<Inner<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TrySendError<T> {
        Full(T),
        Disconnected(T),
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        Timeout,
        Disconnected,
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            inner: Mutex::new(Inner { queue: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: shared.clone() }, Receiver { shared })
    }

    /// Unbounded FIFO channel; sends never block.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    /// Bounded FIFO channel; sends block while full. `cap` must be > 0
    /// (the shim does not implement rendezvous channels).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        assert!(cap > 0, "shim bounded() requires capacity > 0 (no rendezvous support)");
        make(Some(cap))
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if inner.receivers == 0 {
                    return Err(SendError(value));
                }
                match inner.cap {
                    Some(cap) if inner.queue.len() >= cap => {
                        inner = self.shared.not_full.wait(inner).unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Non-blocking send: errors with `Full` when a bounded channel is
        /// at capacity, `Disconnected` when every receiver is gone.
        pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.receivers == 0 {
                return Err(TrySendError::Disconnected(value));
            }
            if let Some(cap) = inner.cap {
                if inner.queue.len() >= cap {
                    return Err(TrySendError::Full(value));
                }
            }
            inner.queue.push_back(value);
            drop(inner);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvError);
                }
                inner = self.shared.not_empty.wait(inner).unwrap_or_else(|e| e.into_inner());
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = inner.queue.pop_front() {
                drop(inner);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if inner.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = inner.queue.pop_front() {
                    drop(inner);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if inner.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _res) = self
                    .shared
                    .not_empty
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|e| e.into_inner());
                inner = guard;
            }
        }

        pub fn len(&self) -> usize {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).queue.len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter { rx: self }
        }

        pub fn try_iter(&self) -> TryIter<'_, T> {
            TryIter { rx: self }
        }
    }

    pub struct Iter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.recv().ok()
        }
    }

    pub struct TryIter<'a, T> {
        rx: &'a Receiver<T>,
    }

    impl<T> Iterator for TryIter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.rx.try_recv().ok()
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).senders += 1;
            Sender { shared: self.shared.clone() }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.inner.lock().unwrap_or_else(|e| e.into_inner()).receivers += 1;
            Receiver { shared: self.shared.clone() }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.senders -= 1;
            let last = inner.senders == 0;
            drop(inner);
            if last {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut inner = self.shared.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.receivers -= 1;
            let last = inner.receivers == 0;
            drop(inner);
            if last {
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_roundtrip() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn disconnect_on_sender_drop() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(7).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(7));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert_eq!(tx.send(3), Err(SendError(3)));
        }

        #[test]
        fn recv_timeout_times_out() {
            let (_tx, rx) = unbounded::<u32>();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Err(RecvTimeoutError::Timeout));
        }

        #[test]
        fn bounded_blocks_until_drained() {
            let (tx, rx) = bounded::<u32>(1);
            tx.send(1).unwrap();
            let h = std::thread::spawn(move || tx.send(2));
            std::thread::sleep(Duration::from_millis(20));
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            h.join().unwrap().unwrap();
        }

        #[test]
        fn try_send_reports_full_and_disconnected() {
            let (tx, rx) = bounded::<u32>(1);
            tx.try_send(1).unwrap();
            assert_eq!(tx.try_send(2), Err(TrySendError::Full(2)));
            assert_eq!(rx.recv(), Ok(1));
            tx.try_send(3).unwrap();
            drop(rx);
            assert_eq!(tx.try_send(4), Err(TrySendError::Disconnected(4)));
        }

        #[test]
        fn mpmc_clones_work() {
            let (tx, rx) = unbounded::<u32>();
            let tx2 = tx.clone();
            let rx2 = rx.clone();
            tx2.send(1).unwrap();
            tx.send(2).unwrap();
            let a = rx2.recv().unwrap();
            let b = rx.recv().unwrap();
            assert_eq!(a + b, 3);
        }
    }
}
