//! Offline shim for the `criterion` crate.
//!
//! Keeps the bench sources compiling and runnable offline: `b.iter(..)`
//! times the closure over a fixed number of iterations and prints
//! `name/param: mean ns/iter`. No statistics, no HTML reports — just
//! enough to eyeball regressions when the real criterion is unavailable.

use std::fmt::Display;
use std::time::Instant;

/// Benchmark identifier: `group/function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver.
pub struct Bencher {
    sample_size: usize,
    label: String,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup.
        for _ in 0..self.sample_size.min(20) {
            std::hint::black_box(f());
        }
        let iters = self.sample_size.max(1) * 10;
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(f());
        }
        let ns = start.elapsed().as_nanos() as f64 / iters as f64;
        println!("{:<48} {:>12.1} ns/iter", self.label, ns);
    }

    pub fn iter_batched<I, O, S: FnMut() -> I, F: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: F,
        _size: BatchSize,
    ) {
        let iters = self.sample_size.max(1) * 10;
        let mut total = std::time::Duration::ZERO;
        for _ in 0..iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        let ns = total.as_nanos() as f64 / iters as f64;
        println!("{:<48} {:>12.1} ns/iter", self.label, ns);
    }
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b =
            Bencher { sample_size: self.sample_size, label: format!("{}/{}", self.name, id) };
        f(&mut b);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let mut b =
            Bencher { sample_size: self.sample_size, label: format!("{}/{}", self.name, id) };
        f(&mut b, input);
    }

    pub fn finish(self) {}
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level bench context.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup { name: name.into(), sample_size, _parent: self }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let mut b = Bencher { sample_size: self.sample_size, label: id.to_string() };
        f(&mut b);
    }
}

pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
