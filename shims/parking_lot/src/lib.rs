//! Offline shim for the `parking_lot` crate.
//!
//! The build container has no network access to crates.io, so this crate
//! re-implements the (small) slice of the parking_lot API that Sentinel
//! uses on top of `std::sync`. Semantics match parking_lot where it
//! matters to callers: `lock()`/`read()`/`write()` return guards directly
//! (no `Result`), poisoning is swallowed (a panicked holder does not make
//! the lock unusable), and `Condvar` works on our `MutexGuard`.

use std::fmt;
use std::sync::TryLockError;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Mutex
// ---------------------------------------------------------------------------

pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so Condvar::wait can temporarily take the std guard out.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MutexGuard { inner: Some(g) }
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard { inner: Some(e.into_inner()) }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

// ---------------------------------------------------------------------------
// RwLock
// ---------------------------------------------------------------------------

pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let g = self.inner.read().unwrap_or_else(|e| e.into_inner());
        RwLockReadGuard { inner: g }
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let g = self.inner.write().unwrap_or_else(|e| e.into_inner());
        RwLockWriteGuard { inner: g }
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(RwLockReadGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockReadGuard { inner: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(RwLockWriteGuard { inner: g }),
            Err(TryLockError::Poisoned(e)) => Some(RwLockWriteGuard { inner: e.into_inner() }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            None => f.write_str("RwLock { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

// ---------------------------------------------------------------------------
// Condvar
// ---------------------------------------------------------------------------

pub struct Condvar {
    inner: std::sync::Condvar,
}

#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

impl Condvar {
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard present");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    pub fn wait_until<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        deadline: Instant,
    ) -> WaitTimeoutResult {
        let timeout = deadline.saturating_duration_since(Instant::now());
        self.wait_for(guard, timeout)
    }

    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard present");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, r)) => (g, r),
            Err(e) => {
                let (g, r) = e.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult(res.timed_out())
    }

    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(5);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 10);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let timed_out =
                cv.wait_until(&mut done, Instant::now() + Duration::from_secs(5)).timed_out();
            assert!(!timed_out, "condvar wait timed out");
        }
        h.join().unwrap();
    }

    #[test]
    fn lock_survives_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // parking_lot has no poisoning; the shim must swallow std's.
        assert_eq!(*m.lock(), 0);
    }
}
