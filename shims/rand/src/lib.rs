//! Offline shim for the `rand` crate.
//!
//! Provides a small, fast xorshift64* generator behind a rand-0.8-shaped
//! API (`thread_rng`, `Rng::gen_range`, `SeedableRng`). Not cryptographic;
//! fine for workload generation and tests.

use std::cell::RefCell;
use std::ops::Range;

/// Subset of rand's `Rng` trait.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

/// Types uniformly sampleable from a half-open range.
pub trait SampleUniform: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = range.end.wrapping_sub(range.start) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($ty:ty => $uty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "empty range");
                let span = (range.end as $uty).wrapping_sub(range.start as $uty) as u64;
                range.start.wrapping_add((rng.next_u64() % span) as $ty)
            }
        }
    )*};
}

impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// Types generable by `Rng::gen()`.
pub trait Standard: Sized {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($ty:ty),*) => {$(
        impl Standard for $ty {
            fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $ty
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// xorshift64* PRNG.
#[derive(Debug, Clone)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    pub fn new(seed: u64) -> Self {
        StdRng { state: seed | 1 }
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Subset of rand's `SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng::new(seed ^ 0x9E37_79B9_7F4A_7C15)
    }
}

pub mod rngs {
    pub use super::StdRng;

    /// Handle to the thread-local generator.
    pub struct ThreadRng;

    impl super::Rng for ThreadRng {
        fn next_u64(&mut self) -> u64 {
            super::THREAD_RNG.with(|r| r.borrow_mut().next_u64())
        }
    }
}

thread_local! {
    static THREAD_RNG: RefCell<StdRng> = RefCell::new(StdRng::new({
        // Derive a per-thread seed without any external entropy source.
        let addr = &THREAD_RNG as *const _ as u64;
        addr ^ 0xA076_1D64_78BD_642F
    }));
}

/// Thread-local generator, rand-compatible entry point.
pub fn thread_rng() -> rngs::ThreadRng {
    rngs::ThreadRng
}

pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::{thread_rng, Rng, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn thread_rng_works() {
        let mut r = thread_rng();
        let x = r.gen_range(0usize..10);
        assert!(x < 10);
    }
}
