//! Offline shim for the `serde` crate.
//!
//! Sentinel only uses serde for `#[derive(serde::Serialize, serde::Deserialize)]`
//! annotations; nothing in the tree serializes through serde at runtime (the
//! WAL and event log use hand-rolled codecs, and the observability layer has
//! its own JSON writer). This proc-macro crate accepts the derive positions
//! and expands to nothing, so the annotations stay source-compatible with the
//! real crate while building fully offline.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
