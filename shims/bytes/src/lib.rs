//! Offline shim for the `bytes` crate.
//!
//! `Bytes` is a cheaply-cloneable immutable byte buffer (`Arc<[u8]>` plus a
//! view range); `BytesMut` is a growable builder that freezes into `Bytes`.
//! The `Buf`/`BufMut` traits carry the big-endian and little-endian integer
//! accessors Sentinel's WAL and event-log codecs use.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};
use std::sync::Arc;

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

/// Immutable, cheaply-cloneable view into a reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    pub fn new() -> Self {
        Bytes { data: Arc::from(&[][..]), start: 0, end: 0 }
    }

    pub fn from_static(slice: &'static [u8]) -> Self {
        Bytes::copy_from_slice(slice)
    }

    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes { data: Arc::from(slice), start: 0, end: slice.len() }
    }

    pub fn len(&self) -> usize {
        self.end - self.start
    }

    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_to out of bounds");
        let head = Bytes { data: self.data.clone(), start: self.start, end: self.start + at };
        self.start += at;
        head
    }

    /// Splits off and returns everything from `at` on; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> Bytes {
        assert!(at <= self.len(), "split_off out of bounds");
        let tail = Bytes { data: self.data.clone(), start: self.start + at, end: self.end };
        self.end = self.start + at;
        tail
    }

    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes { data: self.data.clone(), start: self.start + lo, end: self.start + hi }
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), start: 0, end: len }
    }
}

impl From<&'static [u8]> for Bytes {
    fn from(s: &'static [u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes::from(s.into_bytes())
    }
}

impl From<&'static str> for Bytes {
    fn from(s: &'static str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

impl Hash for Bytes {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialOrd for Bytes {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Bytes {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl IntoIterator for Bytes {
    type Item = u8;
    type IntoIter = std::vec::IntoIter<u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.to_vec().into_iter()
    }
}

impl<'a> IntoIterator for &'a Bytes {
    type Item = &'a u8;
    type IntoIter = std::slice::Iter<'a, u8>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

// ---------------------------------------------------------------------------
// BytesMut
// ---------------------------------------------------------------------------

/// Growable byte buffer; freeze it into an immutable `Bytes`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }

    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub fn clear(&mut self) {
        self.buf.clear();
    }

    pub fn reserve(&mut self, additional: usize) {
        self.buf.reserve(additional);
    }

    pub fn extend_from_slice(&mut self, slice: &[u8]) {
        self.buf.extend_from_slice(slice);
    }

    pub fn truncate(&mut self, len: usize) {
        self.buf.truncate(len);
    }

    /// Splits off and returns the first `at` bytes; `self` keeps the rest.
    pub fn split_to(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_to out of bounds");
        let tail = self.buf.split_off(at);
        BytesMut { buf: std::mem::replace(&mut self.buf, tail) }
    }

    /// Splits off and returns everything from `at` on; `self` keeps the head.
    pub fn split_off(&mut self, at: usize) -> BytesMut {
        assert!(at <= self.len(), "split_off out of bounds");
        BytesMut { buf: self.buf.split_off(at) }
    }

    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for BytesMut {
    fn from(v: Vec<u8>) -> Self {
        BytesMut { buf: v }
    }
}

impl From<&[u8]> for BytesMut {
    fn from(s: &[u8]) -> Self {
        BytesMut { buf: s.to_vec() }
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&Bytes::copy_from_slice(&self.buf), f)
    }
}

// ---------------------------------------------------------------------------
// Buf / BufMut
// ---------------------------------------------------------------------------

macro_rules! buf_get_impl {
    ($name:ident, $name_le:ident, $ty:ty) => {
        fn $name(&mut self) -> $ty {
            let mut raw = [0u8; std::mem::size_of::<$ty>()];
            self.copy_to_slice(&mut raw);
            <$ty>::from_be_bytes(raw)
        }
        fn $name_le(&mut self) -> $ty {
            let mut raw = [0u8; std::mem::size_of::<$ty>()];
            self.copy_to_slice(&mut raw);
            <$ty>::from_le_bytes(raw)
        }
    };
}

/// Read side: a cursor over a contiguous byte region.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "buffer underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    fn get_i8(&mut self) -> i8 {
        self.get_u8() as i8
    }

    buf_get_impl!(get_u16, get_u16_le, u16);
    buf_get_impl!(get_u32, get_u32_le, u32);
    buf_get_impl!(get_u64, get_u64_le, u64);
    buf_get_impl!(get_u128, get_u128_le, u128);
    buf_get_impl!(get_i16, get_i16_le, i16);
    buf_get_impl!(get_i32, get_i32_le, i32);
    buf_get_impl!(get_i64, get_i64_le, i64);
    buf_get_impl!(get_f32, get_f32_le, f32);
    buf_get_impl!(get_f64, get_f64_le, f64);
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }

    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance out of bounds");
        self.start += cnt;
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

macro_rules! buf_put_impl {
    ($name:ident, $name_le:ident, $ty:ty) => {
        fn $name(&mut self, v: $ty) {
            self.put_slice(&v.to_be_bytes());
        }
        fn $name_le(&mut self, v: $ty) {
            self.put_slice(&v.to_le_bytes());
        }
    };
}

/// Write side: append-only byte sink.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    fn put_i8(&mut self, v: i8) {
        self.put_u8(v as u8);
    }

    buf_put_impl!(put_u16, put_u16_le, u16);
    buf_put_impl!(put_u32, put_u32_le, u32);
    buf_put_impl!(put_u64, put_u64_le, u64);
    buf_put_impl!(put_u128, put_u128_le, u128);
    buf_put_impl!(put_i16, put_i16_le, i16);
    buf_put_impl!(put_i32, put_i32_le, i32);
    buf_put_impl!(put_i64, put_i64_le, i64);
    buf_put_impl!(put_f32, put_f32_le, f32);
    buf_put_impl!(put_f64, put_f64_le, f64);
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_ints() {
        let mut out = BytesMut::new();
        out.put_u8(7);
        out.put_u32_le(0xdead_beef);
        out.put_u64_le(42);
        out.put_i64_le(-5);
        out.put_f64_le(1.5);
        out.put_u16(0x0102);
        let mut b = out.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_u64_le(), 42);
        assert_eq!(b.get_i64_le(), -5);
        assert_eq!(b.get_f64_le(), 1.5);
        assert_eq!(b.get_u16(), 0x0102);
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn split_views_share_storage() {
        let mut b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let head = b.split_to(2);
        assert_eq!(&head[..], &[1, 2]);
        assert_eq!(&b[..], &[3, 4, 5]);
        let tail = b.split_off(1);
        assert_eq!(&b[..], &[3]);
        assert_eq!(&tail[..], &[4, 5]);
    }

    #[test]
    fn bytes_mut_split() {
        let mut m = BytesMut::from(&b"hello world"[..]);
        let head = m.split_to(5);
        assert_eq!(&head[..], b"hello");
        assert_eq!(&m[..], b" world");
    }

    #[test]
    fn equality_and_static() {
        let b = Bytes::from_static(b"abc");
        assert_eq!(b, Bytes::from(vec![b'a', b'b', b'c']));
        assert_eq!(b, *b"abc");
        assert!(!b.is_empty());
        assert_eq!(b.len(), 3);
    }
}
