#!/usr/bin/env bash
# Two-node replication smoke: a durable primary serves a loadgen burst
# and ships its journal to a follower; the primary is SIGKILLed, the
# follower is promoted and must serve a full zero-loss loadgen run over
# the replicated catalog; the restarted primary's recovery report must
# carry the pre-crash replication story (ship/ack flight entries), and
# the follower's flight recorder the catch-up/promote entries.
#
# Usage: scripts/two_node_smoke.sh [workdir]
# Leaves node-a/ and node-b/ data dirs (with recovery-report.json each)
# plus node-*.log in the workdir for CI artifact upload.
set -euo pipefail

REPO=$(cd "$(dirname "$0")/.." && pwd)
WORKDIR=${1:-two-node-smoke}
mkdir -p "$WORKDIR"
cd "$WORKDIR"
rm -rf node-a node-b node-a.log node-a2.log node-b.log repl-a.json

# Orphaned servers would otherwise outlive a failed run (and hang CI on
# the step's open stdout).
trap 'kill $(jobs -p) 2>/dev/null || true' EXIT

run() { cargo run --manifest-path "$REPO/Cargo.toml" --release -q -p sentinel-bench --bin "$@"; }

# Build once up front so every `run` below starts instantly and the
# readiness windows measure the servers, not the compiler.
cargo build --manifest-path "$REPO/Cargo.toml" --release -q -p sentinel-bench

wait_listen() { # logfile -> prints bound address
  for _ in $(seq 300); do
    grep -q "listening on" "$1" && break
    sleep 0.2
  done
  sed -n 's/^listening on //p' "$1"
}

# 1. Primary up + loadgen burst (defines the SEQ+cascade workload).
run sentinel-server -- --addr 127.0.0.1:0 --data-dir node-a \
  --group-window-us 100 > node-a.log &
A_PID=$!
ADDR_A=$(wait_listen node-a.log)
test -n "$ADDR_A"
run sentinel-loadgen -- --addr "$ADDR_A" --clients 2 --iters 50

# 2. Follower bootstraps and tails until its ack reaches the tip.
run sentinel-server -- --addr 127.0.0.1:0 --data-dir node-b \
  --replica-of "$ADDR_A" --lease-ms 0 --follower-name smoke > node-b.log &
B_PID=$!
ADDR_B=$(wait_listen node-b.log)
test -n "$ADDR_B"
for _ in $(seq 100); do
  run sentinel-loadgen -- --addr "$ADDR_A" --repl-status > repl-a.json || true
  grep -q '"lag":0' repl-a.json && break
  sleep 0.2
done
grep -q '"lag":0' repl-a.json
run sentinel-loadgen -- --addr "$ADDR_B" --repl-status | grep -q '"role":"replica"'

# Two more small bursts around a catch-up wait: the first leaves frames
# for the follower to fetch live (recording `ship` on the primary), the
# second forces a commit afterwards so the committer dumps the flight
# ring — now holding the ship/ack entries — to disk before the SIGKILL.
run sentinel-loadgen -- --addr "$ADDR_A" --clients 1 --iters 1
for _ in $(seq 100); do
  run sentinel-loadgen -- --addr "$ADDR_A" --repl-status > repl-a.json || true
  grep -q '"lag":0' repl-a.json && break
  sleep 0.2
done
grep -q '"lag":0' repl-a.json
run sentinel-loadgen -- --addr "$ADDR_A" --clients 1 --iters 1
sleep 0.1

# 3. Lose the primary, promote the follower, and demand a zero-loss run
#    (the loadgen exits non-zero on any lost signal) over the catalog the
#    follower only ever saw via replication.
kill -9 "$A_PID"
wait "$A_PID" || true
run sentinel-loadgen -- --addr "$ADDR_B" --promote | grep -q '"promoted":true'
run sentinel-loadgen -- --addr "$ADDR_B" --clients 2 --iters 50 --shutdown
wait "$B_PID" || true

# 4. Restart the SIGKILLed primary: recovery folds its flight ring into
#    recovery-report.json, which must carry the shipping story.
run sentinel-server -- --addr 127.0.0.1:0 --data-dir node-a > node-a2.log &
ADDR_A2=$(wait_listen node-a2.log)
test -n "$ADDR_A2"
run sentinel-loadgen -- --addr "$ADDR_A2" --clients 1 --iters 1 --shutdown
wait

test -s node-a/recovery-report.json
test -s node-b/recovery-report.json
grep -q '"kind":"ship"' node-a/recovery-report.json
grep -q '"kind":"ack"' node-a/recovery-report.json
grep -q '"kind":"catch_up"' node-b/flight-recorder.json
grep -q '"kind":"promote"' node-b/flight-recorder.json
echo "two-node smoke: OK"
