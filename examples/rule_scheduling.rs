//! Rule execution and scheduling — Figure 3 of the paper.
//!
//! Demonstrates, on the threaded scheduler:
//! * prioritized **serial** execution across priority classes,
//! * **concurrent** execution of rules within one class (thread pool),
//! * **nested** rule triggering with depth-first execution,
//! * application suspension until all immediate rules finish,
//! * the rule debugger's trace of the whole cascade.
//!
//! Run with: `cargo run --example rule_scheduling`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;
use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::Sentinel;

const PING: &str = "void ping()";
const PONG: &str = "void pong()";

fn main() {
    println!("=== Rule scheduling (Figure 3): prioritized threads + nesting ===\n");

    let s = Sentinel::in_memory_with(SentinelConfig {
        mode: ExecutionMode::Threaded { workers: 4 },
        ..SentinelConfig::default()
    });
    s.debugger().set_enabled(true);

    s.db()
        .register_class(
            ClassDef::new("WORKER")
                .extends("REACTIVE")
                .attr("name", AttrType::Str)
                .method(PING)
                .method(PONG),
        )
        .unwrap();
    s.db().register_method("WORKER", PING, Arc::new(|_| Ok(AttrValue::Null)));
    s.db().register_method("WORKER", PONG, Arc::new(|_| Ok(AttrValue::Null)));
    s.declare_event("ping", "WORKER", EventModifier::End, PING, PrimTarget::AnyInstance).unwrap();
    s.declare_event("pong", "WORKER", EventModifier::End, PONG, PrimTarget::AnyInstance).unwrap();

    let order = Arc::new(Mutex::new(Vec::<String>::new()));
    let concurrent_peak = Arc::new(AtomicUsize::new(0));
    let concurrent_now = Arc::new(AtomicUsize::new(0));

    // --- priority classes: URGENT (20) before NORMAL (10) before LOW (1) --
    for (name, prio) in [("urgent_a", 20u32), ("urgent_b", 20), ("normal", 10), ("low", 1)] {
        let o = order.clone();
        let now = concurrent_now.clone();
        let peak = concurrent_peak.clone();
        s.define_rule(
            name,
            "ping",
            Arc::new(|_| true),
            Arc::new(move |_| {
                let live = now.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(live, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(30));
                o.lock().push(name.to_string());
                now.fetch_sub(1, Ordering::SeqCst);
            }),
            RuleOptions::default().priority(prio),
        )
        .unwrap();
    }

    // --- a nested rule: `normal` triggers pong, `nested` reacts ----------
    let s2 = s.clone();
    let o = order.clone();
    s.define_rule(
        "normal_nester",
        "ping",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            o.lock().push("normal_nester".into());
            let txn = sentinel_core::storage::TxnId(inv.txn.unwrap());
            let oid = sentinel_core::oodb::Oid(inv.occurrence.param_list()[0].source.unwrap());
            // Raising an event from inside an action: nested triggering.
            s2.invoke(txn, oid, PONG, vec![]).unwrap();
        }),
        RuleOptions::default().priority(10),
    )
    .unwrap();
    let o = order.clone();
    s.define_rule(
        "nested",
        "pong",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            o.lock().push(format!("nested(depth={})", inv.depth));
        }),
        RuleOptions::default().priority(5),
    )
    .unwrap();

    // --- trigger ----------------------------------------------------
    let txn = s.begin().unwrap();
    let w = s.create_object(txn, &ObjectState::new("WORKER").with("name", "w1")).unwrap();
    println!("invoking ping() — application suspends until all rules finish…");
    let start = Instant::now();
    s.invoke(txn, w, PING, vec![]).unwrap();
    let elapsed = start.elapsed();
    println!("…resumed after {elapsed:?}\n");
    s.commit(txn).unwrap();

    let order = order.lock().clone();
    println!("execution order: {order:?}");
    println!(
        "peak concurrency inside one priority class: {}",
        concurrent_peak.load(Ordering::SeqCst)
    );

    // Assertions: urgents strictly first, low strictly last, nested before low.
    let pos = |n: &str| order.iter().position(|x| x.starts_with(n)).unwrap();
    assert!(pos("urgent_a") < pos("normal"));
    assert!(pos("urgent_b") < pos("normal"));
    assert!(pos("normal_nester") < pos("nested"));
    assert!(pos("nested") < pos("low"), "depth-first: nested rule before lower class");
    assert_eq!(order.len(), 6);

    println!("\n=== Rule debugger trace ===");
    print!("{}", s.debugger().render());
    println!("\nOK: classes serialized, same-class rules ran concurrently (peak {}), nesting was depth-first.",
        concurrent_peak.load(Ordering::SeqCst));
}
