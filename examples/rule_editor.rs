//! A dynamic rule-programming session — the run-time rule management the
//! paper requires ("we also support rule activation and deactivation at run
//! time" §3.1) and the Sentinel group's follow-up dynamic rule editor,
//! driven as a small command interpreter:
//!
//! ```text
//! def   <spec statement>;      feed one §3.1 statement to the pre-processor
//! raise <event> [k=v …]        raise an explicit event inside the open txn
//! enable|disable|delete <rule> run-time rule management
//! rules                        list rules with enabled state
//! graph                        DOT of the current event graph
//! trace                        rule-debugger trace so far
//! ```
//!
//! Run with: `cargo run --example rule_editor` (executes the scripted demo
//! session below and prints each command with its effect).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::detector::Value;
use sentinel_core::{FunctionTable, Preprocessor, Sentinel};

fn main() {
    let s = Sentinel::in_memory();
    s.debugger().set_enabled(true);
    let fired = Arc::new(AtomicUsize::new(0));
    let f1 = fired.clone();
    let f2 = fired.clone();
    let table = FunctionTable::new()
        .condition("always", |_| true)
        .condition("hot", |inv| {
            inv.occurrence.param("temp").and_then(|v| v.as_f64()).unwrap_or(0.0) > 30.0
        })
        .action("log_it", move |inv| {
            f1.fetch_add(1, Ordering::SeqCst);
            println!("      -> log_it: {}", inv.occurrence);
        })
        .action("page_oncall", move |inv| {
            f2.fetch_add(1, Ordering::SeqCst);
            println!("      -> PAGE ONCALL: {}", inv.occurrence);
        });

    // The scripted session: a monitoring setup evolving at run time.
    let script = [
        "def event reading = sensor;",
        "def event hot_streak = (sensor ; sensor);",
        "def rule R_log(reading, always, log_it);",
        "def rule R_page(hot_streak, hot, page_oncall, CHRONICLE, 20);",
        "rules",
        "raise sensor temp=25",
        "raise sensor temp=35", // completes hot_streak; terminator temp 35 > 30
        "disable R_page",
        "raise sensor temp=40",
        "raise sensor temp=41", // hot_streak detection exists but rule disabled? counter dropped -> not detected
        "enable R_page",
        "raise sensor temp=50",
        "raise sensor temp=51",
        "rules",
        "delete R_log",
        "raise sensor temp=10",
        "trace",
        "graph",
    ];

    let txn = s.begin().expect("begin");
    s.detector().declare_explicit("sensor");
    let pre = Preprocessor::new(&s);

    for cmd in script {
        println!("sentinel> {cmd}");
        let (verb, rest) = cmd.split_once(' ').unwrap_or((cmd, ""));
        match verb {
            "def" => {
                pre.apply(txn, rest, &table).expect("spec statement");
                println!("      ok");
            }
            "raise" => {
                let mut parts = rest.split_whitespace();
                let event = parts.next().expect("event name");
                let params: Vec<(Arc<str>, Value)> = parts
                    .filter_map(|kv| kv.split_once('='))
                    .map(|(k, v)| {
                        let val =
                            v.parse::<f64>().map(Value::Float).unwrap_or_else(|_| Value::str(v));
                        (Arc::from(k), val)
                    })
                    .collect();
                s.raise(Some(txn), event, params).expect("raise");
            }
            "enable" => {
                s.enable_rule(rest).expect("enable");
                println!("      enabled {rest}");
            }
            "disable" => {
                s.disable_rule(rest).expect("disable");
                println!("      disabled {rest} (context counter dropped)");
            }
            "delete" => {
                let id = s.rules().lookup(rest).expect("rule exists");
                s.rules().delete(id).expect("delete");
                println!("      deleted {rest}");
            }
            "rules" => {
                for (id, name, enabled) in s.rules().list() {
                    println!(
                        "      {id} {name} [{}]",
                        if enabled { "enabled" } else { "disabled" }
                    );
                }
            }
            "trace" => {
                print!("{}", textwrap(&s.debugger().render()));
            }
            "graph" => {
                let dot = s.detector().to_dot();
                println!(
                    "      (event graph: {} DOT lines, try piping to `dot -Tsvg`)",
                    dot.lines().count()
                );
            }
            other => println!("      unknown command `{other}`"),
        }
    }
    s.commit(txn).expect("commit");

    println!("\ntotal actions executed: {}", fired.load(Ordering::SeqCst));
    // R_log: 5 raises while enabled (25,35,40,41,50,51 = 6; deleted before the 10) → 6
    // R_page: (25;35) fires hot; disabled misses (40;41); re-enabled: needs
    // two fresh readings -> (50;51) fires.
    assert_eq!(fired.load(Ordering::SeqCst), 6 + 2);
    println!("OK: run-time enable/disable/delete behaved as §3.1 specifies.");
}

fn textwrap(s: &str) -> String {
    s.lines().map(|l| format!("      {l}\n")).collect()
}
