//! Inter-application (global) events — Figure 2 of the paper.
//!
//! Two applications (clients) each run their own local composite event
//! detector. Selected events are forwarded to the **global event
//! detector**, which detects a composite event spanning both applications
//! and runs a *detached* rule in its own top-level transaction — the
//! cooperative-transaction / workflow use case of §2.1.
//!
//! Scenario: a purchasing workflow. App 1 is the ordering department, app 2
//! is the warehouse. When app 1 places an order *and* app 2 reports stock
//! (in either order), a global fulfilment rule runs detached on app 1 and
//! records the fulfilment.
//!
//! Run with: `cargo run --example global_events`

use std::sync::Arc;
use std::time::Duration;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::global::GlobalEventDetector;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::Sentinel;

const PLACE_SIG: &str = "void place_order(int qty)";
const STOCK_SIG: &str = "void report_stock(int qty)";

fn ordering_app() -> Arc<Sentinel> {
    let s = Sentinel::in_memory_with(SentinelConfig { app_id: 1, ..SentinelConfig::default() });
    s.db()
        .register_class(
            ClassDef::new("ORDER")
                .extends("REACTIVE")
                .attr("item", AttrType::Str)
                .attr("qty", AttrType::Int)
                .attr("fulfilled", AttrType::Bool)
                .method(PLACE_SIG),
        )
        .unwrap();
    s.db().register_method(
        "ORDER",
        PLACE_SIG,
        Arc::new(|ctx| {
            let qty = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
            ctx.set_attr("qty", qty)?;
            ctx.set_attr("fulfilled", false)?;
            Ok(AttrValue::Null)
        }),
    );
    s.declare_event(
        "order_placed",
        "ORDER",
        EventModifier::End,
        PLACE_SIG,
        PrimTarget::AnyInstance,
    )
    .unwrap();
    s
}

fn warehouse_app() -> Arc<Sentinel> {
    let s = Sentinel::in_memory_with(SentinelConfig { app_id: 2, ..SentinelConfig::default() });
    s.db()
        .register_class(
            ClassDef::new("SHELF")
                .extends("REACTIVE")
                .attr("item", AttrType::Str)
                .attr("stock", AttrType::Int)
                .method(STOCK_SIG),
        )
        .unwrap();
    s.db().register_method(
        "SHELF",
        STOCK_SIG,
        Arc::new(|ctx| {
            let qty = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
            ctx.set_attr("stock", qty)?;
            Ok(AttrValue::Null)
        }),
    );
    s.declare_event(
        "stock_reported",
        "SHELF",
        EventModifier::End,
        STOCK_SIG,
        PrimTarget::AnyInstance,
    )
    .unwrap();
    s
}

fn main() {
    println!("=== Global (inter-application) events: Figure 2 ===\n");

    let global = GlobalEventDetector::spawn();
    let orders = ordering_app();
    let warehouse = warehouse_app();

    // Step 5 of Figure 2: local detectors forward to the global detector.
    orders.forward_to_global("order_placed", &global.handle()).unwrap();
    warehouse.forward_to_global("stock_reported", &global.handle()).unwrap();

    // An inter-application composite: order AND stock report.
    global.define_event("fulfillable", "app1.order_placed ^ app2.stock_reported").unwrap();

    // Detached fulfilment rule: runs in its OWN top-level transaction on
    // the ordering application.
    let target = orders.clone();
    let (done_tx, done_rx) = crossbeam::channel::bounded::<(u64, i64)>(1);
    global
        .define_rule(
            "fulfil",
            "fulfillable",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                let order_oid = inv
                    .occurrence
                    .param_list()
                    .iter()
                    .find(|p| p.event_name.contains("order_placed"))
                    .and_then(|p| p.param("oid"))
                    .and_then(|v| v.as_oid())
                    .expect("order oid forwarded");
                let qty = inv.occurrence.param("qty").and_then(|v| v.as_i64()).unwrap_or(0);
                // Fresh top-level transaction (detached coupling).
                let t = target.begin().unwrap();
                let mut order = target.get_object(t, sentinel_core::oodb::Oid(order_oid)).unwrap();
                order.set("fulfilled", true);
                target.db().store().update(t, sentinel_core::oodb::Oid(order_oid), &order).unwrap();
                target.commit(t).unwrap();
                let _ = done_tx.send((order_oid, qty));
            }),
        )
        .unwrap();

    // --- the workflow ----------------------------------------------------
    println!("[app1] placing an order for 12 widgets…");
    let t1 = orders.begin().unwrap();
    let order = orders
        .create_object(
            t1,
            &ObjectState::new("ORDER")
                .with("item", "widget")
                .with("qty", 0)
                .with("fulfilled", false),
        )
        .unwrap();
    orders.invoke(t1, order, PLACE_SIG, vec![("qty".into(), 12.into())]).unwrap();
    orders.commit(t1).unwrap();

    println!("[app2] reporting warehouse stock…");
    let t2 = warehouse.begin().unwrap();
    let shelf = warehouse
        .create_object(t2, &ObjectState::new("SHELF").with("item", "widget").with("stock", 0))
        .unwrap();
    warehouse.invoke(t2, shelf, STOCK_SIG, vec![("qty".into(), 500.into())]).unwrap();
    warehouse.commit(t2).unwrap();

    let (oid, qty) = done_rx
        .recv_timeout(Duration::from_secs(5))
        .expect("global rule must fire after both constituents");
    println!("[global] fulfilment rule ran detached: order oid#{oid}, qty={qty}");

    // Verify the detached transaction's write is visible.
    let t = orders.begin().unwrap();
    let state = orders.get_object(t, order).unwrap();
    println!("[app1] order state: fulfilled = {}", state.get("fulfilled").unwrap());
    assert_eq!(state.get("fulfilled"), Some(&AttrValue::Bool(true)));
    orders.commit(t).unwrap();

    println!("\nOK: inter-application composite detected; detached rule committed independently.");
}
