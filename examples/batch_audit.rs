//! Batch (after-the-fact) event detection over a stored event log — the
//! §2.1 requirement that the detector support "detection of events as they
//! happen (online) … or over a stored event-log (in batch mode)".
//!
//! An online session records its primitive-event log while detecting
//! composites live; an auditor later replays the log through a fresh
//! detector with *different* rules (a fraud pattern that was not being
//! monitored at the time) and finds matches retroactively — with byte-equal
//! timestamps and parameters.
//!
//! Run with: `cargo run --example batch_audit`

use std::sync::Arc;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::LocalEventDetector;
use sentinel_core::detector::Value;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::{parse_event_expr, ParamContext};

const WITHDRAW: &str = "void withdraw(float amt)";
const LOGIN: &str = "void login()";

fn declare(det: &LocalEventDetector) {
    det.declare_primitive("login", "ACCT", EventModifier::End, LOGIN, PrimTarget::AnyInstance)
        .unwrap();
    det.declare_primitive(
        "withdraw",
        "ACCT",
        EventModifier::End,
        WITHDRAW,
        PrimTarget::AnyInstance,
    )
    .unwrap();
}

fn main() {
    println!("=== Batch detection over a stored event log ===\n");

    // --- online phase -----------------------------------------------
    let online = LocalEventDetector::new(1);
    declare(&online);
    // Live monitoring: large single withdrawal.
    let big =
        online.define_named("big_withdrawal", &parse_event_expr("withdraw").unwrap()).unwrap();
    online.subscribe(big, ParamContext::Recent, 1).unwrap();
    online.start_recording();

    println!("[online] running the day's workload (recording the event log)…");
    let mut live_alerts = 0;
    let day = [
        (7u64, LOGIN, 0.0),
        (7, WITHDRAW, 50.0),
        (7, WITHDRAW, 60.0),
        (7, WITHDRAW, 70.0),
        (9, LOGIN, 0.0),
        (9, WITHDRAW, 5000.0),
    ];
    for (acct, sig, amt) in day {
        let params =
            if sig == WITHDRAW { vec![(Arc::from("amt"), Value::Float(amt))] } else { Vec::new() };
        let dets = online.notify_method("ACCT", sig, EventModifier::End, acct, params, Some(1));
        for d in dets {
            if d.occurrence.param("amt").and_then(|v| v.as_f64()).unwrap_or(0.0) > 1000.0 {
                live_alerts += 1;
                println!("[online]   ALERT big withdrawal: {}", d.occurrence);
            }
        }
    }
    let log = online.take_log();
    println!("[online] recorded {} primitive events, {} live alerts", log.len(), live_alerts);

    // Persist the stored event log to disk (the paper's "stored event-log")
    // and read it back — the audit could run days later, elsewhere.
    let log_path = std::env::temp_dir().join(format!("sentinel-audit-{}.elog", std::process::id()));
    std::fs::write(&log_path, sentinel_core::detector::log::encode_log(&log)).expect("write log");
    let stored = std::fs::read(&log_path).expect("read log");
    let log = sentinel_core::detector::log::decode_log(stored.into()).expect("decode log");
    println!(
        "[online] event log persisted to {} ({} bytes)\n",
        log_path.display(),
        std::fs::metadata(&log_path).map(|m| m.len()).unwrap_or(0)
    );
    let _ = std::fs::remove_file(&log_path);

    // --- batch phase ------------------------------------------------
    // The auditor suspects "salami slicing": three withdrawals in a row by
    // the same account after a single login. This pattern was NOT monitored
    // online — batch detection finds it retroactively.
    let audit = LocalEventDetector::new(2);
    declare(&audit);
    let pattern = audit
        .define_named(
            "salami",
            &parse_event_expr("((login ; withdraw) ; withdraw) ; withdraw").unwrap(),
        )
        .unwrap();
    audit.subscribe(pattern, ParamContext::Chronicle, 1).unwrap();

    println!("[audit] replaying the stored log against the fraud pattern…");
    let matches = audit.replay(&log);
    for m in &matches {
        let total: f64 = m
            .occurrence
            .param_list()
            .iter()
            .filter_map(|p| p.param("amt").and_then(|v| v.as_f64()))
            .sum();
        println!(
            "[audit]   MATCH at t={}: account {} drained {:.2} in {} slices",
            m.occurrence.at,
            m.occurrence.param_list()[0].source.unwrap_or(0),
            total,
            m.occurrence.param_list().len() - 1
        );
    }
    assert_eq!(matches.len(), 1, "exactly one salami pattern in the log");
    assert_eq!(matches[0].occurrence.param_list().len(), 4, "login + three withdrawals");

    // --- determinism check: replay == replay ----------------------------
    let audit2 = LocalEventDetector::new(3);
    declare(&audit2);
    let p2 = audit2
        .define_named(
            "salami",
            &parse_event_expr("((login ; withdraw) ; withdraw) ; withdraw").unwrap(),
        )
        .unwrap();
    audit2.subscribe(p2, ParamContext::Chronicle, 1).unwrap();
    let matches2 = audit2.replay(&log);
    assert_eq!(matches.len(), matches2.len());
    assert_eq!(matches[0].occurrence.at, matches2[0].occurrence.at);
    println!("\nOK: batch replay found the unmonitored pattern; replays are deterministic.");
}
