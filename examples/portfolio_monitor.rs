//! Portfolio monitoring: the workload the paper's introduction motivates —
//! stock-market rules over composite events in different parameter
//! contexts.
//!
//! Scenario:
//! * `price_drop` — explicit event raised when a price update lowers the
//!   price (shows application-raised events);
//! * `crash_watch = price_drop ; price_drop ; price_drop` in **chronicle**
//!   context — three consecutive drops trigger a sell-off rule;
//! * `quiet_session = NOT(trade)[session_open, session_close]` — fires when
//!   a session closes without a single trade;
//! * `volume_report = A*(session_open, trade, session_close)` in
//!   **cumulative** context — one report per session with every trade's
//!   parameters (the paper's "accumulate all insert events" example, with
//!   sessions instead of transactions).
//!
//! Run with: `cargo run --example portfolio_monitor`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::Value;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::ParamContext;
use sentinel_core::Sentinel;

const TRADE_SIG: &str = "void trade(int qty, float price)";

fn main() {
    let s = Sentinel::in_memory();
    s.debugger().set_enabled(true);

    // --- schema ----------------------------------------------------------
    s.db()
        .register_class(
            ClassDef::new("STOCK")
                .extends("REACTIVE")
                .attr("symbol", AttrType::Str)
                .attr("price", AttrType::Float)
                .attr("volume", AttrType::Int)
                .method(TRADE_SIG),
        )
        .expect("register STOCK");
    s.db().register_method(
        "STOCK",
        TRADE_SIG,
        Arc::new(|ctx| {
            let qty = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
            let price = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
            let old_price = ctx.get_attr("price")?.as_float().unwrap_or(0.0);
            let vol = ctx.get_attr("volume")?.as_int().unwrap_or(0);
            ctx.set_attr("price", price)?;
            ctx.set_attr("volume", vol + qty)?;
            // Return whether this trade lowered the price.
            Ok(AttrValue::Bool(price < old_price))
        }),
    );

    // --- events ------------------------------------------------------
    s.declare_event("trade", "STOCK", EventModifier::End, TRADE_SIG, PrimTarget::AnyInstance)
        .expect("declare trade");
    for explicit in ["price_drop", "session_open", "session_close"] {
        s.detector().declare_explicit(explicit);
    }
    s.define_event("crash_watch", "(price_drop ; price_drop) ; price_drop").expect("crash_watch");
    s.define_event("quiet_session", "NOT(trade)[session_open, session_close]")
        .expect("quiet_session");
    s.define_event("volume_report", "A*(session_open, trade, session_close)")
        .expect("volume_report");

    // --- rules -------------------------------------------------------
    let crashes = Arc::new(AtomicUsize::new(0));
    let c = crashes.clone();
    s.define_rule(
        "sell_off",
        "crash_watch",
        Arc::new(|inv| {
            // All three drops must be for the same symbol.
            let prims = inv.occurrence.param_list();
            let first = prims.first().and_then(|p| p.param("symbol")).cloned();
            prims.iter().all(|p| p.param("symbol").cloned() == first)
        }),
        Arc::new(move |inv| {
            c.fetch_add(1, Ordering::SeqCst);
            let sym = inv
                .occurrence
                .param("symbol")
                .and_then(|v| v.as_str().map(str::to_string))
                .unwrap_or_default();
            println!("  !! SELL-OFF: three consecutive drops for {sym}");
        }),
        RuleOptions::default().context(ParamContext::Chronicle).priority(20),
    )
    .expect("sell_off");

    let quiets = Arc::new(AtomicUsize::new(0));
    let q = quiets.clone();
    s.define_rule(
        "quiet_alert",
        "quiet_session",
        Arc::new(|_| true),
        Arc::new(move |_| {
            q.fetch_add(1, Ordering::SeqCst);
            println!("  .. session closed with zero trades");
        }),
        RuleOptions::default(),
    )
    .expect("quiet_alert");

    let reports = Arc::new(AtomicUsize::new(0));
    let r = reports.clone();
    s.define_rule(
        "volume_reporter",
        "volume_report",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            r.fetch_add(1, Ordering::SeqCst);
            let trades: Vec<_> = inv
                .occurrence
                .param_list()
                .iter()
                .filter(|p| &*p.event_name == "trade")
                .map(|p| {
                    format!(
                        "{}x@{}",
                        p.params
                            .iter()
                            .find(|(n, _)| &**n == "qty")
                            .map(|(_, v)| v.to_string())
                            .unwrap_or_default(),
                        p.params
                            .iter()
                            .find(|(n, _)| &**n == "price")
                            .map(|(_, v)| v.to_string())
                            .unwrap_or_default()
                    )
                })
                .collect();
            println!("  == session volume report: {} trades [{}]", trades.len(), trades.join(", "));
        }),
        RuleOptions::default().context(ParamContext::Cumulative),
    )
    .expect("volume_reporter");

    // --- a trading day ----------------------------------------------
    println!("=== Portfolio monitor ===");
    let txn = s.begin().expect("begin");
    let ibm = s
        .create_object(
            txn,
            &ObjectState::new("STOCK").with("symbol", "IBM").with("price", 150.0).with("volume", 0),
        )
        .expect("IBM");

    println!("-- session 1: active trading with a crash");
    s.raise(Some(txn), "session_open", vec![]).unwrap();
    let mut price = 150.0;
    for (i, delta) in [(1, -2.0), (2, -3.0), (3, -1.5)] {
        price += delta;
        let dropped = s
            .invoke(
                txn,
                ibm,
                TRADE_SIG,
                vec![("qty".into(), (10 * i).into()), ("price".into(), price.into())],
            )
            .expect("trade")
            == AttrValue::Bool(true);
        println!("  trade {i}: qty={} price={price} (drop: {dropped})", 10 * i);
        if dropped {
            s.raise(
                Some(txn),
                "price_drop",
                vec![
                    (Arc::from("symbol"), Value::str("IBM")),
                    (Arc::from("price"), Value::Float(price)),
                ],
            )
            .unwrap();
        }
    }
    s.raise(Some(txn), "session_close", vec![]).unwrap();

    println!("-- session 2: no trades at all");
    s.raise(Some(txn), "session_open", vec![]).unwrap();
    s.raise(Some(txn), "session_close", vec![]).unwrap();

    s.commit(txn).expect("commit");

    println!("\n=== Summary ===");
    println!("sell-off rules fired:   {}", crashes.load(Ordering::SeqCst));
    println!("quiet sessions:         {}", quiets.load(Ordering::SeqCst));
    println!("volume reports:         {}", reports.load(Ordering::SeqCst));
    assert_eq!(crashes.load(Ordering::SeqCst), 1);
    assert_eq!(quiets.load(Ordering::SeqCst), 1);
    assert_eq!(reports.load(Ordering::SeqCst), 1);

    println!("\n=== Rule debugger trace ===");
    print!("{}", s.debugger().render());
}
