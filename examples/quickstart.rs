//! Quickstart: the paper's §3.1 STOCK class, end to end.
//!
//! 1. Feed the exact class/rule specification from the paper through the
//!    Sentinel pre-processor.
//! 2. Show the generated code (the §3.2 listings).
//! 3. Run a transaction that raises `e1` (sell) and `e2`/`e3` (set_price),
//!    completing the composite `e4 = e1 ^ e2`, and watch the DEFERRED rule
//!    `R1` fire exactly once at commit with cumulative parameters.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::codegen;
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::{FunctionTable, Preprocessor, Sentinel};

const STOCK_SPEC: &str = r#"
class STOCK : public REACTIVE {
public:
    char* symbol;
    float price;
    int holdings;
    event end(e1) int sell_stock(int qty);
    event begin(e2) && end(e3) void set_price(float price);
    int get_price();
    event e4 = e1 ^ e2; /* AND operator */
    rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW); /* class level rule */
};
"#;

fn main() {
    println!("=== Sentinel quickstart: the ICDE '95 STOCK example ===\n");

    // --- what the pre-processor would emit (paper §3.2 listings) ---------
    println!("--- Generated code (Sentinel pre-/post-processor output) ---");
    println!("{}", codegen::generate(STOCK_SPEC).expect("codegen"));

    // --- bring up the active DBMS ---------------------------------------
    let sentinel = Sentinel::in_memory();
    sentinel.debugger().set_enabled(true);

    let fired = Arc::new(AtomicUsize::new(0));
    let f = fired.clone();
    let table = FunctionTable::new()
        .condition("cond1", |inv| {
            // Condition: total quantity sold in this window exceeds 3.
            let qty: i64 = inv
                .occurrence
                .param_list()
                .iter()
                .filter_map(|o| o.params.iter().find(|(n, _)| &**n == "qty"))
                .filter_map(|(_, v)| v.as_i64())
                .sum();
            println!("  [cond1] cumulative qty sold = {qty}");
            qty > 3
        })
        .action("action1", move |inv| {
            f.fetch_add(1, Ordering::SeqCst);
            println!(
                "  [action1] R1 fired at t={} with {} constituent events:",
                inv.occurrence.at,
                inv.occurrence.param_list().len()
            );
            for prim in inv.occurrence.param_list() {
                println!("      {prim}");
            }
        });

    let txn = sentinel.begin().expect("begin");
    Preprocessor::new(&sentinel).apply(txn, STOCK_SPEC, &table).expect("preprocess");
    sentinel.commit(txn).expect("commit spec txn");

    // Method bodies — the `user_` methods of the wrapper listing.
    sentinel.db().register_method(
        "STOCK",
        "void set_price(float price)",
        Arc::new(|ctx| {
            let p = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
            ctx.set_attr("price", p)?;
            Ok(AttrValue::Null)
        }),
    );
    sentinel.db().register_method(
        "STOCK",
        "int sell_stock(int qty)",
        Arc::new(|ctx| {
            let q = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
            let h = ctx.get_attr("holdings")?.as_int().unwrap_or(0);
            ctx.set_attr("holdings", h - q)?;
            Ok(AttrValue::Int(h - q))
        }),
    );
    sentinel.db().register_method(
        "STOCK",
        "int get_price()",
        Arc::new(|ctx| Ok(AttrValue::Int(ctx.get_attr("price")?.as_float().unwrap_or(0.0) as i64))),
    );

    // --- a transaction that triggers the rule ---------------------------
    println!("--- Transaction: sell IBM, then set its price ---");
    let txn = sentinel.begin().expect("begin");
    let ibm = sentinel
        .create_object(
            txn,
            &ObjectState::new("STOCK")
                .with("symbol", "IBM")
                .with("price", 142.0)
                .with("holdings", 100),
        )
        .expect("create IBM");
    sentinel.db().names().bind(txn, "IBM", ibm).expect("bind name");

    sentinel
        .invoke(txn, ibm, "int sell_stock(int qty)", vec![("qty".into(), 5.into())])
        .expect("sell");
    println!("  sold 5 shares (raises e1 at method end)");
    sentinel
        .invoke(txn, ibm, "void set_price(float price)", vec![("price".into(), 140.5.into())])
        .expect("set_price");
    println!("  set price to 140.5 (raises e2 at begin, e3 at end; e4 = e1 ^ e2 detected)");
    println!(
        "  R1 fired so far: {} (DEFERRED: waits for pre-commit)",
        fired.load(Ordering::SeqCst)
    );

    println!("--- Committing (pre-commit fires the deferred rule) ---");
    sentinel.commit(txn).expect("commit");
    println!("  R1 fired: {}\n", fired.load(Ordering::SeqCst));

    println!("--- Rule debugger trace ---");
    print!("{}", sentinel.debugger().render());

    let t = sentinel.begin().expect("begin");
    let state = sentinel.get_object(t, ibm).expect("read IBM");
    println!(
        "\nFinal IBM state: price={}, holdings={}",
        state.get("price").unwrap(),
        state.get("holdings").unwrap()
    );
    sentinel.commit(t).expect("commit");
    assert_eq!(fired.load(Ordering::SeqCst), 1, "deferred rule must fire exactly once");
    println!("\nOK: deferred rule fired exactly once with net-effect parameters.");

    let stats = sentinel.stats();
    println!("\n--- Observability snapshot (Sentinel::stats) ---");
    println!("{stats}");
    assert!(stats.detector.signals > 0, "detector saw primitive signals");
    assert!(
        stats.scheduler.fired_immediate + stats.scheduler.fired_deferred > 0,
        "scheduler fired rules"
    );
    assert!(stats.storage.wal.appends > 0, "storage logged WAL records");
}
