//! SEC-3.1: the rule/event grammar and the generated-code listings.
//!
//! Verifies that the pre-processor accepts exactly the §3.1 surface syntax
//! (the STOCK class and the application-level items are quoted from the
//! paper) and that the code generator reproduces the §3.2 listings —
//! wrapper method and main-program event-graph construction — line for
//! line where the paper prints them.

use sentinel_core::codegen;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::spec::{EventTarget, SpecItem};
use sentinel_core::snoop::{parse_spec, CouplingMode, ParamContext, TriggerMode};

/// §3.1, quoted (with `;` statement terminators).
const PAPER_CLASS: &str = r#"
class STOCK : public REACTIVE {
public:
    event end(e1) int sell_stock(int qty);
    event begin(e2) && end(e3) void set_price(float price);
    int get_price();
    event e4 = e1 ^ e2; /* AND operator */
    rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW); /* class level rule */
};
"#;

/// §3.1 application-level items, quoted.
const PAPER_APP: &str = r#"
REACTIVE Stock;
Stock IBM;
event any_stk_price("any_stk_price", "Stock", "begin", "void set_price(float price)");
event set_IBM_price("set_IBM_price", IBM, "begin", "void set_price(float price)");
rule R1(any_stk_price, checksalary, resetsalary, CHRONICLE, DEFERRED);
"#;

#[test]
fn paper_class_parses_to_the_expected_structure() {
    let items = parse_spec(PAPER_CLASS).unwrap();
    let SpecItem::Class(c) = &items[0] else { panic!("class expected") };
    assert_eq!(c.name, "STOCK");
    assert_eq!(c.parent.as_deref(), Some("REACTIVE"));
    assert_eq!(c.method_events.len(), 2);
    assert_eq!(c.method_events[1].bindings.len(), 2, "begin(e2) && end(e3)");
    assert_eq!(c.named_events[0].0, "e4");
    let r = &c.rules[0];
    assert_eq!(
        (r.context, r.coupling, r.priority, r.trigger),
        (
            Some(ParamContext::Cumulative),
            Some(CouplingMode::Deferred),
            Some(10),
            Some(TriggerMode::Now)
        )
    );
}

#[test]
fn paper_app_items_parse_with_class_vs_instance_distinction() {
    let items = parse_spec(PAPER_APP).unwrap();
    let SpecItem::AppEvent(cls) = &items[2] else { panic!() };
    let SpecItem::AppEvent(inst) = &items[3] else { panic!() };
    // "the character string \"Stock\" … denotes a class and IBM denotes the
    // instance of that class".
    assert_eq!(cls.target, EventTarget::Class("Stock".into()));
    assert_eq!(inst.target, EventTarget::Instance("IBM".into()));
    assert_eq!(cls.modifier, EventModifier::Begin);
    assert_eq!(cls.sig.canonical(), "void set_price(float price)");
}

/// The §3.2.1 wrapper listing, line for line (modulo whitespace).
#[test]
fn wrapper_method_listing_matches_paper() {
    let generated = codegen::generate(PAPER_CLASS).unwrap();
    let expected_lines = [
        "void STOCK::set_price(float price) {",
        "PARA_LIST *set_price_list = new PARA_LIST();",
        "set_price_list->insert(\"price\", FLOAT, price);",
        "Notify(this, \"STOCK\", \"void set_price(float price)\", \"begin\", set_price_list);",
        "user_set_price(price);",
        "Notify(this, \"STOCK\", \"void set_price(float price)\", \"end\", set_price_list);",
    ];
    let mut cursor = 0;
    for line in &expected_lines {
        let found = generated[cursor..].find(line).unwrap_or_else(|| {
            panic!("expected line `{line}` (in order) in generated code:\n{generated}")
        });
        cursor += found + line.len();
    }
}

/// The §3.2 main-program listing.
#[test]
fn main_program_listing_matches_paper() {
    let generated = codegen::generate(PAPER_CLASS).unwrap();
    for line in [
        "Event_detector = new LOCAL_EVENT_DETECTOR();",
        "EVENT *STOCK_e1 = new PRIMITIVE(\"STOCK_e1\", \"STOCK\", \"end\", \"int sell_stock(int qty)\");",
        "EVENT *STOCK_e2 = new PRIMITIVE(\"STOCK_e2\", \"STOCK\", \"begin\", \"void set_price(float price)\");",
        "EVENT *STOCK_e3 = new PRIMITIVE(\"STOCK_e3\", \"STOCK\", \"end\", \"void set_price(float price)\");",
        "EVENT *STOCK_e4 = new AND(STOCK_e1, STOCK_e2);",
        "RULE *R1 = new RULE(\"R1\", STOCK_e4, cond1, action1, CUMULATIVE);",
        "R1->set_coupling_mode(DEFERRED);",
        "R1->set_priority(10);",
        "R1->set_trigger_mode(NOW);",
    ] {
        assert!(generated.contains(line), "missing `{line}` in:\n{generated}");
    }
}

/// The internal deferred-rule translation of §3.2.3:
/// `event def_rule_event = A*(beg_trans, any_stk_price, pre_commit)`.
#[test]
fn deferred_translation_listing() {
    let generated = codegen::generate(
        r#"
        event def_rule_event = A*(begin-transaction, any_stk_price, pre-commit-transaction);
        rule R1(def_rule_event, checksalary, resetsalary, CHRONICLE);
        "#,
    )
    .unwrap();
    assert!(generated.contains(
        "EVENT *def_rule_event = new A_STAR(begin-transaction, any_stk_price, pre-commit-transaction);"
    ));
    assert!(generated.contains(
        "RULE *R1 = new RULE(\"R1\", def_rule_event, checksalary, resetsalary, CHRONICLE);"
    ));
}

/// Round-trip: grammar → structure → codegen → the constructors reflect
/// every Snoop operator.
#[test]
fn all_operators_render_constructors() {
    let generated = codegen::generate(
        r#"
        event c1 = a ^ b;
        event c2 = a | b;
        event c3 = (a ; b);
        event c4 = ANY(2, a, b, c);
        event c5 = NOT(m)[s, t];
        event c6 = A(s, m, t);
        event c7 = A*(s, m, t);
        event c8 = P(s, 10, t);
        event c9 = P*(s, 10, t);
        event c10 = PLUS(a, 5);
        "#,
    )
    .unwrap();
    for ctor in [
        "new AND(a, b)",
        "new OR(a, b)",
        "new SEQ(a, b)",
        "new ANY(2, a, b, c)",
        "new NOT(m, s, t)",
        "new A(s, m, t)",
        "new A_STAR(s, m, t)",
        "new P(s, 10, t)",
        "new P_STAR(s, 10, t)",
        "new PLUS(a, 5)",
    ] {
        assert!(generated.contains(ctor), "missing `{ctor}` in:\n{generated}");
    }
}

#[test]
fn grammar_errors_are_reported_not_panicked() {
    for bad in [
        "class {",
        "rule R(e);",
        "event x = ;",
        "event e4 = e1 ^^ e2;",
        "rule R(e, c, a, bogusOption);",
    ] {
        assert!(parse_spec(bad).is_err(), "`{bad}` should be rejected");
    }
}
