//! FIG-3: rule execution using threads (the `Initiate_thread` /
//! `Cond_action` pseudocode).
//!
//! Asserts the pseudocode's observable properties on the threaded
//! scheduler: thread-pool reuse, priority assignment, the
//! condition→action packaging inside a subtransaction, and
//! application suspension.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::Sentinel;

const GO: &str = "void go()";

fn system(workers: usize) -> Arc<Sentinel> {
    let s = Sentinel::in_memory_with(SentinelConfig {
        mode: ExecutionMode::Threaded { workers },
        ..SentinelConfig::default()
    });
    s.db()
        .register_class(
            ClassDef::new("JOB").extends("REACTIVE").attr("x", AttrType::Int).method(GO),
        )
        .unwrap();
    s.db().register_method("JOB", GO, Arc::new(|_| Ok(AttrValue::Null)));
    s.declare_event("go", "JOB", EventModifier::End, GO, PrimTarget::AnyInstance).unwrap();
    s
}

#[test]
fn rules_run_on_pool_threads_not_the_application_thread() {
    let s = system(2);
    let app_thread = std::thread::current().id();
    let rule_threads = Arc::new(Mutex::new(HashSet::new()));
    let rt = rule_threads.clone();
    s.define_rule(
        "where_am_i",
        "go",
        Arc::new(|_| true),
        Arc::new(move |_| {
            rt.lock().insert(std::thread::current().id());
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("JOB").with("x", 0)).unwrap();
    for _ in 0..8 {
        s.invoke(t, o, GO, vec![]).unwrap();
    }
    s.commit(t).unwrap();
    let threads = rule_threads.lock();
    assert!(!threads.contains(&app_thread), "rule bodies run on worker threads");
    assert!(threads.len() <= 2, "thread pool reuse: at most `workers` distinct threads");
}

#[test]
fn condition_and_action_are_packaged_together() {
    // Figure 3's Cond_action: the condition and action of one triggering
    // run in the same subtransaction (and on the same thread).
    let s = system(3);
    let pairs = Arc::new(Mutex::new(Vec::new()));
    let (p1, p2) = (pairs.clone(), pairs.clone());
    s.define_rule(
        "paired",
        "go",
        Arc::new(move |inv| {
            p1.lock().push(("cond", std::thread::current().id(), inv.subtxn));
            true
        }),
        Arc::new(move |inv| {
            p2.lock().push(("action", std::thread::current().id(), inv.subtxn));
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("JOB").with("x", 0)).unwrap();
    s.invoke(t, o, GO, vec![]).unwrap();
    s.commit(t).unwrap();
    let pairs = pairs.lock();
    assert_eq!(pairs.len(), 2);
    assert_eq!(pairs[0].0, "cond");
    assert_eq!(pairs[1].0, "action");
    assert_eq!(pairs[0].1, pairs[1].1, "same thread");
    assert_eq!(pairs[0].2, pairs[1].2, "same subtransaction");
    assert!(pairs[0].2.is_some());
}

#[test]
fn application_suspends_until_all_rules_complete() {
    let s = system(4);
    let done = Arc::new(AtomicUsize::new(0));
    for i in 0..6 {
        let d = done.clone();
        s.define_rule(
            &format!("slow{i}"),
            "go",
            Arc::new(|_| true),
            Arc::new(move |_| {
                std::thread::sleep(Duration::from_millis(40));
                d.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default(),
        )
        .unwrap();
    }
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("JOB").with("x", 0)).unwrap();
    let start = Instant::now();
    s.invoke(t, o, GO, vec![]).unwrap();
    // The invoke returns only after all six rules finished.
    assert_eq!(done.load(Ordering::SeqCst), 6, "resumed only after all rules");
    assert!(start.elapsed() >= Duration::from_millis(40));
    s.commit(t).unwrap();
}

#[test]
fn nested_priority_is_derived_from_level_and_class() {
    // "The nested rule triggering is handled by assigning priorities to
    // threads based on their level and the priority of the rule that
    // triggered them. We currently support depth first execution."
    let s = system(1); // single worker: execution order == pop order
    let order = Arc::new(Mutex::new(Vec::<String>::new()));
    s.detector().declare_explicit("inner_ev");

    let s2 = s.clone();
    let o1 = order.clone();
    s.define_rule(
        "outer_high",
        "go",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            o1.lock().push("outer_high".into());
            s2.raise(inv.txn.map(sentinel_core::storage::TxnId), "inner_ev", Vec::new()).unwrap();
        }),
        RuleOptions::default().priority(50),
    )
    .unwrap();
    let o2 = order.clone();
    s.define_rule(
        "outer_low",
        "go",
        Arc::new(|_| true),
        Arc::new(move |_| o2.lock().push("outer_low".into())),
        RuleOptions::default().priority(10),
    )
    .unwrap();
    let o3 = order.clone();
    s.define_rule(
        "inner",
        "inner_ev",
        Arc::new(|_| true),
        Arc::new(move |inv| o3.lock().push(format!("inner@{}", inv.depth))),
        RuleOptions::default().priority(1), // low class, but deeper level wins
    )
    .unwrap();

    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("JOB").with("x", 0)).unwrap();
    s.invoke(t, o, GO, vec![]).unwrap();
    s.commit(t).unwrap();
    assert_eq!(
        *order.lock(),
        vec!["outer_high".to_string(), "inner@1".to_string(), "outer_low".to_string()],
        "depth-first: the nested rule preempts the lower class"
    );
}

#[test]
fn free_thread_reuse_across_many_bursts() {
    let s = system(2);
    let threads = Arc::new(Mutex::new(HashSet::new()));
    let tset = threads.clone();
    s.define_rule(
        "burst",
        "go",
        Arc::new(|_| true),
        Arc::new(move |_| {
            tset.lock().insert(std::thread::current().id());
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("JOB").with("x", 0)).unwrap();
    for _ in 0..50 {
        s.invoke(t, o, GO, vec![]).unwrap();
    }
    s.commit(t).unwrap();
    assert!(threads.lock().len() <= 2, "50 firings, at most 2 pool threads");
}

/// SEC-3.2.1's side-effect-free conditions are enforced by suppressing
/// event signalling while a condition evaluates. The paper's flag is
/// global because its detector is single-threaded per application; in a
/// served system many threads signal one shared detector, so the
/// suppression must be *thread-scoped*: an unrelated signal arriving on
/// another thread mid-condition must still be detected, while the
/// condition's own signals stay suppressed.
#[test]
fn condition_suppression_is_thread_scoped() {
    let s = Sentinel::in_memory();
    s.declare_explicit("trig").unwrap();
    s.declare_explicit("probe").unwrap();
    s.define_rule(
        "probe_count",
        "probe",
        Arc::new(|_| true),
        Arc::new(|_| {}),
        RuleOptions::default(),
    )
    .unwrap();

    // gate's condition signals `probe` itself (must be suppressed), then
    // parks until the other thread has signalled `probe` concurrently.
    let in_cond = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let own_dets = Arc::new(AtomicUsize::new(0));
    let (ic, rl, od, sc) = (in_cond.clone(), release.clone(), own_dets.clone(), s.clone());
    s.define_rule(
        "gate",
        "trig",
        Arc::new(move |_| {
            od.store(sc.serve_handle().signal("probe", Vec::new(), None), Ordering::SeqCst);
            ic.store(true, Ordering::SeqCst);
            while !rl.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            true
        }),
        Arc::new(|_| {}),
        RuleOptions::default(),
    )
    .unwrap();

    let prober = {
        let h = s.serve_handle();
        let (ic, rl) = (in_cond.clone(), release.clone());
        std::thread::spawn(move || {
            while !ic.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
            let dets = h.signal("probe", Vec::new(), None);
            rl.store(true, Ordering::SeqCst);
            dets
        })
    };
    s.serve_handle().signal("trig", Vec::new(), None);
    assert_eq!(
        prober.join().unwrap(),
        1,
        "a signal from another thread while a condition runs is still detected"
    );
    assert_eq!(own_dets.load(Ordering::SeqCst), 0, "the condition's own signals are suppressed");
}
