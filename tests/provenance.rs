//! End-to-end causal provenance: span links from primitive signal through
//! composite detection to rule condition/action and storage I/O, across
//! the threaded detector queue, in every parameter context — plus the
//! Chrome trace-event export contract.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::service::{DetectorService, Signal};
use sentinel_core::detector::LocalEventDetector;
use sentinel_core::obs::json::Value;
use sentinel_core::obs::span::{self, SpanRecord, TraceStore};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::{parse_event_expr, ParamContext};
use sentinel_core::Sentinel;

const SIG: &str = "void f()";

fn traced_detector(app: u32) -> (Arc<LocalEventDetector>, Arc<TraceStore>) {
    let det = Arc::new(LocalEventDetector::new(app));
    let store = Arc::new(TraceStore::new());
    store.set_enabled(true);
    det.set_trace_store(store.clone());
    (det, store)
}

fn find_span(spans: &[SpanRecord], ctx: span::SpanContext) -> &SpanRecord {
    spans.iter().find(|s| s.trace == ctx.trace && s.span == ctx.span).expect("span recorded")
}

/// The ISSUE acceptance test: a rule on a SEQ composite. The detection
/// span must link to every constituent primitive's span, the condition
/// and action spans must parent on the occurrence's span, and the Chrome
/// export must parse as JSON containing all of them.
#[test]
fn seq_rule_fires_with_full_provenance_chain() {
    let s = Sentinel::in_memory();
    s.set_tracing(true);
    s.detector().declare_explicit("x");
    s.detector().declare_explicit("y");
    s.define_event("xy", "x ; y").unwrap();

    let action_trace = Arc::new(AtomicU64::new(0));
    let at = action_trace.clone();
    s.define_rule(
        "watch_xy",
        "xy",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            at.store(inv.occurrence.span.expect("traced occurrence").trace.0, Ordering::SeqCst);
        }),
        RuleOptions::default().context(ParamContext::Chronicle),
    )
    .unwrap();

    let t = s.begin().unwrap();
    s.raise(Some(t), "x", Vec::new()).unwrap();
    s.raise(Some(t), "y", Vec::new()).unwrap();
    s.commit(t).unwrap();

    let store = s.trace_store();
    let all = store.snapshot();

    // Exactly one detection of the composite.
    let detects: Vec<_> = all.iter().filter(|s| s.kind == "detect" && &*s.name == "xy").collect();
    assert_eq!(detects.len(), 1);
    let detect = detects[0];

    // It links to every constituent primitive: one `x`, one `y`.
    assert_eq!(detect.links.len(), 2, "one link per constituent");
    let linked: Vec<&SpanRecord> = detect.links.iter().map(|l| find_span(&all, *l)).collect();
    let mut linked_names: Vec<&str> = linked.iter().map(|s| &*s.name).collect();
    linked_names.sort_unstable();
    assert_eq!(linked_names, ["x", "y"]);
    assert!(linked.iter().all(|s| s.kind == "primitive"));

    // The terminator (`y`) anchors the detect span's trace and parent.
    let y_span = linked.iter().find(|s| &*s.name == "y").unwrap();
    assert_eq!(detect.trace, y_span.trace);
    assert_eq!(detect.parent, Some(y_span.span));

    // Condition and action parent on the detection span, same trace — and
    // the trace id the action observed matches.
    let cond = all
        .iter()
        .find(|s| s.kind == "condition" && &*s.name == "watch_xy")
        .expect("condition span");
    let act =
        all.iter().find(|s| s.kind == "action" && &*s.name == "watch_xy").expect("action span");
    for rule_span in [cond, act] {
        assert_eq!(rule_span.trace, detect.trace);
        assert_eq!(rule_span.parent, Some(detect.span));
    }
    assert_eq!(action_trace.load(Ordering::SeqCst), detect.trace.0);

    // The Chrome export is valid JSON and carries those spans.
    let export = s.export_chrome_trace();
    let parsed = Value::parse(&export).expect("export parses");
    let events = parsed.get("traceEvents").and_then(Value::as_arr).expect("traceEvents array");
    let names: Vec<&str> =
        events.iter().filter_map(|e| e.get("name").and_then(Value::as_str)).collect();
    for expected in ["detect:xy", "condition:watch_xy", "action:watch_xy", "primitive:x"] {
        assert!(names.contains(&expected), "export missing {expected}");
    }
    // Constituent links surface as flow-event pairs.
    assert!(events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("s")));
    assert!(events.iter().any(|e| e.get("ph").and_then(Value::as_str) == Some("f")));
}

/// A trace started on the application thread must survive the detector
/// service's queue hop: detections coming back over the async channel
/// carry the enqueuing thread's trace id.
#[test]
fn trace_id_survives_threaded_detector_queue() {
    let (det, store) = traced_detector(11);
    det.declare_primitive("ev", "C", EventModifier::End, SIG, PrimTarget::AnyInstance).unwrap();
    let seq = det.define_named("evev", &parse_event_expr("ev ; ev").unwrap()).unwrap();
    det.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
    let svc = DetectorService::spawn(det);

    // Ambient span on the caller thread, as a rule action would have.
    let trace = store.new_trace();
    let root = store.start(trace, None, "action", Arc::from("caller"));
    let root_ctx = root.ctx;
    {
        let _guard = span::push_current(root_ctx);
        for _ in 0..2 {
            svc.signal_async(Signal::Method {
                class: "C".into(),
                sig: SIG.into(),
                edge: EventModifier::End,
                oid: 1,
                params: Vec::new(),
                txn: Some(1),
            });
        }
    }
    store.finish(root, 0, Vec::new());

    let d = svc
        .detections()
        .recv_timeout(std::time::Duration::from_secs(5))
        .expect("composite detection");
    let occ_span = d.occurrence.span.expect("occurrence traced");
    assert_eq!(occ_span.trace, trace, "trace id crossed the service queue");

    // Both signal spans processed on the worker thread are children of the
    // caller's root span.
    let signals: Vec<SpanRecord> =
        store.trace(trace).into_iter().filter(|s| s.kind == "signal").collect();
    assert_eq!(signals.len(), 2);
    assert!(signals.iter().all(|s| s.parent == Some(root_ctx.span)));
}

/// Constituent links must be recorded in all four parameter contexts; the
/// detect span's links always equal its occurrence's parameter list.
#[test]
fn constituent_links_in_all_four_contexts() {
    for (ctx, expected_min) in [
        (ParamContext::Recent, 2),
        (ParamContext::Chronicle, 2),
        (ParamContext::Continuous, 2),
        (ParamContext::Cumulative, 2),
    ] {
        let (det, store) = traced_detector(7);
        det.declare_primitive("a", "A", EventModifier::End, SIG, PrimTarget::AnyInstance).unwrap();
        det.declare_primitive("b", "B", EventModifier::End, SIG, PrimTarget::AnyInstance).unwrap();
        let and = det.define_named("ab", &parse_event_expr("a ^ b").unwrap()).unwrap();
        det.subscribe(and, ctx, 1).unwrap();

        let fire =
            |class: &str| det.notify_method(class, SIG, EventModifier::End, 1, Vec::new(), Some(1));
        let mut dets = fire("A");
        dets.extend(fire("A")); // second `a`: Cumulative folds both in
        dets.extend(fire("B"));
        assert!(!dets.is_empty(), "{ctx:?}: composite detected");

        let all = store.snapshot();
        for d in &dets {
            let occ = &d.occurrence;
            let occ_span = occ.span.unwrap_or_else(|| panic!("{ctx:?}: occurrence has a span"));
            let detect = find_span(&all, occ_span);
            assert_eq!(detect.kind, "detect");
            assert!(
                detect.links.len() >= expected_min,
                "{ctx:?}: wanted >= {expected_min} links, got {}",
                detect.links.len()
            );
            // Every constituent occurrence's span is among the links, and
            // the recorded context tag matches.
            for c in occ.param_list() {
                let c_span = c.span.unwrap_or_else(|| panic!("{ctx:?}: constituent has a span"));
                assert!(detect.links.contains(&c_span), "{ctx:?}: constituent span linked");
            }
            match detect.field("context") {
                Some(sentinel_core::obs::Field::Str(s)) => {
                    assert_eq!(&**s, format!("{ctx:?}").to_lowercase())
                }
                other => panic!("{ctx:?}: context field missing: {other:?}"),
            }
        }
    }
}

/// A cascading rule action (re-raising an event) extends the same trace,
/// and the cascaded rule's spans carry the incremented depth.
#[test]
fn cascaded_firing_extends_trace_with_depth() {
    let s = Sentinel::in_memory();
    s.set_tracing(true);
    s.detector().declare_explicit("first");
    s.detector().declare_explicit("second");
    let s2 = s.clone();
    s.define_rule(
        "r_first",
        "first",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            s2.raise(inv.txn.map(sentinel_core::storage::TxnId), "second", Vec::new()).unwrap();
        }),
        RuleOptions::default(),
    )
    .unwrap();
    s.define_rule(
        "r_second",
        "second",
        Arc::new(|_| true),
        Arc::new(|_| {}),
        RuleOptions::default(),
    )
    .unwrap();

    let t = s.begin().unwrap();
    s.raise(Some(t), "first", Vec::new()).unwrap();
    s.commit(t).unwrap();

    let all = s.trace_store().snapshot();
    let a1 = all.iter().find(|s| s.kind == "action" && &*s.name == "r_first").unwrap();
    let a2 = all.iter().find(|s| s.kind == "action" && &*s.name == "r_second").unwrap();
    assert_eq!(a1.trace, a2.trace, "cascade stays in one trace");
    assert_eq!(a1.depth, 0);
    assert_eq!(a2.depth, 1, "cascaded rule runs at depth 1");
    // The cascaded signal is a child of the first action's span.
    let sig2 = all.iter().find(|s| s.kind == "signal" && &*s.name == "second").unwrap();
    assert_eq!(sig2.parent, Some(a1.span));
}

/// WAL forces and page writes performed inside a rule action are tagged
/// as children of the action span.
#[test]
fn storage_io_inside_action_is_tagged() {
    let s = Sentinel::in_memory();
    s.set_tracing(true);
    s.detector().declare_explicit("persist");
    let s2 = s.clone();
    s.define_rule(
        "r_persist",
        "persist",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            if let Some(txn) = inv.txn {
                let state = sentinel_core::oodb::ObjectState::new("REACTIVE");
                s2.create_object(sentinel_core::storage::TxnId(txn), &state).unwrap();
            }
            s2.db().engine().checkpoint().unwrap();
        }),
        RuleOptions::default(),
    )
    .unwrap();

    let t = s.begin().unwrap();
    s.raise(Some(t), "persist", Vec::new()).unwrap();
    s.commit(t).unwrap();

    let all = s.trace_store().snapshot();
    let act = all.iter().find(|s| s.kind == "action" && &*s.name == "r_persist").unwrap();
    let force = all.iter().find(|s| s.kind == "wal_force").expect("wal_force span");
    let write = all.iter().find(|s| s.kind == "page_write").expect("page_write span");
    for io in [force, write] {
        assert_eq!(io.trace, act.trace, "storage I/O joins the action's trace");
        assert_eq!(io.parent, Some(act.span));
    }
}

/// With tracing off (the default), nothing is recorded and occurrences
/// carry no span context.
#[test]
fn tracing_disabled_records_nothing() {
    let s = Sentinel::in_memory();
    s.detector().declare_explicit("quiet");
    s.define_rule("r", "quiet", Arc::new(|_| true), Arc::new(|_| {}), RuleOptions::default())
        .unwrap();
    let t = s.begin().unwrap();
    s.raise(Some(t), "quiet", Vec::new()).unwrap();
    s.commit(t).unwrap();
    assert!(s.trace_store().is_empty());
}
