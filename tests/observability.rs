//! The sentinel-obs layer end-to-end: counter accuracy under threaded rule
//! execution, signal-queue depth under async bursts, and the shape of the
//! combined `Sentinel::stats()` snapshot.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::detector::service::{DetectorService, Signal};
use sentinel_core::detector::LocalEventDetector;
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::Sentinel;

/// Scheduler counters must be exact — not approximate — when rule bodies
/// run on the priority thread pool.
#[test]
fn threaded_mode_counts_every_firing() {
    const RULES: usize = 4;
    const SIGNALS: usize = 25;

    let s = Sentinel::in_memory_with(SentinelConfig {
        mode: ExecutionMode::Threaded { workers: 4 },
        ..SentinelConfig::default()
    });
    s.detector().declare_explicit("tick");
    let ran = Arc::new(AtomicUsize::new(0));
    for i in 0..RULES {
        let r = ran.clone();
        s.define_rule(
            &format!("R{i}"),
            "tick",
            Arc::new(|_| true),
            Arc::new(move |_| {
                r.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default(),
        )
        .unwrap();
    }

    let t = s.begin().unwrap();
    for _ in 0..SIGNALS {
        s.raise(Some(t), "tick", Vec::new()).unwrap();
    }
    let stats = s.stats().scheduler;
    assert_eq!(ran.load(Ordering::SeqCst), RULES * SIGNALS);
    assert_eq!(stats.fired_immediate, (RULES * SIGNALS) as u64);
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.condition.count, stats.fired_immediate, "one condition evaluation per firing");
    s.commit(t).unwrap();
}

/// `signal_async` bursts must register on the queue-depth gauge and every
/// request must be accounted for in the drain-latency histogram.
#[test]
fn async_burst_registers_queue_depth_and_latency() {
    const BURST: u64 = 400;

    let det = Arc::new(LocalEventDetector::new(3));
    det.declare_primitive(
        "ev",
        "C",
        EventModifier::End,
        "void f()",
        sentinel_core::detector::graph::PrimTarget::AnyInstance,
    )
    .unwrap();
    let svc = DetectorService::spawn(det);
    for _ in 0..BURST {
        svc.signal_async(Signal::Method {
            class: "C".into(),
            sig: "void f()".into(),
            edge: EventModifier::End,
            oid: 1,
            params: Vec::new(),
            txn: Some(1),
        });
    }
    // Sync rendezvous: the reply arrives after every queued async signal
    // was handled, but the final counter bump races the reply — wait it out.
    svc.signal_sync(Signal::FlushTxn(1));
    let m = svc.metrics();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while m.processed.get() < BURST + 1 && std::time::Instant::now() < deadline {
        std::thread::yield_now();
    }
    assert_eq!(m.processed.get(), BURST + 1);
    assert!(m.queue_depth.high_watermark() >= 1, "burst never showed up in the gauge");
    let lat = m.drain_latency_ns.snapshot();
    assert_eq!(lat.count, BURST + 1);
    assert!(lat.max > 0);
}

/// Golden test for the snapshot shape the `beast` bench and external
/// consumers parse: key order and nesting are part of the contract.
#[test]
fn stats_snapshot_shape_is_stable() {
    let s = Sentinel::in_memory();
    s.detector().declare_explicit("go");
    let ran = Arc::new(AtomicUsize::new(0));
    let r = ran.clone();
    s.define_rule(
        "shape",
        "go",
        Arc::new(|_| true),
        Arc::new(move |_| {
            r.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    // An object write drives the heap → buffer pool → WAL paths.
    s.create_object(t, &sentinel_core::oodb::ObjectState::new("REACTIVE")).unwrap();
    s.raise(Some(t), "go", Vec::new()).unwrap();
    s.commit(t).unwrap();
    assert_eq!(ran.load(Ordering::SeqCst), 1);

    let stats = s.stats();
    let json = stats.to_json();
    // Non-zero activity in every subsystem (the ISSUE acceptance check).
    assert!(json.get("detector").and_then(|d| d.get("signals")).and_then(|v| v.as_u64()) > Some(0));
    assert!(stats.scheduler.fired_immediate > 0);
    assert!(stats.storage.wal.appends > 0);
    assert!(stats.storage.buffer.hits + stats.storage.buffer.misses > 0);

    // Shape: fixed top-level ordering and the nested section keys.
    let text = json.to_string();
    assert!(text.starts_with(r#"{"detector":{"signals":"#), "got: {text}");
    let det_pos = text.find(r#""detector""#).unwrap();
    let sched_pos = text.find(r#""scheduler""#).unwrap();
    let storage_pos = text.find(r#""storage""#).unwrap();
    let bus_pos = text.find(r#""trace_bus""#).unwrap();
    assert!(det_pos < sched_pos && sched_pos < storage_pos && storage_pos < bus_pos);
    for key in [
        r#""per_event""#,
        r#""nodes""#,
        r#""flush_calls""#,
        r#""fired""#,
        r#""per_priority""#,
        r#""condition""#,
        r#""action""#,
        r#""panics""#,
        r#""p50_ns""#,
        r#""p95_ns""#,
        r#""p99_ns""#,
        r#""wal""#,
        r#""appends""#,
        r#""buffer""#,
        r#""hit_ratio""#,
        r#""emitted""#,
        r#""dropped""#,
        r#""subscribers""#,
    ] {
        assert!(text.contains(key), "snapshot lost key {key}: {text}");
    }
    // Display renders the same JSON.
    assert_eq!(stats.to_string(), text);
}
