//! End-to-end tests of the sentinel-net client/server subsystem over real
//! loopback sockets: concurrent clients with exact signal accounting,
//! pipelining, malformed-input robustness, backpressure, the async signal
//! path, graceful shutdown draining, and cross-process trace stitching.
//!
//! Every case runs against **both transport backends** — the epoll
//! reactor and the thread-per-connection reference path — so the two
//! stay behaviorally identical (one conformance suite, two transports).

use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sentinel_core::Sentinel;
use sentinel_net::protocol::{self, Frame, Opcode};
use sentinel_net::{ClientError, NetServer, RuleSpec, SentinelClient, ServerConfig};
use sentinel_obs::json;
use sentinel_obs::span::REMOTE_TRACE_BIT;

/// Which transport serves the sockets in a test run.
#[derive(Clone, Copy, Debug)]
enum Backend {
    /// Epoll event loops (the default in production).
    Reactor,
    /// One OS thread per connection (the portable reference path).
    Threaded,
}

const BACKENDS: [Backend; 2] = [Backend::Reactor, Backend::Threaded];

impl Backend {
    fn apply(self, cfg: &mut ServerConfig) {
        cfg.event_loops = match self {
            Backend::Reactor => 2,
            Backend::Threaded => 0,
        };
    }
}

fn start_server(
    backend: Backend,
    configure: impl FnOnce(&mut ServerConfig),
) -> (Arc<Sentinel>, NetServer, String) {
    let sentinel = Sentinel::in_memory();
    let mut cfg = ServerConfig::default();
    backend.apply(&mut cfg);
    configure(&mut cfg);
    let server = NetServer::start(sentinel.serve_handle(), cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    (sentinel, server, addr)
}

fn stat_u64(stats: &json::Value, path: &[&str]) -> u64 {
    let mut v = stats;
    for key in path {
        match v.get(key) {
            Some(next) => v = next,
            None => return 0,
        }
    }
    v.as_u64().unwrap_or(0)
}

/// Installs the SEQ + cascade workload used by the load generator:
/// `pair = seq_a ; seq_b`, a rule raising `cascade` per pair, and a rule
/// counting the cascades server-side.
fn define_pair_workload(admin: &SentinelClient) {
    admin.define_event("seq_a", None).unwrap();
    admin.define_event("seq_b", None).unwrap();
    admin.define_event("cascade", None).unwrap();
    admin.define_event("pair", Some("seq_a ; seq_b")).unwrap();
    admin
        .define_rule(&RuleSpec::raise("pair_watch", "pair", "cascade").context("chronicle"))
        .unwrap();
    admin.define_rule(&RuleSpec::count("cascade_count", "cascade")).unwrap();
}

/// The headline guarantee: eight concurrent clients hammer the server and
/// not one signal is lost — the server-side fired-rule count equals
/// exactly what the clients sent.
#[test]
fn eight_concurrent_clients_lose_no_signals() {
    for backend in BACKENDS {
        eight_concurrent_clients_case(backend);
    }
}

fn eight_concurrent_clients_case(backend: Backend) {
    const CLIENTS: usize = 8;
    const ITERS: usize = 40;
    let (_sentinel, server, addr) = start_server(backend, |_| {});
    let admin = SentinelClient::connect(&addr, "admin").unwrap();
    define_pair_workload(&admin);

    let threads: Vec<_> = (0..CLIENTS)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client =
                    SentinelClient::connect(&addr, &format!("worker-{i}")).expect("connect");
                let mut pairs = 0u64;
                for _ in 0..ITERS {
                    // `a` opens a pair, `b` closes it; only `b` detects.
                    assert_eq!(client.signal_sync("seq_a", &[], None).unwrap(), 0);
                    pairs += client.signal_sync("seq_b", &[], None).unwrap();
                }
                pairs
            })
        })
        .collect();
    let pairs_observed: u64 = threads.into_iter().map(|t| t.join().unwrap()).sum();

    let expected = (CLIENTS * ITERS) as u64;
    assert_eq!(pairs_observed, expected, "[{backend:?}] every seq_b must close exactly one pair");
    let stats = admin.stats().unwrap();
    // pair_watch + cascade_count both fire once per pair.
    assert_eq!(stat_u64(&stats, &["scheduler", "fired", "immediate"]), 2 * expected);
    assert_eq!(stat_u64(&stats, &["rule_hits", "cascade_count"]), expected);
    assert_eq!(stat_u64(&stats, &["net", "decode_errors"]), 0);
    assert_eq!(stat_u64(&stats, &["net", "sessions"]), (CLIENTS + 1) as u64);
    drop(admin);
    server.shutdown();
}

/// One connection, many outstanding requests: responses are matched back
/// by request id no matter the order `wait` is called in.
#[test]
fn pipelined_requests_resolve_by_id() {
    for backend in BACKENDS {
        let (_sentinel, _server, addr) = start_server(backend, |_| {});
        let client = SentinelClient::connect(&addr, "pipeliner").unwrap();
        let pendings: Vec<_> = (0..16u64)
            .map(|i| {
                let payload = json::Value::obj([("n", json::Value::UInt(i))]);
                (i, client.send(Opcode::Ping, payload).unwrap())
            })
            .collect();
        // Wait newest-first to prove matching is by id, not arrival order.
        for (i, pending) in pendings.into_iter().rev() {
            let reply = pending.wait().unwrap();
            assert_eq!(reply.get("n").and_then(json::Value::as_u64), Some(i), "[{backend:?}]");
        }
    }
}

/// Garbage on the socket gets a typed error frame and a hangup — the
/// server neither panics nor stalls, and keeps serving other clients.
#[test]
fn malformed_frames_get_error_and_hangup() {
    for backend in BACKENDS {
        malformed_frames_case(backend);
    }
}

fn malformed_frames_case(backend: Backend) {
    let (_sentinel, server, addr) = start_server(backend, |_| {});

    // Corrupt magic.
    let mut raw = TcpStream::connect(&addr).unwrap();
    std::io::Write::write_all(&mut raw, b"XXXXXXXXXXXXXXXXXXXX").unwrap();
    let (frame, _) = protocol::read_frame(&mut raw).expect("error frame before hangup");
    assert_eq!(frame.opcode, Opcode::Err);
    assert_eq!(frame.payload.get("code").and_then(json::Value::as_str), Some("decode"));

    // Valid header, absurd payload length.
    let mut raw = TcpStream::connect(&addr).unwrap();
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&protocol::MAGIC);
    bytes.push(protocol::VERSION);
    bytes.push(Opcode::Ping as u8);
    bytes.extend_from_slice(&7u64.to_le_bytes());
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    std::io::Write::write_all(&mut raw, &bytes).unwrap();
    let (frame, _) = protocol::read_frame(&mut raw).expect("error frame before hangup");
    assert_eq!(frame.opcode, Opcode::Err);

    // Commands before Hello are rejected without closing the connection.
    let mut raw = TcpStream::connect(&addr).unwrap();
    let stats = Frame::new(Opcode::Stats, 1, json::Value::Null);
    protocol::write_frame(&mut raw, &stats).unwrap();
    let (frame, _) = protocol::read_frame(&mut raw).unwrap();
    assert_eq!(frame.opcode, Opcode::Err);
    assert_eq!(frame.payload.get("code").and_then(json::Value::as_str), Some("unauthenticated"));

    // The server is still healthy for well-behaved clients.
    let client = SentinelClient::connect(&addr, "survivor").unwrap();
    client.ping(json::Value::Null).unwrap();
    assert!(server.metrics().snapshot().decode_errors >= 2, "[{backend:?}]");
}

/// Backpressure is explicit: a zero-length session queue answers every
/// async signal with `Busy {"scope": "session"}`, and the connection cap
/// refuses extra clients outright.
#[test]
fn backpressure_and_connection_limits() {
    for backend in BACKENDS {
        let (_sentinel, server, addr) = start_server(backend, |cfg| {
            cfg.max_inflight_per_session = 0;
            cfg.max_connections = 2;
        });
        let admin = SentinelClient::connect(&addr, "admin").unwrap();
        admin.define_event("tick", None).unwrap();

        match admin.signal_async("tick", &[], None) {
            Err(ClientError::Busy { scope }) => assert_eq!(scope, "session"),
            other => panic!("[{backend:?}] expected session Busy, got {other:?}"),
        }
        // Sync signals bypass the session queue entirely.
        admin.signal_sync("tick", &[], None).unwrap();

        let _second = SentinelClient::connect(&addr, "second").unwrap();
        let third = SentinelClient::connect(&addr, "third");
        assert!(third.is_err(), "[{backend:?}] connection over the cap must be refused");
        assert!(server.metrics().snapshot().connections_refused >= 1);
    }
}

/// The async path delivers every accepted signal through the detector
/// service pump — eventually, but exactly once.
#[test]
fn async_signals_all_reach_rules() {
    for backend in BACKENDS {
        async_signals_case(backend);
    }
}

fn async_signals_case(backend: Backend) {
    const PER_CLIENT: usize = 50;
    let (_sentinel, _server, addr) = start_server(backend, |_| {});
    let admin = SentinelClient::connect(&addr, "admin").unwrap();
    admin.define_event("tick", None).unwrap();
    admin.define_rule(&RuleSpec::count("tick_count", "tick")).unwrap();

    let threads: Vec<_> = (0..2)
        .map(|i| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let client =
                    SentinelClient::connect(&addr, &format!("async-{i}")).expect("connect");
                for _ in 0..PER_CLIENT {
                    loop {
                        match client.signal_async("tick", &[], None) {
                            Ok(()) => break,
                            Err(ClientError::Busy { .. }) => {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            Err(e) => panic!("async signal failed: {e}"),
                        }
                    }
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let expected = (2 * PER_CLIENT) as u64;
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let hits = stat_u64(&admin.stats().unwrap(), &["rule_hits", "tick_count"]);
        if hits == expected {
            break;
        }
        assert!(hits < expected, "[{backend:?}] over-delivery: {hits} > {expected}");
        assert!(Instant::now() < deadline, "[{backend:?}] async pump stalled at {hits}/{expected}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// A client-requested shutdown drains everything already accepted: queued
/// async signals are processed before the server's threads join.
#[test]
fn graceful_shutdown_drains_accepted_signals() {
    for backend in BACKENDS {
        const QUEUED: usize = 64;
        let (sentinel, server, addr) = start_server(backend, |_| {});
        let admin = SentinelClient::connect(&addr, "admin").unwrap();
        admin.define_event("tick", None).unwrap();
        admin.define_rule(&RuleSpec::count("tick_count", "tick")).unwrap();
        for _ in 0..QUEUED {
            admin.signal_async("tick", &[], None).unwrap();
        }
        admin.shutdown_server().unwrap();
        server.wait_for_shutdown();

        // All accepted signals went through the rule scheduler before join.
        let stats = sentinel.serve_handle().stats_json();
        assert_eq!(
            stat_u64(&stats, &["scheduler", "fired", "immediate"]),
            QUEUED as u64,
            "[{backend:?}]"
        );
    }
}

/// A trace id stamped on a signal frame shows up server-side as a remote
/// trace (high bit set) whose spans cover the detector work.
#[test]
fn remote_trace_ids_stitch_into_server_traces() {
    for backend in BACKENDS {
        let (sentinel, _server, addr) = start_server(backend, |_| {});
        sentinel.set_tracing(true);
        let client = SentinelClient::connect(&addr, "tracer").unwrap();
        client.define_event("tick", None).unwrap();
        client.signal_sync_traced("tick", &[], None, 42).unwrap();

        let reply = client.trace_summaries().unwrap();
        let traces = reply.get("traces").and_then(json::Value::as_arr).expect("traces array");
        let stitched = traces
            .iter()
            .find(|t| t.get("trace").and_then(json::Value::as_u64) == Some(42 | REMOTE_TRACE_BIT))
            .expect("remote trace adopted server-side");
        assert!(stat_u64(stitched, &["spans"]) >= 1, "[{backend:?}]");
        // The Chrome export carries the same spans for offline viewing.
        let chrome = client.export_chrome_trace().unwrap();
        assert!(chrome.contains("net_signal"));
    }
}

/// The telemetry scrape works over both transports on one port: the
/// `MetricsScrape` opcode returns `{prom, telemetry}`, and a plain HTTP
/// `GET /metrics` (sniffed before frame decoding) serves the same
/// exposition text for `curl`/Prometheus.
#[test]
fn metrics_scrape_over_opcode_and_http() {
    for backend in BACKENDS {
        metrics_scrape_case(backend);
    }
}

fn metrics_scrape_case(backend: Backend) {
    use std::io::{Read as _, Write as _};

    let sentinel = Sentinel::in_memory();
    // Telemetry must be on before the server starts so the net/service
    // sources register into the same registry.
    let registry = sentinel.start_telemetry(Duration::from_secs(3600), 64);
    let mut cfg = ServerConfig::default();
    backend.apply(&mut cfg);
    let server = NetServer::start(sentinel.serve_handle(), cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();

    let admin = SentinelClient::connect(&addr, "admin").unwrap();
    define_pair_workload(&admin);
    admin.signal_sync("seq_a", &[], None).unwrap();
    admin.signal_sync("seq_b", &[], None).unwrap();
    registry.sample_at(100);

    let scrape = admin.metrics_scrape().unwrap();
    let prom = scrape.get("prom").and_then(json::Value::as_str).expect("prom text");
    assert!(prom.contains("# TYPE sentinel_signals_total counter"));
    assert!(prom.contains("sentinel_net_frames_in_total"));
    assert!(prom.contains("sentinel_net_event_loops"));
    assert!(prom.contains("sentinel_service_queue_depth"));
    let telemetry = scrape.get("telemetry").expect("telemetry snapshot");
    let series = telemetry.get("series").expect("series map");
    assert!(series.get("detector.signals").is_some());
    assert!(series.get("net.frames_in").is_some(), "net source feeds the shared registry");

    // A scraper's plain HTTP GET on the same port.
    let mut http = TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(
        body.starts_with("HTTP/1.1 200 OK"),
        "[{backend:?}] got: {}",
        &body[..body.len().min(80)]
    );
    assert!(body.contains("Connection: close"));
    assert!(body.contains("sentinel_signals_total"));

    // The JSON ring snapshot, and a 404 for anything else.
    let mut http = TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /metrics.json HTTP/1.1\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 200 OK"));
    let json_body = body.split("\r\n\r\n").nth(1).expect("body");
    let parsed = json::Value::parse(json_body).expect("valid scrape JSON");
    assert!(parsed.get("series").is_some());

    let mut http = TcpStream::connect(&addr).unwrap();
    http.write_all(b"GET /nope HTTP/1.1\r\n\r\n").unwrap();
    let mut body = String::new();
    http.read_to_string(&mut body).unwrap();
    assert!(body.starts_with("HTTP/1.1 404"));
}
