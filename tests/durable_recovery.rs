//! Durable recovery equivalence: a Sentinel crashed at an arbitrary point
//! and reopened from its data directory must behave — for every event
//! signalled after the crash — exactly like a system that never crashed.
//!
//! The workload mixes the two halves of a composite event (so crashes land
//! mid-detection), transaction-tagged parameters, and periodic
//! `commit-transaction` signals (so the replayed event-graph flush is
//! exercised), and rules observe the composite in all four parameter
//! contexts. Equivalence is judged on what rules actually see: fire counts
//! and the flattened constituent parameters of the last firing.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

use sentinel_core::detector::Value;
use sentinel_core::durable_store::{DurableOptions, FsyncPolicy};
use sentinel_core::obs::json;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::Sentinel;

const CONTEXTS: [&str; 4] = ["recent", "chronicle", "continuous", "cumulative"];

fn tmp(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinel-durrec-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn opts(checkpoint_every: u64) -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        // Tiny segments so multi-event runs also exercise rotation.
        segment_bytes: 256,
        checkpoint_every,
        ..DurableOptions::default()
    }
}

fn rule_spec(ctx: &str) -> json::Value {
    json::Value::obj([
        ("name", json::Value::str(format!("r_{ctx}"))),
        ("event", json::Value::str("ab")),
        ("context", json::Value::str(ctx)),
        ("action", json::Value::obj([("action", json::Value::str("count"))])),
    ])
}

/// Identical DDL for the reference and the durable system: two explicit
/// primitives, their sequence composite, and one counting rule per
/// parameter context.
fn ddl(s: &Arc<Sentinel>) {
    s.declare_explicit("a").unwrap();
    s.declare_explicit("b").unwrap();
    s.define_event("ab", "(a ; b)").unwrap();
    for ctx in CONTEXTS {
        s.define_rule_spec(&rule_spec(ctx)).unwrap();
    }
}

/// One workload step: `(event name, x parameter, txn id)`.
type Step = (&'static str, i64, Option<u64>);

/// Deterministic pseudo-random mix of `a` / `b` signals (some inside
/// transactions 1-2) with a `commit-transaction` every tenth step.
fn workload(n: usize) -> Vec<Step> {
    let mut out = Vec::new();
    let mut x = 7u64;
    for i in 0..n {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let roll = x >> 33;
        if i > 0 && i % 10 == 0 {
            out.push(("commit-transaction", 0, Some(1 + roll % 2)));
            continue;
        }
        let name = if roll % 3 == 0 { "b" } else { "a" };
        let txn = match roll % 4 {
            0 => Some(1),
            1 => Some(2),
            _ => None,
        };
        out.push((name, i as i64, txn));
    }
    out
}

fn signal(s: &Arc<Sentinel>, steps: &[Step]) {
    let h = s.serve_handle();
    for (name, x, txn) in steps {
        let params = if *name == "commit-transaction" {
            Vec::new()
        } else {
            vec![(Arc::from("x"), Value::Int(*x))]
        };
        h.signal(name, params, *txn);
    }
}

fn hits(s: &Arc<Sentinel>) -> BTreeMap<String, u64> {
    s.stats().rule_hits
}

/// Runs the whole workload on a never-crashed in-memory system, returning
/// the fire counts at the crash point, at the end, and the final
/// last-firing parameter renderings.
fn reference(
    steps: &[Step],
    k: usize,
) -> (BTreeMap<String, u64>, BTreeMap<String, u64>, BTreeMap<String, String>) {
    let s = Sentinel::in_memory();
    ddl(&s);
    signal(&s, &steps[..k]);
    let at_k = hits(&s);
    signal(&s, &steps[k..]);
    (at_k, hits(&s), s.stats().rule_last)
}

#[test]
fn crash_anywhere_then_recover_matches_uncrashed_run() {
    let steps = workload(40);
    for checkpoint_every in [0u64, 3, 8] {
        for k in [0usize, 1, 7, 20, 33, 40] {
            let dir = tmp(&format!("prop-{checkpoint_every}-{k}"));
            // Process 1: define everything, signal the prefix, crash (drop
            // without flush — FsyncPolicy::Always has already persisted
            // every record).
            {
                let (s, _) =
                    Sentinel::open_durable(&dir, SentinelConfig::default(), opts(checkpoint_every))
                        .unwrap();
                ddl(&s);
                signal(&s, &steps[..k]);
            }
            // Process 2: recover, then signal the suffix.
            let (s, report) =
                Sentinel::open_durable(&dir, SentinelConfig::default(), opts(checkpoint_every))
                    .unwrap();
            assert_eq!(report.journal_records, k as u64, "every signal is journaled");
            let tag = report.checkpoint_tag.unwrap_or(0);
            assert_eq!(report.replayed_records, k as u64 - tag, "suffix replay only");
            if checkpoint_every == 0 {
                assert_eq!(report.checkpoint_tag, None, "cadence 0 disables checkpoints");
            }
            signal(&s, &steps[k..]);

            let (ref_at_k, ref_at_n, ref_last) = reference(&steps, k);
            let got = hits(&s);
            for ctx in CONTEXTS {
                let rule = format!("r_{ctx}");
                let want = ref_at_n.get(&rule).copied().unwrap_or(0)
                    - ref_at_k.get(&rule).copied().unwrap_or(0);
                assert_eq!(
                    got.get(&rule).copied().unwrap_or(0),
                    want,
                    "suffix firings of {rule} (ckpt={checkpoint_every}, crash at {k})"
                );
                // Where the suffix fired at all, the last firing's
                // constituent parameters must match — composites started
                // before the crash complete with their pre-crash halves.
                if want > 0 {
                    assert_eq!(
                        s.stats().rule_last.get(&rule),
                        ref_last.get(&rule),
                        "last firing of {rule} (ckpt={checkpoint_every}, crash at {k})"
                    );
                }
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// Group-commit matrix: every fsync policy, with and without an
/// accumulation window, must recover a drop-without-flush crash to the
/// same state. An in-process crash loses nothing the OS already holds, so
/// the journal is complete under every policy — `EveryN`/`Never` only
/// widen the loss window for real power cuts — and the post-recovery
/// suffix must match the uncrashed reference exactly.
#[test]
fn crash_recovery_matches_across_fsync_policies_and_group_windows() {
    let steps = workload(40);
    let k = 23usize;
    let policies = [
        ("always", FsyncPolicy::Always),
        ("every3", FsyncPolicy::EveryN(3)),
        ("never", FsyncPolicy::Never),
    ];
    for (tag, fsync) in policies {
        for window_us in [0u64, 200] {
            let dir = tmp(&format!("gc-{tag}-{window_us}"));
            let o = DurableOptions {
                fsync,
                segment_bytes: 256,
                checkpoint_every: 3,
                group_window_us: window_us,
                ..DurableOptions::default()
            };
            {
                let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), o).unwrap();
                ddl(&s);
                signal(&s, &steps[..k]);
            }
            let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), o).unwrap();
            assert_eq!(
                report.journal_records, k as u64,
                "{tag}/{window_us}us: every signal reached the journal"
            );
            signal(&s, &steps[k..]);

            let (ref_at_k, ref_at_n, _) = reference(&steps, k);
            let got = hits(&s);
            for ctx in CONTEXTS {
                let rule = format!("r_{ctx}");
                let want = ref_at_n.get(&rule).copied().unwrap_or(0)
                    - ref_at_k.get(&rule).copied().unwrap_or(0);
                assert_eq!(
                    got.get(&rule).copied().unwrap_or(0),
                    want,
                    "suffix firings of {rule} ({tag}, window {window_us}us)"
                );
            }
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

/// A torn tail on the global fence log orphans exactly the records of the
/// epoch the lost fence would have opened — and nothing earlier. Here the
/// last `commit-transaction` fence is torn mid-frame, so the one event
/// signalled after it is "from a lost future" and must be dropped, while
/// both earlier events (including one in the now-torn fence's own epoch)
/// survive and keep detecting.
#[test]
fn torn_fence_record_orphans_only_future_epochs() {
    let dir = tmp("tornfence");
    {
        let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts(0)).unwrap();
        ddl(&s);
        let h = s.serve_handle();
        h.signal("a", vec![(Arc::from("x"), Value::Int(1))], None);
        h.signal("commit-transaction", Vec::new(), Some(1));
        h.signal("a", vec![(Arc::from("x"), Value::Int(2))], None);
        h.signal("commit-transaction", Vec::new(), Some(1));
        h.signal("b", vec![(Arc::from("x"), Value::Int(3))], None);
    }
    // Tear the final fence frame mid-write (the fence log is append-only:
    // 8-byte header then framed records, so chopping 5 bytes corrupts
    // exactly the last fence).
    let fences = dir.join("fences.log");
    let len = std::fs::metadata(&fences).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(&fences).unwrap().set_len(len - 5).unwrap();

    let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts(0)).unwrap();
    // Five records were journaled (`commit-transaction` signals are
    // records too); only the `b` signalled after the torn fence sits in
    // the never-opened epoch and is dropped.
    assert_eq!(report.journal_records, 4, "the post-torn-fence event is dropped, nothing else");
    assert!(report.truncated_bytes > 0, "the torn fence counts as truncated");
    // The surviving prefix still detects: a fresh `b` completes `ab` with
    // the second (kept) `a` initiator.
    s.serve_handle().signal("b", vec![(Arc::from("x"), Value::Int(9))], None);
    assert_eq!(hits(&s).get("r_recent").copied().unwrap_or(0), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite (a) regression: replay must leave the logical clock *past*
/// every replayed timestamp, so post-recovery occurrences get fresh
/// timestamps identical to the uncrashed run's — never reused ones.
#[test]
fn replay_resyncs_logical_clock() {
    let dir = tmp("clock");
    let steps = workload(17);
    {
        let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts(5)).unwrap();
        ddl(&s);
        signal(&s, &steps);
    }
    let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts(5)).unwrap();

    let reference = Sentinel::in_memory();
    ddl(&reference);
    signal(&reference, &steps);

    // The next occurrence on both systems must carry the same timestamp
    // and complete the composite with the same constituents.
    let p = vec![(Arc::from("x"), Value::Int(99))];
    let got = s.detector().signal_explicit("b", p.clone(), None);
    let want = reference.detector().signal_explicit("b", p, None);
    assert!(!want.is_empty(), "workload leaves a half-detected composite");
    assert_eq!(got.len(), want.len());
    for (g, w) in got.iter().zip(want.iter()) {
        assert_eq!(g.occurrence.at, w.occurrence.at, "clock resynced past replayed history");
        assert_eq!(format!("{}", g.occurrence), format!("{}", w.occurrence));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rules disabled (or dropped) before the crash stay that way after
/// recovery, and re-enabling works on the recovered system.
#[test]
fn rule_admin_survives_restart() {
    let dir = tmp("admin");
    {
        let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts(0)).unwrap();
        ddl(&s);
        s.disable_rule("r_recent").unwrap();
        s.drop_rule("r_cumulative").unwrap();
    }
    let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts(0)).unwrap();
    let rules = s.rules();
    let recent = rules.lookup("r_recent").expect("disabled rule still defined");
    assert!(!rules.is_enabled(recent), "disable persisted");
    assert!(rules.lookup("r_cumulative").is_none(), "drop persisted");
    s.enable_rule("r_recent").unwrap();
    assert!(rules.is_enabled(recent));

    // The re-enable is itself journaled: a further restart keeps it.
    drop(s);
    let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts(0)).unwrap();
    let recent = s.rules().lookup("r_recent").unwrap();
    assert!(s.rules().is_enabled(recent), "re-enable persisted");
    let _ = std::fs::remove_dir_all(&dir);
}
