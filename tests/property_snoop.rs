//! Property-based tests on the Snoop language layer: the parser round-trips
//! every expressible event expression, and structural invariants hold.

use proptest::prelude::*;

use sentinel_core::snoop::ast::EventExpr;
use sentinel_core::snoop::parse_event_expr;

/// Strategy for arbitrary event expressions (bounded depth).
fn expr_strategy() -> impl Strategy<Value = EventExpr> {
    let leaf = prop_oneof![
        "[a-z][a-z0-9_]{0,6}".prop_map(EventExpr::Ref),
        ("[A-Z][A-Z]{0,3}", "[a-z][a-z0-9]{0,4}")
            .prop_map(|(c, e)| EventExpr::Ref(format!("{c}.{e}"))),
    ];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| EventExpr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| EventExpr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| EventExpr::Seq(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| EventExpr::Not {
                inner: Box::new(a),
                start: Box::new(b),
                end: Box::new(c),
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                EventExpr::Aperiodic { start: Box::new(a), inner: Box::new(b), end: Box::new(c) }
            }),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| {
                EventExpr::AperiodicStar {
                    start: Box::new(a),
                    inner: Box::new(b),
                    end: Box::new(c),
                }
            }),
            (inner.clone(), 1u64..1000, inner.clone()).prop_map(|(a, p, c)| {
                EventExpr::Periodic { start: Box::new(a), period: p, end: Box::new(c) }
            }),
            (inner.clone(), 1u64..1000, inner.clone()).prop_map(|(a, p, c)| {
                EventExpr::PeriodicStar { start: Box::new(a), period: p, end: Box::new(c) }
            }),
            (inner.clone(), 1u64..1000)
                .prop_map(|(a, d)| EventExpr::Plus { inner: Box::new(a), delta: d }),
            (prop::collection::vec(inner.clone(), 2..5)).prop_map(|events| {
                let m = 1 + (events.len() as u32 - 1) / 2;
                EventExpr::Any { m, events }
            }),
        ]
    })
}

proptest! {
    /// Display → parse is the identity on the AST.
    #[test]
    fn display_parse_roundtrip(expr in expr_strategy()) {
        let rendered = expr.to_string();
        let reparsed = parse_event_expr(&rendered)
            .unwrap_or_else(|e| panic!("`{rendered}` failed to parse: {e}"));
        prop_assert_eq!(expr, reparsed);
    }

    /// Parsing is deterministic and idempotent through a second round-trip.
    #[test]
    fn double_roundtrip_stable(expr in expr_strategy()) {
        let once = parse_event_expr(&expr.to_string()).unwrap();
        let twice = parse_event_expr(&once.to_string()).unwrap();
        prop_assert_eq!(once, twice);
    }

    /// `refs()` is non-empty and consistent with the rendered text.
    #[test]
    fn refs_appear_in_rendering(expr in expr_strategy()) {
        let rendered = expr.to_string();
        let refs = expr.refs();
        prop_assert!(!refs.is_empty());
        for r in refs {
            prop_assert!(rendered.contains(r), "ref `{}` missing from `{}`", r, rendered);
        }
    }

    /// Operator count grows strictly when wrapping.
    #[test]
    fn operator_count_monotone(expr in expr_strategy()) {
        let wrapped = EventExpr::And(Box::new(expr.clone()), Box::new(EventExpr::r("zz")));
        prop_assert_eq!(wrapped.operator_count(), expr.operator_count() + 1);
    }

    /// Garbage containing unbalanced parens never parses.
    #[test]
    fn unbalanced_never_parses(name in "[a-z]{1,5}") {
        // NB: computed first because prop_assert! stringifies its condition
        // into a format string, so `{}` literals cannot appear inside it.
        let unopened = parse_event_expr(&format!("({}", name));
        let unclosed = parse_event_expr(&format!("{})", name));
        let dangling = parse_event_expr(&format!("{} ^", name));
        prop_assert!(unopened.is_err());
        prop_assert!(unclosed.is_err());
        prop_assert!(dangling.is_err());
    }
}
