//! Differential conformance harness for sharded parallel detection.
//!
//! A seeded workload generator produces one randomized stream of primitive
//! signals (explicit and method events, with parameters and transactions),
//! transaction flushes, logical-time advances, subscription flips, and
//! mid-stream DDL that bridges previously disjoint event-graph components.
//! The identical stream is driven through
//!
//! * a **serial reference**: one `LocalEventDetector` called inline from a
//!   single thread (timestamps drawn live from the logical clock), and
//! * the **sharded candidate**: the same detector behind a
//!   [`DetectorPool`] of N workers, signals carrying the pre-computed
//!   timestamps the serial run is known to draw (`signal_async_at`).
//!
//! The harness then asserts that the two executions are *indistinguishable*:
//! the multisets of detected occurrences — event, parameter context,
//! subscribers, logical timestamps, transaction ids, parameters, and the
//! full recursive constituent trees — are identical, and the final
//! event-graph snapshots are byte-for-byte equal. Divergence in any
//! context (Recent, Chronicle, Continuous, Cumulative), any flush window,
//! or any operator's buffered state fails the run.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use rand::prelude::*;
use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::log::LoggedEvent;
use sentinel_core::detector::service::Signal;
use sentinel_core::detector::{
    Detection, DetectorPool, DetectorStats, EventId, FenceKind, LocalEventDetector, Occurrence,
    SubscriberId, Value,
};
use sentinel_core::durable_store::{DurableEngine, DurableOptions, FsyncPolicy};
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::{parse_event_expr, ParamContext};
use sentinel_core::JournalSink;

/// Disjoint explicit-event components in the generated graph.
const COMPONENTS: usize = 5;
/// Snoop operators instantiated per component (see [`component_exprs`]).
const KINDS: usize = 6;
/// Composites in subscription order: `COMPONENTS * KINDS` plus the
/// method-class sequence.
const NCOMP: usize = COMPONENTS * KINDS + 1;
/// Workload length before the closing time advance.
const OPS: usize = 360;

const METHOD_SIG: &str = "void m()";

fn leaf_names() -> Vec<String> {
    let mut names = Vec::new();
    for i in 0..COMPONENTS {
        for stem in ["a", "b", "c"] {
            names.push(format!("{stem}{i}"));
        }
    }
    names
}

/// The operator zoo of component `i`, all over its three explicit leaves.
fn component_exprs(i: usize) -> Vec<(String, String)> {
    vec![
        (format!("seq{i}"), format!("a{i} ; b{i}")),
        (format!("and{i}"), format!("a{i} ^ c{i}")),
        (format!("or{i}"), format!("b{i} | c{i}")),
        (format!("any{i}"), format!("ANY(2, a{i}, b{i}, c{i})")),
        (format!("plus{i}"), format!("PLUS(a{i}, 5)")),
        (format!("not{i}"), format!("NOT(c{i})[a{i}, b{i}]")),
    ]
}

fn base_sub(comp: usize, ctx: usize) -> SubscriberId {
    (1000 + comp * 4 + ctx) as SubscriberId
}

fn flip_sub(comp: usize, ctx: usize) -> SubscriberId {
    (5000 + comp * 4 + ctx) as SubscriberId
}

fn bridge_sub(idx: usize, ctx: usize) -> SubscriberId {
    (9000 + idx * 4 + ctx) as SubscriberId
}

/// Identical DDL program for reference and candidate: declares every leaf,
/// defines every composite, and subscribes each in all four contexts.
/// Returns the composites in [`Op::Flip`] target order.
fn build(det: &LocalEventDetector) -> Vec<EventId> {
    for name in leaf_names() {
        det.declare_explicit(&name);
    }
    det.declare_primitive("m", "M", EventModifier::End, METHOD_SIG, PrimTarget::AnyInstance)
        .unwrap();
    let mut comps = Vec::new();
    for i in 0..COMPONENTS {
        for (name, expr) in component_exprs(i) {
            comps.push(det.define_named(&name, &parse_event_expr(&expr).unwrap()).unwrap());
        }
    }
    comps.push(det.define_named("mseq", &parse_event_expr("m ; m").unwrap()).unwrap());
    assert_eq!(comps.len(), NCOMP);
    for (ci, &id) in comps.iter().enumerate() {
        for (xi, &ctx) in ParamContext::ALL.iter().enumerate() {
            det.subscribe(id, ctx, base_sub(ci, xi)).unwrap();
        }
    }
    comps
}

/// One step of the generated workload. Signals carry the timestamp the
/// serial reference will draw from its live clock at that point, so the
/// pooled run can pre-assign it.
#[derive(Debug, Clone)]
enum Op {
    Explicit {
        name: String,
        params: Vec<(Arc<str>, Value)>,
        txn: Option<u64>,
        ts: u64,
    },
    Method {
        oid: u64,
        txn: Option<u64>,
        ts: u64,
    },
    Flush(u64),
    Advance(u64),
    /// Toggle the flip subscriber of composite `comp` in context `ctx`.
    Flip {
        comp: usize,
        ctx: usize,
        on: bool,
    },
    /// Define `bridge{idx} = seq{left} ; seq{right}` mid-stream (a shard
    /// merge) and subscribe it in all four contexts.
    Bridge {
        idx: usize,
        left: usize,
        right: usize,
    },
}

fn generate(seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    let leaves = leaf_names();
    let mut cur: u64 = 0; // mirrors the serial reference's logical clock
    let mut flip_on = [false; NCOMP * 4];
    let mut bridges = 0usize;
    let mut ops = Vec::with_capacity(OPS + 1);
    let txn_of = |rng: &mut StdRng| {
        if rng.gen_bool(0.6) {
            Some(rng.gen_range(0u64..3))
        } else {
            None
        }
    };
    for step in 0..OPS {
        let roll = rng.gen_range(0u32..100);
        if roll < 74 {
            cur += 1;
            if rng.gen_bool(0.12) {
                ops.push(Op::Method {
                    oid: rng.gen_range(1u64..4),
                    txn: txn_of(&mut rng),
                    ts: cur,
                });
            } else {
                let name = leaves[rng.gen_range(0..leaves.len())].clone();
                let params = if rng.gen_bool(0.3) {
                    vec![(Arc::from("v"), Value::Int(rng.gen_range(0i64..100)))]
                } else {
                    Vec::new()
                };
                ops.push(Op::Explicit { name, params, txn: txn_of(&mut rng), ts: cur });
            }
        } else if roll < 82 {
            ops.push(Op::Flush(rng.gen_range(0u64..3)));
        } else if roll < 90 {
            cur += rng.gen_range(1u64..8);
            ops.push(Op::Advance(cur));
        } else if roll < 96 || bridges >= 2 || step <= OPS / 3 {
            let comp = rng.gen_range(0..NCOMP);
            let ctx = rng.gen_range(0..4usize);
            let on = !flip_on[comp * 4 + ctx];
            flip_on[comp * 4 + ctx] = on;
            ops.push(Op::Flip { comp, ctx, on });
        } else {
            let left = rng.gen_range(0..COMPONENTS);
            let right = (left + rng.gen_range(1..COMPONENTS)) % COMPONENTS;
            ops.push(Op::Bridge { idx: bridges, left, right });
            bridges += 1;
        }
    }
    // Close every pending temporal window so alarm state converges.
    cur += 20;
    ops.push(Op::Advance(cur));
    ops
}

/// Canonical text form of an occurrence tree: event, timestamp,
/// transaction, parameters, and constituents, recursively.
fn canon_occ(o: &Occurrence) -> String {
    let params: Vec<String> = o.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
    let kids: Vec<String> = o.constituents.iter().map(|c| canon_occ(c)).collect();
    format!("{:?}@{}~{:?}[{}]({})", o.event, o.at, o.txn, params.join(","), kids.join(","))
}

/// Canonical text form of one detection (subscribers sorted).
fn canon_det(d: &Detection) -> String {
    let mut subs = d.subscribers.clone();
    subs.sort_unstable();
    format!("{:?}/{:?}/{:?}/{}", d.event, d.context, subs, canon_occ(&d.occurrence))
}

fn canon_all(dets: &[Detection]) -> Vec<String> {
    let mut out: Vec<String> = dets.iter().map(canon_det).collect();
    out.sort();
    out
}

fn apply_ddl(det: &LocalEventDetector, comps: &[EventId], op: &Op) {
    match op {
        Op::Flip { comp, ctx, on } => {
            let c = ParamContext::ALL[*ctx];
            if *on {
                det.subscribe(comps[*comp], c, flip_sub(*comp, *ctx)).unwrap();
            } else {
                det.unsubscribe(comps[*comp], c, flip_sub(*comp, *ctx)).unwrap();
            }
        }
        Op::Bridge { idx, left, right } => {
            let expr = parse_event_expr(&format!("seq{left} ; seq{right}")).unwrap();
            let id = det.define_named(&format!("bridge{idx}"), &expr).unwrap();
            for (xi, &ctx) in ParamContext::ALL.iter().enumerate() {
                det.subscribe(id, ctx, bridge_sub(*idx, xi)).unwrap();
            }
        }
        _ => unreachable!("not a DDL op"),
    }
}

/// Durable-engine options for the journaled matrix: tiny segments so the
/// runs rotate, a real accumulation window so group commit batches, and
/// no checkpoints (recovery must come purely from the merged streams).
fn dopts() -> DurableOptions {
    DurableOptions {
        fsync: FsyncPolicy::Always,
        segment_bytes: 1024,
        checkpoint_every: 0,
        group_window_us: 50,
        ..DurableOptions::default()
    }
}

/// Opens a fresh durable engine over `dir` and attaches its journal sink.
fn attach_journal(det: &LocalEventDetector, dir: &Path) {
    let _ = std::fs::remove_dir_all(dir);
    let (engine, _) = DurableEngine::open(dir, dopts()).expect("open durable engine");
    det.set_event_sink(Arc::new(JournalSink::new(engine)));
}

/// Drives the workload inline on one thread, timestamps drawn live. The
/// mirrored-clock invariant (generator `ts` == the clock's actual draw) is
/// asserted at every signal — it is what licenses pre-assigning the same
/// timestamps to the pooled run. With `durable`, every signal is also
/// journaled through the sharded engine.
fn run_serial(ops: &[Op], durable: Option<&Path>) -> (Vec<String>, Vec<u8>, DetectorStats) {
    let det = LocalEventDetector::new(1);
    let comps = build(&det);
    if let Some(dir) = durable {
        attach_journal(&det, dir);
    }
    assert!(det.shard_count() >= COMPONENTS as u32, "components must start disjoint");
    let mut dets = Vec::new();
    for op in ops {
        match op {
            Op::Explicit { name, params, txn, ts } => {
                dets.extend(det.signal_explicit(name, params.clone(), *txn));
                assert_eq!(det.clock().peek(), *ts, "mirrored clock diverged");
            }
            Op::Method { oid, txn, ts } => {
                dets.extend(det.notify_method(
                    "M",
                    METHOD_SIG,
                    EventModifier::End,
                    *oid,
                    Vec::new(),
                    *txn,
                ));
                assert_eq!(det.clock().peek(), *ts, "mirrored clock diverged");
            }
            Op::Flush(txn) => det.flush_txn(*txn),
            Op::Advance(to) => dets.extend(det.advance_time(*to)),
            ddl => apply_ddl(&det, &comps, ddl),
        }
    }
    let stats = det.stats();
    (canon_all(&dets), det.snapshot_state().encode().to_vec(), stats)
}

/// Drives the identical workload through a [`DetectorPool`] of `workers`
/// threads, pre-assigning the serial run's timestamps. Flushes and time
/// advances are global fences (the pool routes them to a rendezvous
/// barrier); DDL and subscription flips run at explicit barriers so they
/// cut the stream at the same point as in the serial run.
fn run_pool(
    ops: &[Op],
    workers: usize,
    durable: Option<&Path>,
) -> (Vec<String>, Vec<u8>, DetectorStats) {
    let det = Arc::new(LocalEventDetector::new(1));
    let comps = build(&det);
    if let Some(dir) = durable {
        attach_journal(&det, dir);
    }
    let mut pool = DetectorPool::spawn(det.clone(), workers);
    for op in ops {
        match op {
            Op::Explicit { name, params, txn, ts } => pool.signal_async_at(
                Signal::Explicit { name: name.clone(), params: params.clone(), txn: *txn },
                *ts,
            ),
            Op::Method { oid, txn, ts } => pool.signal_async_at(
                Signal::Method {
                    class: "M".into(),
                    sig: METHOD_SIG.into(),
                    edge: EventModifier::End,
                    oid: *oid,
                    params: Vec::new(),
                    txn: *txn,
                },
                *ts,
            ),
            Op::Flush(txn) => pool.signal_async(Signal::FlushTxn(*txn)),
            Op::Advance(to) => pool.signal_async(Signal::AdvanceTime(*to)),
            ddl => pool.barrier(|d| apply_ddl(d, &comps, ddl)),
        }
    }
    pool.shutdown();
    let dets: Vec<Detection> = pool.detections().try_iter().collect();
    let stats = det.stats();
    (canon_all(&dets), det.snapshot_state().encode().to_vec(), stats)
}

/// Telemetry conformance: the pooled run's per-shard signal counters must
/// sum to exactly the serial run's total (every signal is counted once, on
/// exactly one shard), and after shutdown no shard may report residual
/// queue depth. This pins the per-shard health counters the scrape
/// endpoint exports to the same oracle the detection streams obey.
fn assert_shard_counters(serial: &DetectorStats, pooled: &DetectorStats, tag: &str) {
    let serial_shard_sum: u64 = serial.shards.iter().map(|s| s.signals).sum();
    let pooled_shard_sum: u64 = pooled.shards.iter().map(|s| s.signals).sum();
    assert_eq!(serial_shard_sum, serial.signals, "{tag}: serial shard counters miss signals");
    assert_eq!(pooled_shard_sum, pooled.signals, "{tag}: pooled shard counters miss signals");
    assert_eq!(pooled.signals, serial.signals, "{tag}: pooled signal total diverged from serial");
    for s in &pooled.shards {
        assert_eq!(s.queue_depth, 0, "{tag}: shard {} reports queue depth after shutdown", s.shard);
    }
}

fn conformance(seed: u64, workers: usize) {
    let ops = generate(seed);
    let (serial_dets, serial_snap, serial_stats) = run_serial(&ops, None);
    let (pool_dets, pool_snap, pool_stats) = run_pool(&ops, workers, None);
    assert_shard_counters(&serial_stats, &pool_stats, &format!("seed {seed}, {workers} workers"));
    assert_eq!(
        serial_dets.len(),
        pool_dets.len(),
        "seed {seed}, {workers} workers: occurrence count diverged"
    );
    for (s, p) in serial_dets.iter().zip(&pool_dets) {
        assert_eq!(s, p, "seed {seed}, {workers} workers: occurrence diverged");
    }
    assert_eq!(
        serial_snap, pool_snap,
        "seed {seed}, {workers} workers: final graph state diverged"
    );
    // The run must be non-trivial: detections in every parameter context.
    for ctx in ParamContext::ALL {
        let tag = format!("/{ctx:?}/");
        assert!(
            serial_dets.iter().any(|d| d.contains(&tag)),
            "seed {seed}: no detection in {ctx:?} — workload too weak to prove equivalence"
        );
    }
    assert!(serial_dets.len() >= 50, "seed {seed}: only {} detections", serial_dets.len());
}

/// Headline: the sharded pool at 4 and 8 workers is observationally
/// equivalent to the serial detector on randomized workloads covering
/// every operator, all four contexts, flushes, alarms, subscription
/// flips, and mid-stream shard merges.
#[test]
fn sharded_pool_matches_serial_reference_across_seeds() {
    for seed in [3, 17, 93] {
        for workers in [4, 8] {
            conformance(seed, workers);
        }
    }
}

/// Degenerate pool (one worker) must conform too — catches bugs hidden by
/// routing everything to one queue.
#[test]
fn single_worker_pool_matches_serial_reference() {
    conformance(42, 1);
}

/// The generator's clock mirror is exact: replaying the op list against a
/// fresh serial detector draws exactly the embedded timestamps (asserted
/// inside `run_serial`), and two generations from one seed are identical.
#[test]
fn generator_is_deterministic() {
    let a = generate(7);
    let b = generate(7);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(format!("{x:?}"), format!("{y:?}"));
    }
    run_serial(&a, None);
}

// --- durable matrix ----------------------------------------------------

fn tmp(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("sentinel-diffdur-{tag}-{}", std::process::id()))
}

/// Reopens a journaled run's data directory and returns what recovery
/// merged: every surviving record in replay order plus the fence stream.
fn recovered(dir: &Path) -> (Vec<LoggedEvent>, Vec<(u64, FenceKind)>) {
    let (_engine, rec) = DurableEngine::open(dir, dopts()).expect("reopen durable engine");
    assert_eq!(rec.v1_records, 0, "fresh directories are pure v2");
    assert_eq!(rec.report.truncated_bytes, 0, "fsync=always run left no torn bytes");
    (rec.events, rec.fences)
}

/// The durable tentpole, end to end: journaling through the sharded
/// engine must not change detection (serial *and* pooled runs with a sink
/// stay observationally equivalent), and the journals the runs leave
/// behind must recover to the *identical* merged record/fence sequence —
/// per-shard streams + epoch fences reconstruct the serial happened-before
/// order no matter how many workers raced on the appends.
#[test]
fn durable_pool_recovery_matches_durable_serial() {
    let seed = 11u64;
    let ops = generate(seed);
    let sdir = tmp("serial");
    let (serial_dets, serial_snap, serial_stats) = run_serial(&ops, Some(&sdir));
    let (serial_events, serial_fences) = recovered(&sdir);
    assert!(serial_events.len() >= 100, "workload journals enough to be meaningful");
    assert!(serial_fences.len() >= 10, "workload cuts flush/advance/DDL fences");

    for workers in [4, 8] {
        let pdir = tmp(&format!("pool{workers}"));
        let (pool_dets, pool_snap, pool_stats) = run_pool(&ops, workers, Some(&pdir));
        assert_eq!(serial_dets, pool_dets, "{workers} workers: journaled detection diverged");
        assert_eq!(serial_snap, pool_snap, "{workers} workers: journaled graph state diverged");
        assert_shard_counters(&serial_stats, &pool_stats, &format!("durable, {workers} workers"));

        let (pool_events, pool_fences) = recovered(&pdir);
        assert_eq!(
            serial_events, pool_events,
            "{workers} workers: recovered replay order diverged from serial-durable"
        );
        assert_eq!(
            serial_fences, pool_fences,
            "{workers} workers: recovered fence stream diverged from serial-durable"
        );
        let _ = std::fs::remove_dir_all(&pdir);
    }
    let _ = std::fs::remove_dir_all(&sdir);
}
