//! Multi-node replication end-to-end, over real loopback sockets: a
//! follower tailing a primary's replication stream through the
//! `sentinel-cluster` apply loop, read-only gating and read consistency
//! at the ack watermark, catch-up after a torn local journal tail, and
//! the distributed global detector checked byte-for-byte against a
//! single-node oracle in all four parameter contexts.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sentinel_cluster::{forward_to_node, Follower, FollowerConfig};
use sentinel_core::durable_store::{DurableOptions, FsyncPolicy};
use sentinel_core::{Sentinel, SentinelConfig};
use sentinel_detector::Value;
use sentinel_net::{ClientError, NetServer, SentinelClient, ServerConfig};
use sentinel_obs::flight::{self, FlightKind};
use sentinel_obs::json;
use sentinel_obs::span::REMOTE_TRACE_BIT;

fn tmp(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("sentinel-cluster-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn opts() -> DurableOptions {
    DurableOptions { fsync: FsyncPolicy::Never, ..DurableOptions::default() }
}

/// Durable primary behind a real loopback server on an OS-picked port.
fn start_primary(dir: &std::path::Path) -> (Arc<Sentinel>, NetServer, String) {
    let (sentinel, _) = Sentinel::open_durable(dir, SentinelConfig::default(), opts()).unwrap();
    let server = NetServer::start(sentinel.serve_handle(), ServerConfig::default()).unwrap();
    let addr = server.local_addr().to_string();
    (sentinel, server, addr)
}

fn wait_until(timeout: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < timeout {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

/// Applied watermark the primary has recorded for `name`, if any.
fn acked(primary: &Sentinel, name: &str) -> Option<u64> {
    primary
        .durable_engine()
        .unwrap()
        .replication()
        .followers()
        .into_iter()
        .find(|f| f.name == name)
        .map(|f| f.applied)
}

fn follower_cfg(primary_addr: &str, name: &str, dir: &std::path::Path) -> FollowerConfig {
    let mut cfg = FollowerConfig::new(primary_addr, name, dir);
    cfg.poll = Duration::from_millis(5);
    cfg.lease = None; // explicit promotion only: no surprise self-crowning
    cfg.checkpoint_every = 4;
    cfg
}

/// Once the primary records the follower's ack at its own tip, the
/// follower has applied every shipped entry: its reads (stats over the
/// wire) reflect the full stream, its replication status says so, and
/// writes are still refused until an explicit `Promote` — after which
/// the half-detected composite completes with pre-promotion parameters.
#[test]
fn follower_reads_consistent_at_ack_watermark_and_writes_gated() {
    let pdir = tmp("watermark-p");
    let rdir = tmp("watermark-r");
    let (primary, _pserver, paddr) = start_primary(&pdir);

    let admin = SentinelClient::connect(&paddr, "admin").unwrap();
    admin.define_event("e_a", None).unwrap();
    admin.define_event("e_b", None).unwrap();
    admin.define_event("pair", Some("e_a ; e_b")).unwrap();
    primary
        .define_rule_spec(
            &json::Value::parse(
                r#"{"name":"R","event":"pair","context":"chronicle","action":{"action":"count"}}"#,
            )
            .unwrap(),
        )
        .unwrap();
    // Half-open composite: `e_a` ships, `e_b` arrives only after failover.
    admin.signal_sync("e_a", &[(Arc::from("k"), Value::Int(7))], None).unwrap();

    let (replica, _) = Sentinel::open_replica(&rdir, SentinelConfig::default(), opts()).unwrap();
    let rserver = NetServer::start(replica.serve_handle(), ServerConfig::default()).unwrap();
    let raddr = rserver.local_addr().to_string();
    let follower = Follower::start(replica.clone(), follower_cfg(&paddr, "f1", &rdir));

    // The tip is read fresh inside the poll: the follower's own bootstrap
    // snapshot cuts a barrier fence on the primary, growing the log by one.
    let repl = primary.durable_engine().unwrap().replication().clone();
    assert!(
        wait_until(Duration::from_secs(10), || {
            let tip = repl.tip();
            tip > 0 && acked(&primary, "f1") == Some(tip)
        }),
        "follower ack never reached the primary tip {} (got {:?})",
        repl.tip(),
        acked(&primary, "f1")
    );
    // A second initiator lands *after* bootstrap, so it reaches the
    // follower as a live shipped frame rather than inside the snapshot.
    admin.signal_sync("e_a", &[(Arc::from("k"), Value::Int(8))], None).unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || acked(&primary, "f1") == Some(repl.tip())),
        "live frame never acked (got {:?} of {})",
        acked(&primary, "f1"),
        repl.tip()
    );
    let tip = repl.tip();

    // Read consistency at the watermark, over the wire.
    let reader = SentinelClient::connect(&raddr, "reader").unwrap();
    let stats = reader.stats().unwrap();
    let repl = stats.get("replication").expect("replica publishes replication status");
    assert_eq!(repl.get("role").and_then(json::Value::as_str), Some("replica"));
    assert_eq!(repl.get("applied").and_then(json::Value::as_u64), Some(tip));
    assert_eq!(
        repl.get("primary").and_then(json::Value::as_str),
        Some(paddr.as_str()),
        "replica names its primary"
    );
    // Applying the stream fires nothing: detections are dropped as in
    // recovery (the primary's rules already ran).
    assert_eq!(stats.get("rule_hits").and_then(|h| h.get("R")), None);
    // The primary's own stats see the follower caught up.
    let pstats = admin.stats().unwrap();
    let prepl = pstats.get("replication").expect("primary with followers reports replication");
    assert_eq!(prepl.get("role").and_then(json::Value::as_str), Some("primary"));
    let followers = prepl.get("followers").and_then(json::Value::as_arr).unwrap();
    assert_eq!(followers.len(), 1);
    assert_eq!(followers[0].get("lag").and_then(json::Value::as_u64), Some(0));

    // Writes are refused while in replica role...
    match reader.signal_sync("e_b", &[], None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "read-only"),
        other => panic!("write on a replica must be refused, got {other:?}"),
    }
    match reader.define_event("rogue", None) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, "read-only"),
        other => panic!("DDL on a replica must be refused, got {other:?}"),
    }

    // ...until promoted, after which the composite completes with the
    // pre-failover constituent's parameters intact.
    follower.stop();
    assert!(reader.promote().unwrap());
    reader.signal_sync("e_b", &[(Arc::from("m"), Value::Int(9))], None).unwrap();
    let stats = reader.stats().unwrap();
    assert_eq!(
        stats.get("rule_hits").and_then(|h| h.get("R")).and_then(json::Value::as_u64),
        Some(1)
    );
    let last = stats
        .get("rule_last")
        .and_then(|h| h.get("R"))
        .and_then(json::Value::as_str)
        .expect("rule params recorded");
    assert!(last.contains("e_a(k=7)"), "shipped constituent params survive failover: {last}");
    assert!(last.contains("e_b(m=9)"), "post-promotion constituent: {last}");

    // The shipping left its mark in the flight recorder: Ship on range
    // serves, Ack on watermarks, CatchUp on the bootstrap.
    let kinds: Vec<FlightKind> = flight::global().snapshot().iter().map(|e| e.kind).collect();
    for want in [FlightKind::Ship, FlightKind::Ack, FlightKind::CatchUp, FlightKind::Promote] {
        assert!(kinds.contains(&want), "flight recorder missing {want:?} (got {kinds:?})");
    }

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// A follower that crashes with a torn local journal tail recovers from
/// its bootstrap checkpoint plus the surviving journal prefix, resumes
/// tailing at the recomputed watermark, and re-fetches exactly the torn
/// suffix from the primary — converging back to the primary's tip.
#[test]
fn follower_catches_up_from_checkpoint_after_truncated_journal_tail() {
    let pdir = tmp("torn-p");
    let rdir = tmp("torn-r");
    let (primary, _pserver, paddr) = start_primary(&pdir);

    let admin = SentinelClient::connect(&paddr, "admin").unwrap();
    admin.define_event("tick", None).unwrap();
    primary
        .define_rule_spec(
            &json::Value::parse(r#"{"name":"T","event":"tick","action":{"action":"count"}}"#)
                .unwrap(),
        )
        .unwrap();
    for _ in 0..6 {
        admin.signal_sync("tick", &[], None).unwrap();
    }
    // Read fresh inside each poll: the bootstrap snapshot cuts a barrier
    // fence on the primary, growing the log past any pre-captured tip.
    let repl = primary.durable_engine().unwrap().replication().clone();

    {
        let (replica, _) =
            Sentinel::open_replica(&rdir, SentinelConfig::default(), opts()).unwrap();
        let follower = Follower::start(replica.clone(), follower_cfg(&paddr, "f2", &rdir));
        assert!(
            wait_until(Duration::from_secs(10), || {
                let tip = repl.tip();
                tip > 0 && acked(&primary, "f2") == Some(tip)
            }),
            "initial catch-up stalled at {:?} of {}",
            acked(&primary, "f2"),
            repl.tip()
        );
        // Seven more ticks arrive as live frames: the apply loop journals
        // them into the replica's own shard segments (torn below).
        for _ in 0..7 {
            admin.signal_sync("tick", &[], None).unwrap();
        }
        assert!(
            wait_until(Duration::from_secs(10), || acked(&primary, "f2") == Some(repl.tip())),
            "live tail stalled at {:?} of {}",
            acked(&primary, "f2"),
            repl.tip()
        );
        follower.stop();
        replica.flush_journal().unwrap();
        // Drop = crash: durable Sentinels never flush on drop.
    }

    // Tear the newest shard segment a few bytes short — a torn write on
    // the replica's own journal.
    let newest_seg = std::fs::read_dir(&rdir)
        .unwrap()
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("shard-") && n.ends_with(".seg"))
        })
        .max()
        .expect("replica journaled shard segments");
    let len = std::fs::metadata(&newest_seg).unwrap().len();
    std::fs::OpenOptions::new().write(true).open(&newest_seg).unwrap().set_len(len - 3).unwrap();

    let (replica, report) =
        Sentinel::open_replica(&rdir, SentinelConfig::default(), opts()).unwrap();
    assert!(report.checkpoint_tag.is_some(), "bootstrap/apply checkpoints restored");
    assert!(report.truncated_bytes > 0, "the torn tail was repaired by truncation");
    let local_before = replica.durable_engine().unwrap().replication().tip();

    // Resume: the loop recomputes its watermark from the (shorter) local
    // log and re-fetches the lost suffix. The primary's recorded ack
    // never regresses, so the convergence signal is the replica's own
    // apply watermark reaching the primary's tip.
    let follower = Follower::start(replica.clone(), follower_cfg(&paddr, "f2", &rdir));
    assert!(
        wait_until(Duration::from_secs(10), || {
            replica.replication_stats().map(|r| r.applied) == Some(repl.tip())
        }),
        "post-crash catch-up stalled at {:?} of {}",
        replica.replication_stats().map(|r| r.applied),
        repl.tip()
    );
    follower.stop();
    let local_after = replica.durable_engine().unwrap().replication().tip();
    assert!(local_after > local_before, "the torn suffix was re-shipped and re-journaled");

    // The caught-up replica is equivalent to the primary: promote it and
    // the counting rule picks up exactly where the primary's left off.
    assert!(replica.promote());
    replica.raise(None, "tick", vec![]).unwrap();
    assert_eq!(replica.stats().rule_hits.get("T"), Some(&1));

    let _ = std::fs::remove_dir_all(&pdir);
    let _ = std::fs::remove_dir_all(&rdir);
}

/// Helper for the cross-node test: the four per-context counting rules
/// over the inter-application composite.
fn define_context_rules(s: &Sentinel) {
    for ctx in ["recent", "chronicle", "continuous", "cumulative"] {
        s.define_rule_spec(
            &json::Value::parse(&format!(
                r#"{{"name":"R_{ctx}","event":"both","context":"{ctx}","action":{{"action":"count"}}}}"#
            ))
            .unwrap(),
        )
        .unwrap();
    }
}

/// A `SEQ` whose constituents arrive on different nodes detects at the
/// global node with parameter bindings byte-identical to a single-node
/// detector fed the same leaves, in all four parameter contexts — and
/// when tracing is on, the forwarded signals stitch the nodes' span
/// stores into one trace id, so one Chrome export spans both nodes.
#[test]
fn cross_node_composite_matches_single_node_oracle_in_all_contexts() {
    // Global-detector node: an ordinary Sentinel server holding the
    // inter-application composite over forwarded leaves.
    let global = Sentinel::in_memory();
    global.set_tracing(true);
    global.declare_explicit("app1.sale").unwrap();
    global.declare_explicit("app2.audit").unwrap();
    global.define_event("both", "app1.sale ; app2.audit").unwrap();
    define_context_rules(&global);
    let gserver = NetServer::start(global.serve_handle(), ServerConfig::default()).unwrap();
    let gaddr = gserver.local_addr().to_string();

    // Node A (app 1) forwards `sale`; node B (app 2) forwards `audit`.
    let node_a =
        Sentinel::in_memory_with(SentinelConfig { app_id: 1, ..SentinelConfig::default() });
    node_a.set_tracing(true);
    node_a.declare_explicit("sale").unwrap();
    forward_to_node(&node_a, "sale", Arc::new(SentinelClient::connect(&gaddr, "fwd-a").unwrap()))
        .unwrap();
    let node_b =
        Sentinel::in_memory_with(SentinelConfig { app_id: 2, ..SentinelConfig::default() });
    node_b.declare_explicit("audit").unwrap();
    forward_to_node(&node_b, "audit", Arc::new(SentinelClient::connect(&gaddr, "fwd-b").unwrap()))
        .unwrap();

    // Drive node A over its own wire with a client trace id, so the
    // forwarding hop has an ambient span to propagate.
    let aserver = NetServer::start(node_a.serve_handle(), ServerConfig::default()).unwrap();
    let aclient = SentinelClient::connect(&aserver.local_addr().to_string(), "driver").unwrap();
    const TRACE: u64 = 424_242;
    // Two sales with distinct params make the four contexts genuinely
    // disagree about initiator bindings; then the audit closes the SEQ.
    aclient.signal_sync_traced("sale", &[(Arc::from("k"), Value::Int(1))], None, TRACE).unwrap();
    aclient.signal_sync_traced("sale", &[(Arc::from("k"), Value::Int(2))], None, TRACE).unwrap();
    node_b.raise(None, "audit", vec![(Arc::from("m"), Value::Int(3))]).unwrap();

    // signal_sync is synchronous end-to-end: by now the global node has
    // detected. Build the single-node oracle fed the same leaf stream.
    let oracle = Sentinel::in_memory();
    oracle.declare_explicit("app1.sale").unwrap();
    oracle.declare_explicit("app2.audit").unwrap();
    oracle.define_event("both", "app1.sale ; app2.audit").unwrap();
    define_context_rules(&oracle);
    oracle.raise(None, "app1.sale", vec![(Arc::from("k"), Value::Int(1))]).unwrap();
    oracle.raise(None, "app1.sale", vec![(Arc::from("k"), Value::Int(2))]).unwrap();
    oracle.raise(None, "app2.audit", vec![(Arc::from("m"), Value::Int(3))]).unwrap();

    let got = global.stats();
    let want = oracle.stats();
    for ctx in ["recent", "chronicle", "continuous", "cumulative"] {
        let rule = format!("R_{ctx}");
        assert_eq!(
            got.rule_hits.get(&rule),
            want.rule_hits.get(&rule),
            "{ctx}: cross-node hit count differs from single-node"
        );
        assert_eq!(
            got.rule_last.get(&rule),
            want.rule_last.get(&rule),
            "{ctx}: cross-node parameter bindings differ from single-node"
        );
        assert!(want.rule_last.contains_key(&rule), "{ctx}: oracle fired");
    }

    // Provenance stitching: the global node adopted the forwarded trace,
    // so both nodes' Chrome exports carry the same (remote-bit) trace id.
    let stitched = TRACE | REMOTE_TRACE_BIT;
    let a_trace = node_a.export_chrome_trace();
    let g_trace = global.export_chrome_trace();
    let pid = format!("\"pid\":{stitched}");
    assert!(a_trace.contains(&pid), "node A's export carries the adopted trace id");
    assert!(g_trace.contains(&pid), "global node's export stitches the same trace id");
}
