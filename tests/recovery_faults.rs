//! Failure injection through the full stack: crashes with torn WAL tails,
//! aborted transactions flushing the event graph, deadlock victims, and
//! panicking rules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::storage::disk::{DiskManager, MemDisk};
use sentinel_core::storage::lock::{LockManager, LockMode};
use sentinel_core::storage::wal::{LogStore, MemLogStore};
use sentinel_core::storage::{StorageEngine, StorageError, TxnId};
use sentinel_core::Sentinel;

const BUMP: &str = "void bump()";

fn counter_system(engine: Arc<StorageEngine>) -> Arc<Sentinel> {
    let s = Sentinel::open(engine, SentinelConfig::default()).unwrap();
    s.db()
        .register_class(
            ClassDef::new("COUNTER").extends("REACTIVE").attr("n", AttrType::Int).method(BUMP),
        )
        .unwrap();
    s.db().register_method(
        "COUNTER",
        BUMP,
        Arc::new(|ctx| {
            let n = ctx.get_attr("n")?.as_int().unwrap_or(0);
            ctx.set_attr("n", n + 1)?;
            Ok(AttrValue::Int(n + 1))
        }),
    );
    s.declare_event("bump", "COUNTER", EventModifier::End, BUMP, PrimTarget::AnyInstance).unwrap();
    s
}

#[test]
fn crash_with_torn_tail_recovers_committed_state_only() {
    let disk = Arc::new(MemDisk::new());
    let log = Arc::new(MemLogStore::new());
    let oid;
    let torn_at;
    {
        let engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        let s = counter_system(engine);
        let t = s.begin().unwrap();
        oid = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
        s.invoke(t, oid, BUMP, vec![]).unwrap();
        s.commit(t).unwrap();
        torn_at = log.len().unwrap();
        // Uncommitted work, then a "crash" that tears the last record.
        let t2 = s.begin().unwrap();
        s.invoke(t2, oid, BUMP, vec![]).unwrap();
        s.invoke(t2, oid, BUMP, vec![]).unwrap();
        // no commit; drop everything
    }
    // Tear the log a few bytes into the uncommitted suffix.
    let len = log.len().unwrap();
    log.truncate(torn_at + (len - torn_at) / 2).unwrap();

    let engine = Arc::new(
        StorageEngine::open(disk as Arc<dyn DiskManager>, log as Arc<dyn LogStore>).unwrap(),
    );
    let s = counter_system(engine);
    let t = s.begin().unwrap();
    let n = s.get_object(t, oid).unwrap().get("n").unwrap().as_int();
    assert_eq!(n, Some(1), "only the committed bump survives the torn-tail crash");
    s.commit(t).unwrap();
}

#[test]
fn repeated_crashes_converge() {
    let disk = Arc::new(MemDisk::new());
    let log = Arc::new(MemLogStore::new());
    let mut oid = None;
    for round in 0..5 {
        let engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        let s = counter_system(engine);
        let t = s.begin().unwrap();
        let o = match oid {
            None => {
                let o = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
                oid = Some(o);
                o
            }
            Some(o) => o,
        };
        s.invoke(t, o, BUMP, vec![]).unwrap();
        s.commit(t).unwrap();
        // Leave an uncommitted transaction dangling every round ("crash").
        let t2 = s.begin().unwrap();
        let _ = s.invoke(t2, o, BUMP, vec![]);
        drop(s);
        let check_engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        let s = counter_system(check_engine);
        let t = s.begin().unwrap();
        let n = s.get_object(t, oid.unwrap()).unwrap().get("n").unwrap().as_int();
        assert_eq!(n, Some(round + 1), "round {round}: exactly the committed bumps");
        s.commit(t).unwrap();
    }
}

#[test]
fn deadlock_victim_can_abort_and_retry() {
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), 100, LockMode::Exclusive).unwrap();
    lm.lock(TxnId(2), 200, LockMode::Exclusive).unwrap();
    let lm2 = lm.clone();
    let h = std::thread::spawn(move || {
        let r = lm2.lock(TxnId(1), 200, LockMode::Exclusive);
        if r.is_err() {
            lm2.release_all(TxnId(1));
        }
        r
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    let r2 = lm.lock(TxnId(2), 100, LockMode::Exclusive);
    let other = h.join().unwrap();
    // Exactly one side is the victim; the other eventually proceeds.
    let victims = usize::from(matches!(r2, Err(StorageError::Deadlock(_))))
        + usize::from(matches!(other, Err(StorageError::Deadlock(_))));
    assert_eq!(victims, 1, "exactly one deadlock victim");
    // Victim retry after release must succeed.
    if victims == 1 {
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        lm.lock(TxnId(3), 100, LockMode::Exclusive).unwrap();
    }
}

#[test]
fn panicking_rule_does_not_poison_the_system() {
    let s = counter_system(Arc::new(StorageEngine::in_memory()));
    let good_runs = Arc::new(AtomicUsize::new(0));
    s.define_rule(
        "explosive",
        "bump",
        Arc::new(|_| true),
        Arc::new(|_| panic!("boom")),
        RuleOptions::default().priority(20),
    )
    .unwrap();
    let g = good_runs.clone();
    s.define_rule(
        "survivor",
        "bump",
        Arc::new(|_| true),
        Arc::new(move |_| {
            g.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default().priority(5),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
    s.invoke(t, o, BUMP, vec![]).unwrap();
    s.invoke(t, o, BUMP, vec![]).unwrap();
    s.commit(t).unwrap();
    assert_eq!(good_runs.load(Ordering::SeqCst), 2, "survivor ran both times");
    // The database still works.
    let t = s.begin().unwrap();
    assert!(s.get_object(t, o).is_ok());
    s.commit(t).unwrap();
}

#[test]
fn panicking_rule_rolls_back_only_its_own_writes() {
    // Subtransaction-level recovery (§4 extension): a rule writes to the
    // database, then panics — its writes are undone via the savepoint,
    // while the application's own writes in the same transaction survive.
    let s = counter_system(Arc::new(StorageEngine::in_memory()));
    let s2 = s.clone();
    s.define_rule(
        "write_then_explode",
        "bump",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            let txn = TxnId(inv.txn.unwrap());
            let oid = sentinel_core::oodb::Oid(inv.occurrence.param_list()[0].source.unwrap());
            let mut st = s2.get_object(txn, oid).unwrap();
            st.set("n", 777);
            s2.db().store().update(txn, oid, &st).unwrap();
            panic!("after writing");
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
    s.invoke(t, o, BUMP, vec![]).unwrap(); // method sets n=1; rule writes 777 then panics
    let n = s.get_object(t, o).unwrap().get("n").unwrap().as_int();
    assert_eq!(n, Some(1), "rule's write rolled back, method's write intact");
    s.commit(t).unwrap();
    let t2 = s.begin().unwrap();
    assert_eq!(s.get_object(t2, o).unwrap().get("n").unwrap().as_int(), Some(1));
    s.commit(t2).unwrap();
}

#[test]
fn abort_undoes_rule_actions_writes_too() {
    // A rule's write belongs to the triggering transaction: abort undoes it.
    let s = counter_system(Arc::new(StorageEngine::in_memory()));
    let s2 = s.clone();
    s.define_rule(
        "side_effect",
        "bump",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            let txn = TxnId(inv.txn.unwrap());
            let oid = sentinel_core::oodb::Oid(inv.occurrence.param_list()[0].source.unwrap());
            let mut st = s2.get_object(txn, oid).unwrap();
            st.set("n", 999);
            s2.db().store().update(txn, oid, &st).unwrap();
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t0 = s.begin().unwrap();
    let o = s.create_object(t0, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
    s.commit(t0).unwrap();

    let t1 = s.begin().unwrap();
    s.invoke(t1, o, BUMP, vec![]).unwrap();
    // Rule wrote 999 inside t1…
    assert_eq!(s.get_object(t1, o).unwrap().get("n").unwrap().as_int(), Some(999));
    s.abort(t1).unwrap();
    // …abort rolls back both the method's and the rule's writes.
    let t2 = s.begin().unwrap();
    assert_eq!(s.get_object(t2, o).unwrap().get("n").unwrap().as_int(), Some(0));
    s.commit(t2).unwrap();
}
