//! Failure injection through the full stack: crashes with torn WAL tails,
//! aborted transactions flushing the event graph, deadlock victims, and
//! panicking rules.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::storage::disk::{DiskManager, MemDisk};
use sentinel_core::storage::lock::{LockManager, LockMode};
use sentinel_core::storage::wal::{LogStore, MemLogStore};
use sentinel_core::storage::{StorageEngine, StorageError, TxnId};
use sentinel_core::Sentinel;

const BUMP: &str = "void bump()";

fn counter_system(engine: Arc<StorageEngine>) -> Arc<Sentinel> {
    let s = Sentinel::open(engine, SentinelConfig::default()).unwrap();
    s.db()
        .register_class(
            ClassDef::new("COUNTER").extends("REACTIVE").attr("n", AttrType::Int).method(BUMP),
        )
        .unwrap();
    s.db().register_method(
        "COUNTER",
        BUMP,
        Arc::new(|ctx| {
            let n = ctx.get_attr("n")?.as_int().unwrap_or(0);
            ctx.set_attr("n", n + 1)?;
            Ok(AttrValue::Int(n + 1))
        }),
    );
    s.declare_event("bump", "COUNTER", EventModifier::End, BUMP, PrimTarget::AnyInstance).unwrap();
    s
}

#[test]
fn crash_with_torn_tail_recovers_committed_state_only() {
    let disk = Arc::new(MemDisk::new());
    let log = Arc::new(MemLogStore::new());
    let oid;
    let torn_at;
    {
        let engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        let s = counter_system(engine);
        let t = s.begin().unwrap();
        oid = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
        s.invoke(t, oid, BUMP, vec![]).unwrap();
        s.commit(t).unwrap();
        torn_at = log.len().unwrap();
        // Uncommitted work, then a "crash" that tears the last record.
        let t2 = s.begin().unwrap();
        s.invoke(t2, oid, BUMP, vec![]).unwrap();
        s.invoke(t2, oid, BUMP, vec![]).unwrap();
        // no commit; drop everything
    }
    // Tear the log a few bytes into the uncommitted suffix.
    let len = log.len().unwrap();
    log.truncate(torn_at + (len - torn_at) / 2).unwrap();

    let engine = Arc::new(
        StorageEngine::open(disk as Arc<dyn DiskManager>, log as Arc<dyn LogStore>).unwrap(),
    );
    let s = counter_system(engine);
    let t = s.begin().unwrap();
    let n = s.get_object(t, oid).unwrap().get("n").unwrap().as_int();
    assert_eq!(n, Some(1), "only the committed bump survives the torn-tail crash");
    s.commit(t).unwrap();
}

#[test]
fn repeated_crashes_converge() {
    let disk = Arc::new(MemDisk::new());
    let log = Arc::new(MemLogStore::new());
    let mut oid = None;
    for round in 0..5 {
        let engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        let s = counter_system(engine);
        let t = s.begin().unwrap();
        let o = match oid {
            None => {
                let o = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
                oid = Some(o);
                o
            }
            Some(o) => o,
        };
        s.invoke(t, o, BUMP, vec![]).unwrap();
        s.commit(t).unwrap();
        // Leave an uncommitted transaction dangling every round ("crash").
        let t2 = s.begin().unwrap();
        let _ = s.invoke(t2, o, BUMP, vec![]);
        drop(s);
        let check_engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        let s = counter_system(check_engine);
        let t = s.begin().unwrap();
        let n = s.get_object(t, oid.unwrap()).unwrap().get("n").unwrap().as_int();
        assert_eq!(n, Some(round + 1), "round {round}: exactly the committed bumps");
        s.commit(t).unwrap();
    }
}

#[test]
fn deadlock_victim_can_abort_and_retry() {
    let lm = Arc::new(LockManager::new());
    lm.lock(TxnId(1), 100, LockMode::Exclusive).unwrap();
    lm.lock(TxnId(2), 200, LockMode::Exclusive).unwrap();
    let lm2 = lm.clone();
    let h = std::thread::spawn(move || {
        let r = lm2.lock(TxnId(1), 200, LockMode::Exclusive);
        if r.is_err() {
            lm2.release_all(TxnId(1));
        }
        r
    });
    std::thread::sleep(std::time::Duration::from_millis(50));
    let r2 = lm.lock(TxnId(2), 100, LockMode::Exclusive);
    let other = h.join().unwrap();
    // Exactly one side is the victim; the other eventually proceeds.
    let victims = usize::from(matches!(r2, Err(StorageError::Deadlock(_))))
        + usize::from(matches!(other, Err(StorageError::Deadlock(_))));
    assert_eq!(victims, 1, "exactly one deadlock victim");
    // Victim retry after release must succeed.
    if victims == 1 {
        lm.release_all(TxnId(1));
        lm.release_all(TxnId(2));
        lm.lock(TxnId(3), 100, LockMode::Exclusive).unwrap();
    }
}

#[test]
fn panicking_rule_does_not_poison_the_system() {
    let s = counter_system(Arc::new(StorageEngine::in_memory()));
    let good_runs = Arc::new(AtomicUsize::new(0));
    s.define_rule(
        "explosive",
        "bump",
        Arc::new(|_| true),
        Arc::new(|_| panic!("boom")),
        RuleOptions::default().priority(20),
    )
    .unwrap();
    let g = good_runs.clone();
    s.define_rule(
        "survivor",
        "bump",
        Arc::new(|_| true),
        Arc::new(move |_| {
            g.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default().priority(5),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
    s.invoke(t, o, BUMP, vec![]).unwrap();
    s.invoke(t, o, BUMP, vec![]).unwrap();
    s.commit(t).unwrap();
    assert_eq!(good_runs.load(Ordering::SeqCst), 2, "survivor ran both times");
    // The database still works.
    let t = s.begin().unwrap();
    assert!(s.get_object(t, o).is_ok());
    s.commit(t).unwrap();
}

#[test]
fn panicking_rule_rolls_back_only_its_own_writes() {
    // Subtransaction-level recovery (§4 extension): a rule writes to the
    // database, then panics — its writes are undone via the savepoint,
    // while the application's own writes in the same transaction survive.
    let s = counter_system(Arc::new(StorageEngine::in_memory()));
    let s2 = s.clone();
    s.define_rule(
        "write_then_explode",
        "bump",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            let txn = TxnId(inv.txn.unwrap());
            let oid = sentinel_core::oodb::Oid(inv.occurrence.param_list()[0].source.unwrap());
            let mut st = s2.get_object(txn, oid).unwrap();
            st.set("n", 777);
            s2.db().store().update(txn, oid, &st).unwrap();
            panic!("after writing");
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let o = s.create_object(t, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
    s.invoke(t, o, BUMP, vec![]).unwrap(); // method sets n=1; rule writes 777 then panics
    let n = s.get_object(t, o).unwrap().get("n").unwrap().as_int();
    assert_eq!(n, Some(1), "rule's write rolled back, method's write intact");
    s.commit(t).unwrap();
    let t2 = s.begin().unwrap();
    assert_eq!(s.get_object(t2, o).unwrap().get("n").unwrap().as_int(), Some(1));
    s.commit(t2).unwrap();
}

#[test]
fn abort_undoes_rule_actions_writes_too() {
    // A rule's write belongs to the triggering transaction: abort undoes it.
    let s = counter_system(Arc::new(StorageEngine::in_memory()));
    let s2 = s.clone();
    s.define_rule(
        "side_effect",
        "bump",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            let txn = TxnId(inv.txn.unwrap());
            let oid = sentinel_core::oodb::Oid(inv.occurrence.param_list()[0].source.unwrap());
            let mut st = s2.get_object(txn, oid).unwrap();
            st.set("n", 999);
            s2.db().store().update(txn, oid, &st).unwrap();
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t0 = s.begin().unwrap();
    let o = s.create_object(t0, &ObjectState::new("COUNTER").with("n", 0)).unwrap();
    s.commit(t0).unwrap();

    let t1 = s.begin().unwrap();
    s.invoke(t1, o, BUMP, vec![]).unwrap();
    // Rule wrote 999 inside t1…
    assert_eq!(s.get_object(t1, o).unwrap().get("n").unwrap().as_int(), Some(999));
    s.abort(t1).unwrap();
    // …abort rolls back both the method's and the rule's writes.
    let t2 = s.begin().unwrap();
    assert_eq!(s.get_object(t2, o).unwrap().get("n").unwrap().as_int(), Some(0));
    s.commit(t2).unwrap();
}

// ---------------------------------------------------------------------------
// Durable-layer fault injection: torn writes and garbage tails in the data
// directory must shorten recovery, never break it.
// ---------------------------------------------------------------------------

mod durable_faults {
    use std::path::{Path, PathBuf};
    use std::sync::Arc;

    use sentinel_core::detector::Value;
    use sentinel_core::durable_store::{DurableOptions, FsyncPolicy};
    use sentinel_core::obs::json;
    use sentinel_core::sentinel::SentinelConfig;
    use sentinel_core::Sentinel;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("sentinel-durflt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts() -> DurableOptions {
        DurableOptions {
            fsync: FsyncPolicy::Always,
            segment_bytes: 4 * 1024 * 1024, // one segment: tail faults hit live records
            // Cadence checkpoints are asynchronous (nondeterministic
            // tags), so fault tests cut them explicitly where needed.
            checkpoint_every: 0,
            ..DurableOptions::default()
        }
    }

    /// Seeds a durable system: a pair composite, one counting rule, and
    /// `n` alternating signals (ending on `a`, so one composite is always
    /// half-detected at "crash" time).
    fn seed(dir: &Path, n: u64) {
        let (s, _) = Sentinel::open_durable(dir, SentinelConfig::default(), opts()).unwrap();
        s.declare_explicit("a").unwrap();
        s.declare_explicit("b").unwrap();
        s.define_event("ab", "(a ; b)").unwrap();
        s.define_rule_spec(&json::Value::obj([
            ("name", json::Value::str("watch")),
            ("event", json::Value::str("ab")),
            ("action", json::Value::obj([("action", json::Value::str("count"))])),
        ]))
        .unwrap();
        let h = s.serve_handle();
        for i in 0..n {
            let name = if i % 2 == 0 { "a" } else { "b" };
            h.signal(name, vec![(Arc::from("x"), Value::Int(i as i64))], None);
        }
        h.signal("a", vec![(Arc::from("x"), Value::Int(777))], None);
    }

    /// Recovery must leave a working system: completing the half-detected
    /// composite fires the rule.
    fn assert_alive(s: &Arc<Sentinel>) {
        let before = s.stats().rule_hits.get("watch").copied().unwrap_or(0);
        s.serve_handle().signal("b", vec![(Arc::from("x"), Value::Int(1000))], None);
        let after = s.stats().rule_hits.get("watch").copied().unwrap_or(0);
        assert_eq!(after, before + 1, "recovered system still detects");
    }

    fn newest(dir: &Path, prefix: &str, suffix: &str) -> PathBuf {
        let mut found: Vec<PathBuf> = std::fs::read_dir(dir)
            .unwrap()
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| {
                p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with(prefix) && n.ends_with(suffix))
            })
            .collect();
        found.sort();
        found.pop().expect("file with prefix present")
    }

    #[test]
    fn bit_flipped_journal_tail_is_truncated() {
        let dir = tmp("bitflip");
        seed(&dir, 10);
        let seg = newest(&dir, "shard-", ".seg");
        let mut bytes = std::fs::read(&seg).unwrap();
        let last = bytes.len() - 3;
        bytes[last] ^= 0x20;
        std::fs::write(&seg, &bytes).unwrap();

        let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts()).unwrap();
        // The flipped record (the trailing lone `a`) is gone; everything
        // before it survived.
        assert_eq!(report.journal_records, 10);
        assert!(report.truncated_bytes > 0, "tail was cut");
        // The half-detected `a` was the truncated record: re-signal it.
        s.serve_handle().signal("a", vec![(Arc::from("x"), Value::Int(777))], None);
        assert_alive(&s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_truncated_mid_record_resumes() {
        let dir = tmp("midrec");
        seed(&dir, 10);
        let seg = newest(&dir, "shard-", ".seg");
        let bytes = std::fs::read(&seg).unwrap();
        // Chop inside the final record: drop its last two bytes.
        std::fs::write(&seg, &bytes[..bytes.len() - 2]).unwrap();

        let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts()).unwrap();
        assert_eq!(report.journal_records, 10);
        assert!(report.truncated_bytes > 0);
        s.serve_handle().signal("a", vec![(Arc::from("x"), Value::Int(777))], None);
        assert_alive(&s);
        // Appends resume cleanly after the truncation point: a reopen sees
        // the post-recovery records intact.
        drop(s);
        let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts()).unwrap();
        assert_eq!(report.truncated_bytes, 0, "no new damage");
        assert_eq!(report.journal_records, 12, "10 survivors + 2 post-recovery signals");
        drop(s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_newest_checkpoint_falls_back_to_previous() {
        let dir = tmp("ckptfall");
        // Seed like `seed(&dir, 12)` but cut explicit checkpoints at
        // records 8 and 12 (the automatic cadence is asynchronous, so its
        // tags would be timing-dependent).
        {
            let (s, _) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts()).unwrap();
            s.declare_explicit("a").unwrap();
            s.declare_explicit("b").unwrap();
            s.define_event("ab", "(a ; b)").unwrap();
            s.define_rule_spec(&json::Value::obj([
                ("name", json::Value::str("watch")),
                ("event", json::Value::str("ab")),
                ("action", json::Value::obj([("action", json::Value::str("count"))])),
            ]))
            .unwrap();
            let h = s.serve_handle();
            for i in 0..12u64 {
                let name = if i % 2 == 0 { "a" } else { "b" };
                h.signal(name, vec![(Arc::from("x"), Value::Int(i as i64))], None);
                if i == 7 || i == 11 {
                    s.checkpoint_now().unwrap();
                }
            }
            h.signal("a", vec![(Arc::from("x"), Value::Int(777))], None);
        }
        let ck = newest(&dir, "ckpt-", ".ck");
        let mut bytes = std::fs::read(&ck).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff; // break the snapshot checksum
        std::fs::write(&ck, &bytes).unwrap();

        let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts()).unwrap();
        assert!(report.checkpoints_rejected >= 1, "newest checkpoint rejected");
        // Fallback = the previous checkpoint, hence a *longer* replay than
        // the newest one would have needed.
        assert_eq!(report.checkpoint_tag, Some(8));
        assert_eq!(report.replayed_records, report.journal_records - 8);
        assert_alive(&s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_catalog_tail_drops_only_the_torn_op() {
        let dir = tmp("cattail");
        seed(&dir, 6);
        let cat = dir.join("catalog.log");
        let mut bytes = std::fs::read(&cat).unwrap();
        bytes.extend_from_slice(&[0xde, 0xad, 0xbe, 0xef, 0x01]); // torn frame header
        std::fs::write(&cat, &bytes).unwrap();

        let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts()).unwrap();
        // All five real DDL ops survive (2 declares + event + rule define
        // + implicit enable journaled with the define).
        assert!(report.catalog_ops >= 4, "real ops retained: {}", report.catalog_ops);
        assert!(report.truncated_bytes > 0, "garbage tail counted");
        s.serve_handle().signal("a", vec![(Arc::from("x"), Value::Int(777))], None);
        assert_alive(&s);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn everything_corrupt_still_opens_fresh() {
        let dir = tmp("scorched");
        seed(&dir, 12);
        // Zero every durable file: recovery must degrade to an empty
        // system without panicking.
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.is_file() {
                let len = std::fs::metadata(&p).unwrap().len() as usize;
                std::fs::write(&p, vec![0u8; len]).unwrap();
            }
        }
        let (s, report) = Sentinel::open_durable(&dir, SentinelConfig::default(), opts()).unwrap();
        assert_eq!(report.catalog_ops, 0);
        assert_eq!(report.checkpoint_tag, None);
        assert_eq!(report.replayed_records, 0);
        assert!(s.stats().rule_hits.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
