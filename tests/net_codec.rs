//! Protocol-equivalence suite for the v2 binary payload codec.
//!
//! Four pillars, mirroring `net_protocol.rs`'s guarantees for v1:
//!
//! 1. **Round-trip**: `encode∘decode` is the identity for every payload
//!    shape the protocol carries (params tuples, stats/trace-style
//!    nested objects, arbitrary nesting), and encoding is canonical
//!    (re-encoding the decoded value is byte-identical).
//! 2. **Differential JSON-vs-binary**: the *same* frame encoded as v1
//!    JSON and as v2 binary decodes to the *same* command — including
//!    through live servers, where a JSON client and a binary client
//!    must observe identical replies.
//! 3. **Totality**: garbage bytes, corruption, and truncation at every
//!    byte boundary yield typed errors or `Ok(None)`, never a panic.
//! 4. **Version negotiation**: the matrix of {v1, v2} servers × {JSON,
//!    auto, binary} clients lands on the right wire version, and a v1
//!    client still completes the full command set against a v2 reactor
//!    server.

use proptest::prelude::*;
use std::sync::Arc;

use sentinel_core::Sentinel;
use sentinel_detector::Value as EventValue;
use sentinel_net::codec;
use sentinel_net::protocol::{self, Frame, Opcode, HEADER_LEN, MAGIC};
use sentinel_net::{
    BatchSignal, ClientCodec, ClientError, NetServer, RuleSpec, SentinelClient, ServerConfig,
};
use sentinel_obs::json;

// Scalars in the parser's canonical form (what both a JSON text round
// trip and a binary decode yield): negatives are `Int`, non-negatives
// `UInt`, and only non-integral numbers stay `Float`.
fn scalar_strategy() -> impl Strategy<Value = json::Value> {
    prop_oneof![
        Just(json::Value::Null),
        (1i64..i64::MAX).prop_map(|n| json::Value::Int(-n)),
        any::<u64>().prop_map(json::Value::UInt),
        any::<bool>().prop_map(json::Value::Bool),
        any::<i32>().prop_map(|n| json::Value::Float(f64::from(n) + 0.5)),
        any::<u64>().prop_map(|n| json::Value::str(format!("s{n}"))),
    ]
}

/// Arbitrarily nested values — arrays, objects with distinct keys,
/// scalars — a superset of every payload shape the command set produces
/// (params tuples, stats sections, trace summaries).
fn value_strategy() -> impl Strategy<Value = json::Value> {
    scalar_strategy().prop_recursive(4, 48, 6, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 0..6).prop_map(json::Value::Arr),
            prop::collection::vec(inner, 0..6).prop_map(|vals| {
                json::Value::Obj(
                    vals.into_iter().enumerate().map(|(i, v)| (format!("k{i}"), v)).collect(),
                )
            }),
        ]
    })
}

fn payload_strategy() -> impl Strategy<Value = json::Value> {
    prop_oneof![
        Just(json::Value::Null),
        prop::collection::vec(value_strategy(), 1..5).prop_map(|vals| {
            json::Value::Obj(
                vals.into_iter().enumerate().map(|(i, v)| (format!("k{i}"), v)).collect(),
            )
        }),
    ]
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (prop::sample::select(&Opcode::ALL[..]), any::<u64>(), payload_strategy())
        .prop_map(|(opcode, request_id, payload)| Frame { opcode, request_id, payload })
}

fn event_value_strategy() -> impl Strategy<Value = EventValue> {
    prop_oneof![
        Just(EventValue::Null),
        any::<i64>().prop_map(EventValue::Int),
        any::<i32>().prop_map(|n| EventValue::Float(f64::from(n) / 8.0)),
        any::<bool>().prop_map(EventValue::Bool),
        any::<u64>().prop_map(|n| EventValue::Str(Arc::from(format!("v{n}").as_str()))),
        any::<u64>().prop_map(EventValue::Oid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Pillar 1: the codec round-trips every payload shape, and its
    /// output is canonical — re-encoding the decoded value reproduces
    /// the bytes exactly.
    #[test]
    fn binary_codec_round_trips_every_shape(v in value_strategy()) {
        let bytes = codec::encode_to_vec(&v).unwrap();
        let back = codec::decode_value(&bytes).unwrap();
        prop_assert_eq!(&back, &v);
        prop_assert_eq!(codec::encode_to_vec(&back).unwrap(), bytes);
    }

    /// Pillar 1, for the protocol's own tuple shape: typed event params
    /// → tagged JSON → binary → back, with nothing lost.
    #[test]
    fn param_tuples_survive_the_binary_codec(
        values in prop::collection::vec(event_value_strategy(), 0..8),
        txn in prop_oneof![Just(None), any::<u64>().prop_map(Some)],
    ) {
        let params: Vec<(Arc<str>, EventValue)> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (Arc::from(format!("p{i}").as_str()), v))
            .collect();
        let mut pairs = vec![
            ("event".to_string(), json::Value::str("tick")),
            ("params".to_string(), protocol::params_to_json(&params)),
        ];
        if let Some(t) = txn {
            pairs.push(("txn".to_string(), json::Value::UInt(t)));
        }
        let payload = json::Value::Obj(pairs);
        let bytes = codec::encode_to_vec(&payload).unwrap();
        let back = codec::decode_value(&bytes).unwrap();
        let back_params = back.get("params").and_then(protocol::params_from_json).unwrap();
        prop_assert_eq!(back_params, params);
        prop_assert_eq!(back.get("txn").and_then(json::Value::as_u64), txn);
    }

    /// Pillar 2: one frame, two wire encodings, one meaning. The v1 JSON
    /// and v2 binary encodings of the same frame decode to identical
    /// frames, each tagged with its arrival version.
    #[test]
    fn differential_json_vs_binary_frame(frame in frame_strategy()) {
        let v1 = protocol::encode_with(&frame, protocol::VERSION).unwrap();
        let v2 = protocol::encode_with(&frame, protocol::VERSION_BINARY).unwrap();
        let (f1, w1, u1) = protocol::decode_with(&v1, protocol::VERSION_MAX).unwrap().unwrap();
        let (f2, w2, u2) = protocol::decode_with(&v2, protocol::VERSION_MAX).unwrap().unwrap();
        prop_assert_eq!(w1, protocol::VERSION);
        prop_assert_eq!(w2, protocol::VERSION_BINARY);
        prop_assert_eq!(u1, v1.len());
        prop_assert_eq!(u2, v2.len());
        prop_assert_eq!(&f1, &frame, "JSON body must decode to the original");
        prop_assert_eq!(&f2, &frame, "binary body must decode to the original");
        prop_assert_eq!(&f1, &f2, "both wire forms must agree");
    }

    /// Pillar 2, against the JSON *text* pipeline: binary decode
    /// canonicalizes numbers exactly like `json::Value::parse`, so the
    /// two independent decode paths agree value-for-value.
    #[test]
    fn binary_decode_matches_json_text_parse(v in value_strategy()) {
        let via_text = json::Value::parse(&v.to_string()).unwrap();
        let via_binary = codec::decode_value(&codec::encode_to_vec(&v).unwrap()).unwrap();
        prop_assert_eq!(via_text, via_binary);
    }

    /// Pillar 3: any strict prefix of a valid v2 frame is "incomplete",
    /// never an error or a panic.
    #[test]
    fn binary_truncation_asks_for_more(
        frame in frame_strategy(),
        cut in any::<prop::sample::Index>(),
    ) {
        let bytes = protocol::encode_with(&frame, protocol::VERSION_BINARY).unwrap();
        let cut = cut.index(bytes.len());
        prop_assert_eq!(
            protocol::decode_with(&bytes[..cut], protocol::VERSION_MAX).unwrap(),
            None
        );
    }

    /// Pillar 3: raw garbage handed to the codec is a typed error, never
    /// a panic.
    #[test]
    fn codec_garbage_is_total(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        let _ = codec::decode_value(&bytes);
    }

    /// Pillar 3: garbage stamped with a valid v2 header decodes totally —
    /// a corrupt binary body is a `DecodeError`, not a panic.
    #[test]
    fn framed_binary_garbage_is_total(
        body in prop::collection::vec(any::<u8>(), 0..64),
        id in any::<u64>(),
    ) {
        let mut bytes = Vec::with_capacity(HEADER_LEN + body.len());
        bytes.extend_from_slice(&MAGIC);
        bytes.push(protocol::VERSION_BINARY);
        bytes.push(Opcode::Ping as u8);
        bytes.extend_from_slice(&id.to_le_bytes());
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        if let Ok(Some((_, _, used))) = protocol::decode_with(&bytes, protocol::VERSION_MAX) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Pillar 3: flipping any single byte of a valid v2 frame still
    /// decodes totally.
    #[test]
    fn binary_single_byte_corruption_is_total(
        frame in frame_strategy(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = protocol::encode_with(&frame, protocol::VERSION_BINARY).unwrap();
        let pos = pos.index(bytes.len());
        bytes[pos] ^= xor;
        if let Ok(Some((_, _, used))) = protocol::decode_with(&bytes, protocol::VERSION_MAX) {
            prop_assert!(used <= bytes.len());
        }
    }
}

/// Exhaustive (non-sampled) truncation: a representative frame with a
/// deeply nested payload survives being cut at *every* byte boundary,
/// in both wire versions.
#[test]
fn truncation_at_every_byte_never_panics() {
    let payload = json::Value::obj([
        ("event", json::Value::str("tick")),
        (
            "params",
            json::Value::Arr(vec![
                json::Value::Arr(vec![
                    json::Value::str("p0"),
                    json::Value::str("int"),
                    json::Value::Int(-42),
                ]),
                json::Value::Arr(vec![
                    json::Value::str("p1"),
                    json::Value::str("float"),
                    json::Value::Float(2.5),
                ]),
            ]),
        ),
        ("txn", json::Value::UInt(7)),
        ("nested", json::Value::obj([("deep", json::Value::Arr(vec![json::Value::Null]))])),
    ]);
    let frame = Frame::new(Opcode::SignalSync, 99, payload);
    for version in [protocol::VERSION, protocol::VERSION_BINARY] {
        let bytes = protocol::encode_with(&frame, version).unwrap();
        for cut in 0..bytes.len() {
            assert_eq!(
                protocol::decode_with(&bytes[..cut], protocol::VERSION_MAX).unwrap(),
                None,
                "v{version} cut at {cut}"
            );
        }
        let (back, wire, used) =
            protocol::decode_with(&bytes, protocol::VERSION_MAX).unwrap().unwrap();
        assert_eq!(back, frame);
        assert_eq!(wire, version);
        assert_eq!(used, bytes.len());
    }
}

// ---------------------------------------------------------------------------
// Live-server pillar: negotiation matrix + differential replies.
// ---------------------------------------------------------------------------

fn start_server(max_codec_version: u8, event_loops: usize) -> (Arc<Sentinel>, NetServer, String) {
    let sentinel = Sentinel::in_memory();
    let cfg = ServerConfig { max_codec_version, event_loops, ..ServerConfig::default() };
    let server = NetServer::start(sentinel.serve_handle(), cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    (sentinel, server, addr)
}

/// Drives the full command surface over one client and checks every
/// reply. `tag` distinguishes event/rule names so several clients can
/// run the set against one server.
fn run_full_command_set(client: &SentinelClient, tag: &str) {
    // Ping echoes a structured payload.
    let payload = json::Value::obj([
        ("n", json::Value::UInt(42)),
        ("list", json::Value::Arr(vec![json::Value::Int(-1), json::Value::str("x")])),
    ]);
    assert_eq!(client.ping(payload.clone()).unwrap(), payload);

    // DDL: class, events, composite, rule, rule admin.
    client.define_class(&format!("Cls{tag}"), &[("x", "int"), ("label", "str")]).unwrap();
    client.define_event(&format!("a_{tag}"), None).unwrap();
    client.define_event(&format!("b_{tag}"), None).unwrap();
    client.define_event(&format!("pair_{tag}"), Some(&format!("a_{tag} ; b_{tag}"))).unwrap();
    client
        .define_rule(
            &RuleSpec::count(&format!("rule_{tag}"), &format!("pair_{tag}")).context("chronicle"),
        )
        .unwrap();
    client.disable_rule(&format!("rule_{tag}")).unwrap();
    client.enable_rule(&format!("rule_{tag}")).unwrap();

    // Signals: a sync pair detection, an async tick, and a batch.
    assert_eq!(client.signal_sync(&format!("a_{tag}"), &[], None).unwrap(), 0);
    assert_eq!(client.signal_sync(&format!("b_{tag}"), &[], None).unwrap(), 1);
    client.signal_async(&format!("a_{tag}"), &[], None).unwrap();
    let a = format!("a_{tag}");
    let b = format!("b_{tag}");
    let batch: Vec<BatchSignal<'_>> =
        vec![(&a, &[], None), (&b, &[], None), (&a, &[], None), (&b, &[], None)];
    let (accepted, _detections) = client.signal_batch(&batch).unwrap();
    assert_eq!(accepted, 4);

    // Introspection.
    let stats = client.stats().unwrap();
    assert!(stats.get("net").is_some(), "stats must carry the net section");
    let scrape = client.metrics_scrape().unwrap();
    assert!(scrape.get("prom").and_then(json::Value::as_str).is_some());
    let traces = client.trace_summaries().unwrap();
    assert!(traces.get("traces").is_some());
    client.export_chrome_trace().unwrap();

    // Replication opcodes stay wire-compatible: each must parse and get
    // a typed reply. (An in-memory primary may decline some with a
    // server error — what matters here is the codec, not storage mode.)
    for result in [
        client.repl_subscribe(&format!("f_{tag}")).map(|_| ()),
        client.repl_snapshot().map(|_| ()),
        client.repl_frames(0, 8).map(|_| ()),
        client.repl_ack(&format!("f_{tag}"), 0).map(|_| ()),
    ] {
        match result {
            Ok(()) | Err(ClientError::Server { .. }) => {}
            Err(e) => panic!("repl opcode broke at the transport level: {e}"),
        }
    }
    // Promote on a primary answers `false`, not an error.
    assert!(!client.promote().unwrap());

    // Rule teardown closes the loop.
    client.drop_rule(&format!("rule_{tag}")).unwrap();
}

/// Pillar 4: every pairing of server version ceiling × client codec
/// lands on the correct wire version, on both transport backends.
#[test]
fn version_negotiation_matrix() {
    for event_loops in [2usize, 0] {
        // v2-capable server.
        let (_s, _server, addr) = start_server(protocol::VERSION_MAX, event_loops);
        let auto = SentinelClient::connect_with(&addr, "auto", ClientCodec::Auto).unwrap();
        assert_eq!(auto.negotiated_version(), protocol::VERSION_BINARY);
        let jsonc = SentinelClient::connect_with(&addr, "json", ClientCodec::Json).unwrap();
        assert_eq!(jsonc.negotiated_version(), protocol::VERSION);
        let binc = SentinelClient::connect_with(&addr, "bin", ClientCodec::Binary).unwrap();
        assert_eq!(binc.negotiated_version(), protocol::VERSION_BINARY);
        for c in [&auto, &jsonc, &binc] {
            let echo = json::Value::obj([("loops", json::Value::UInt(event_loops as u64))]);
            assert_eq!(c.ping(echo.clone()).unwrap(), echo);
        }

        // v1-only server (an old build, emulated by the version ceiling).
        let (_s1, _server1, addr1) = start_server(protocol::VERSION, event_loops);
        let auto1 = SentinelClient::connect_with(&addr1, "auto", ClientCodec::Auto).unwrap();
        assert_eq!(
            auto1.negotiated_version(),
            protocol::VERSION,
            "v2 client must downgrade to a v1 server"
        );
        auto1.ping(json::Value::obj([("ok", json::Value::Bool(true))])).unwrap();
        let bin1 = SentinelClient::connect_with(&addr1, "bin", ClientCodec::Binary);
        assert!(bin1.is_err(), "pinned-binary client must refuse a v1-only server");
    }
}

/// Pillar 4's acceptance bar: a v1 JSON client completes the full
/// command set against the v2 reactor server, and a binary client
/// completes the same set on the same server.
#[test]
fn v1_client_completes_full_command_set_against_reactor() {
    let (_sentinel, _server, addr) = start_server(protocol::VERSION_MAX, 2);
    let v1 = SentinelClient::connect_with(&addr, "legacy", ClientCodec::Json).unwrap();
    assert_eq!(v1.negotiated_version(), protocol::VERSION);
    run_full_command_set(&v1, "v1");
    let v2 = SentinelClient::connect_with(&addr, "modern", ClientCodec::Binary).unwrap();
    assert_eq!(v2.negotiated_version(), protocol::VERSION_BINARY);
    run_full_command_set(&v2, "v2");
}

/// Pillar 2 through live servers: a JSON client and a binary client
/// issuing the same requests observe identical results.
#[test]
fn json_and_binary_clients_observe_identical_replies() {
    let (_sentinel, _server, addr) = start_server(protocol::VERSION_MAX, 2);
    let jsonc = SentinelClient::connect_with(&addr, "j", ClientCodec::Json).unwrap();
    let binc = SentinelClient::connect_with(&addr, "b", ClientCodec::Binary).unwrap();

    // Identical echo of a payload covering every scalar shape.
    let payload = json::Value::obj([
        ("u", json::Value::UInt(u64::MAX)),
        ("i", json::Value::Int(-12345)),
        ("f", json::Value::Float(3.25)),
        ("s", json::Value::str("héllo")),
        ("b", json::Value::Bool(true)),
        ("n", json::Value::Null),
        ("arr", json::Value::Arr(vec![json::Value::UInt(1), json::Value::str("two")])),
    ]);
    assert_eq!(jsonc.ping(payload.clone()).unwrap(), binc.ping(payload.clone()).unwrap());
    assert_eq!(jsonc.ping(payload.clone()).unwrap(), payload);

    // Identical detection semantics for the same workload, with the
    // pair opened and closed across codecs in both directions.
    jsonc.define_event("a", None).unwrap();
    jsonc.define_event("b", None).unwrap();
    jsonc.define_event("pair", Some("a ; b")).unwrap();
    jsonc.define_rule(&RuleSpec::count("pairs", "pair").context("chronicle")).unwrap();
    for (opener, closer) in [(&jsonc, &binc), (&binc, &jsonc)] {
        assert_eq!(opener.signal_sync("a", &[], None).unwrap(), 0);
        assert_eq!(closer.signal_sync("b", &[], None).unwrap(), 1);
    }

    // Identical server-reported errors (a malformed composite expr).
    let je = jsonc.define_event("broken", Some("a ;; (")).unwrap_err();
    let be = binc.define_event("broken", Some("a ;; (")).unwrap_err();
    match (je, be) {
        (
            ClientError::Server { code: jc, message: jm },
            ClientError::Server { code: bc, message: bm },
        ) => {
            assert_eq!(jc, bc);
            assert_eq!(jm, bm);
        }
        other => panic!("expected matching server errors, got {other:?}"),
    }
}
