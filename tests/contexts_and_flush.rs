//! SEC-3.2.2: multiple contexts in a single event graph, counter-based
//! enable/disable, and event flushing at transaction boundaries.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::LocalEventDetector;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::{parse_event_expr, ParamContext};

const SIG: &str = "void m()";

fn det() -> LocalEventDetector {
    let d = LocalEventDetector::new(0);
    for name in ["a", "b"] {
        d.declare_primitive(name, "C", EventModifier::End, SIG, PrimTarget::AnyInstance).unwrap();
    }
    d
}

fn fire(d: &LocalEventDetector, _name: &str, txn: u64) -> Vec<sentinel_core::detector::Detection> {
    d.notify_method("C", SIG, EventModifier::End, 1, Vec::new(), Some(txn))
}

/// One shared AND node detects simultaneously in all four contexts, each
/// pairing occurrences differently.
#[test]
fn four_contexts_one_graph() {
    // `a` and `b` must be independent here, so declare them on separate
    // classes (elsewhere in this file they intentionally share one class).
    let d = {
        let d = LocalEventDetector::new(0);
        d.declare_primitive("a", "CA", EventModifier::End, SIG, PrimTarget::AnyInstance).unwrap();
        d.declare_primitive("b", "CB", EventModifier::End, SIG, PrimTarget::AnyInstance).unwrap();
        d
    };
    let and = d.define_named("ab", &parse_event_expr("a ^ b").unwrap()).unwrap();
    let size_before = d.graph_size();
    for (i, ctx) in ParamContext::ALL.into_iter().enumerate() {
        d.subscribe(and, ctx, i as u64 + 1).unwrap();
    }
    assert_eq!(d.graph_size(), size_before, "one graph, no duplicated nodes");

    // a a b: recent pairs (a2,b), chronicle (a1,b), continuous both,
    // cumulative everything.
    d.notify_method("CA", SIG, EventModifier::End, 1, Vec::new(), Some(1));
    d.notify_method("CA", SIG, EventModifier::End, 1, Vec::new(), Some(1));
    let dets = d.notify_method("CB", SIG, EventModifier::End, 1, Vec::new(), Some(1));

    let by_ctx = |c: ParamContext| {
        dets.iter()
            .filter(|x| x.context == c)
            .map(|x| x.occurrence.param_list().len())
            .collect::<Vec<_>>()
    };
    assert_eq!(by_ctx(ParamContext::Recent), vec![2], "recent: latest a + b");
    assert_eq!(by_ctx(ParamContext::Chronicle), vec![2], "chronicle: oldest a + b");
    assert_eq!(by_ctx(ParamContext::Continuous), vec![2, 2], "continuous: one per open a");
    assert_eq!(by_ctx(ParamContext::Cumulative), vec![3], "cumulative: both a's + b");
}

/// "Once a rule is disabled or deleted … the respective counter is
/// decremented. If the counter is reset to 0, events are no longer detected
/// in that context" — while other contexts keep detecting.
#[test]
fn counter_zero_stops_one_context_only() {
    let d = det();
    let seq = d.define_named("aa", &parse_event_expr("(a ; a)").unwrap()).unwrap();
    d.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
    d.subscribe(seq, ParamContext::Recent, 2).unwrap();
    d.subscribe(seq, ParamContext::Chronicle, 3).unwrap();

    // Unsubscribe one chronicle rule: counter 2→1, still detecting.
    d.unsubscribe(seq, ParamContext::Chronicle, 1).unwrap();
    fire(&d, "a", 1);
    let dets = fire(&d, "a", 1);
    assert!(dets.iter().any(|x| x.context == ParamContext::Chronicle));
    assert!(dets.iter().any(|x| x.context == ParamContext::Recent));

    // Unsubscribe the last chronicle rule: counter 0, chronicle state gone.
    d.unsubscribe(seq, ParamContext::Chronicle, 3).unwrap();
    let dets = fire(&d, "a", 1);
    assert!(dets.iter().all(|x| x.context == ParamContext::Recent));
}

/// The paper's aborted-transaction scenario: without flushing, T2 would
/// fire a rule whose parameters "in the database sense do not exist at all".
#[test]
fn abort_flush_prevents_phantom_parameters() {
    let d = det();
    let seq = d.define_named("ab2", &parse_event_expr("(a ; b)").unwrap()).unwrap();
    d.subscribe(seq, ParamContext::Chronicle, 1).unwrap();

    // Transaction 1 raises `a` (via class CA == C here), then aborts.
    d.notify_method("C", SIG, EventModifier::End, 1, Vec::new(), Some(1));
    d.flush_txn(1); // what the abort rule does
                    // Transaction 2 raises `b`.
    let dets = d.notify_method("C", SIG, EventModifier::End, 1, Vec::new(), Some(2));
    assert!(
        dets.iter().all(|x| x.event != seq),
        "no composite with constituents from the aborted transaction"
    );
}

/// Selective flush of one event expression vs. the entire graph.
#[test]
fn selective_and_full_flush() {
    let d = det();
    let seq_a = d.define_named("xa", &parse_event_expr("(a ; a)").unwrap()).unwrap();
    let seq_b = d.define_named("xb", &parse_event_expr("(b ; b)").unwrap()).unwrap();
    d.subscribe(seq_a, ParamContext::Chronicle, 1).unwrap();
    d.subscribe(seq_b, ParamContext::Chronicle, 2).unwrap();
    // Buffer initiators for both. (a and b share class C + sig here, so one
    // call feeds both leaves.)
    fire(&d, "a", 1);
    // Selective: flush only seq_a's subtree — seq_b keeps its initiator…
    d.flush_event(seq_a).unwrap();
    assert!(d.flush_event(sentinel_core::detector::EventId(u32::MAX)).is_err());
    let dets = fire(&d, "a", 1);
    assert!(dets.iter().any(|x| x.event == seq_b), "xb unaffected by selective flush");
    assert!(dets.iter().all(|x| x.event != seq_a), "xa state was flushed");
    // …full flush clears everything.
    d.flush_all();
    let dets = fire(&d, "a", 1);
    assert!(dets.is_empty());
}

/// PREVIOUS rules accept constituents buffered before their definition;
/// NOW rules do not (paper §3.1 rule trigger modes).
#[test]
fn trigger_modes_through_the_full_stack() {
    use sentinel_core::rules::manager::RuleOptions;
    use sentinel_core::sentinel::SentinelConfig;
    use sentinel_core::snoop::TriggerMode;
    use sentinel_core::Sentinel;

    let s = Sentinel::in_memory_with(SentinelConfig::default());
    s.detector().declare_explicit("p");
    s.detector().declare_explicit("q");
    s.define_event("pq", "(p ; q)").unwrap();

    // Keep the chronicle context alive from the start.
    let keeper_fired = Arc::new(AtomicUsize::new(0));
    let kf = keeper_fired.clone();
    s.define_rule(
        "keeper",
        "pq",
        Arc::new(|_| true),
        Arc::new(move |_| {
            kf.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default().trigger(TriggerMode::Previous),
    )
    .unwrap();

    let t = s.begin().unwrap();
    s.raise(Some(t), "p", Vec::new()).unwrap(); // initiator before late rules

    let now_fired = Arc::new(AtomicUsize::new(0));
    let prev_fired = Arc::new(AtomicUsize::new(0));
    let (n, p) = (now_fired.clone(), prev_fired.clone());
    s.define_rule(
        "late_now",
        "pq",
        Arc::new(|_| true),
        Arc::new(move |_| {
            n.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default().trigger(TriggerMode::Now),
    )
    .unwrap();
    s.define_rule(
        "late_prev",
        "pq",
        Arc::new(|_| true),
        Arc::new(move |_| {
            p.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default().trigger(TriggerMode::Previous),
    )
    .unwrap();

    s.raise(Some(t), "q", Vec::new()).unwrap(); // terminator
    assert_eq!(keeper_fired.load(Ordering::SeqCst), 1);
    assert_eq!(prev_fired.load(Ordering::SeqCst), 1, "PREVIOUS accepts old initiator");
    assert_eq!(now_fired.load(Ordering::SeqCst), 0, "NOW rejects pre-definition initiator");
    s.commit(t).unwrap();
}

/// Reusing a named event under several rules with different contexts
/// reuses the same sub-graph (the §3.1 late-binding argument).
#[test]
fn event_reuse_late_context_binding() {
    let d = det();
    let and = d.define_named("shared", &parse_event_expr("a ^ b").unwrap()).unwrap();
    let n0 = d.graph_size();
    d.subscribe(and, ParamContext::Recent, 1).unwrap();
    d.subscribe(and, ParamContext::Chronicle, 2).unwrap();
    d.subscribe(and, ParamContext::Cumulative, 3).unwrap();
    assert_eq!(d.graph_size(), n0, "contexts bound late, no new nodes");
    let counts = Arc::new(Mutex::new(Vec::new()));
    let dets = fire(&d, "ab", 9);
    counts.lock().push(dets.len());
    // a AND b both fired by the same call (same class/sig) -> all three
    // contexts detect.
    assert_eq!(dets.len(), 3);
}
