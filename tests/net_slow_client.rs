//! Torture tests for the epoll reactor against pathological peers:
//!
//! * a **dribbler** that stalls mid-frame must be evicted after
//!   `stall_timeout` *without* blocking the event loop — healthy clients
//!   sharing the loop keep completing requests promptly;
//! * a slow-but-progressing dribbler (one byte at a time, under the
//!   stall clock) must still get its reply — partial-read resumption,
//!   not a pace requirement;
//! * an **idle** connection is never evicted — only conns with a partial
//!   inbound frame or queued outbound bytes are on the stall clock
//!   (10k idle keep-alive connections is the point of the reactor);
//! * a peer that sends requests but never reads replies (a SIGSTOP'd or
//!   half-open client) must hit the bounded write queue and be evicted
//!   (`overflow_evictions`) instead of growing server memory without
//!   bound.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use sentinel_core::Sentinel;
use sentinel_net::protocol::{self, Frame, Opcode};
use sentinel_net::{NetServer, SentinelClient, ServerConfig};
use sentinel_obs::json;

fn start_reactor(configure: impl FnOnce(&mut ServerConfig)) -> (Arc<Sentinel>, NetServer, String) {
    let sentinel = Sentinel::in_memory();
    let mut cfg = ServerConfig { event_loops: 1, ..ServerConfig::default() };
    configure(&mut cfg);
    let server = NetServer::start(sentinel.serve_handle(), cfg).expect("bind loopback");
    let addr = server.local_addr().to_string();
    (sentinel, server, addr)
}

fn net_stat(admin: &SentinelClient, key: &str) -> u64 {
    admin
        .stats()
        .unwrap()
        .get("net")
        .and_then(|n| n.get(key))
        .and_then(json::Value::as_u64)
        .unwrap_or(0)
}

/// Polls a net-section counter until it reaches `want` or the deadline
/// passes; returns the last observed value.
fn wait_for_stat(admin: &SentinelClient, key: &str, want: u64, deadline: Duration) -> u64 {
    let start = Instant::now();
    loop {
        let got = net_stat(admin, key);
        if got >= want || start.elapsed() > deadline {
            return got;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn ping_frame_bytes(payload: json::Value) -> Vec<u8> {
    protocol::encode_with(&Frame::new(Opcode::Ping, 7, payload), protocol::VERSION).unwrap()
}

/// A peer that sends half a frame and then goes silent must be evicted
/// on the stall clock — and while it sits there mid-frame, a healthy
/// client on the same event loop keeps getting prompt replies.
#[test]
fn mid_frame_staller_is_evicted_without_blocking_the_loop() {
    let (_sentinel, _server, addr) =
        start_reactor(|cfg| cfg.stall_timeout = Duration::from_millis(250));
    let admin = SentinelClient::connect(&addr, "admin").unwrap();

    let mut staller = TcpStream::connect(&addr).unwrap();
    let frame = ping_frame_bytes(json::Value::obj([("x", json::Value::UInt(1))]));
    staller.write_all(&frame[..frame.len() / 2]).unwrap();
    staller.flush().unwrap();

    // While the staller holds its half-frame, the loop must stay live:
    // every healthy request completes promptly (the loop tick is
    // stall/4, so 250ms of budget per ping is generous — unless the
    // loop were actually blocked on the staller's socket).
    let healthy = SentinelClient::connect(&addr, "healthy").unwrap();
    let hammer_until = Instant::now() + Duration::from_millis(400);
    while Instant::now() < hammer_until {
        let t = Instant::now();
        let echo = json::Value::obj([("t", json::Value::UInt(42))]);
        assert_eq!(healthy.ping(echo.clone()).unwrap(), echo);
        assert!(
            t.elapsed() < Duration::from_millis(250),
            "healthy ping took {:?} while a peer stalled mid-frame",
            t.elapsed()
        );
    }

    let evictions = wait_for_stat(&admin, "stall_evictions", 1, Duration::from_secs(5));
    assert!(evictions >= 1, "mid-frame staller was never evicted");

    // The server actually closed the staller's socket: reads drain to
    // EOF (or a reset, if the kernel already tore the connection down).
    staller.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 256];
    loop {
        match staller.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }
}

/// One byte every few milliseconds is slow but *progressing* — the stall
/// clock resets on every byte, so the dribbled request completes.
#[test]
fn slow_but_progressing_dribbler_completes() {
    let (_sentinel, _server, addr) =
        start_reactor(|cfg| cfg.stall_timeout = Duration::from_millis(400));
    let admin = SentinelClient::connect(&addr, "admin").unwrap();

    let mut dribbler = TcpStream::connect(&addr).unwrap();
    dribbler.set_nodelay(true).unwrap();
    let frame = ping_frame_bytes(json::Value::obj([("slow", json::Value::Bool(true))]));
    for byte in &frame {
        dribbler.write_all(std::slice::from_ref(byte)).unwrap();
        std::thread::sleep(Duration::from_millis(3));
    }

    // The reply comes back whole: resume-across-reads on the way in,
    // a complete frame on the way out.
    dribbler.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 512];
    let reply = loop {
        let n = dribbler.read(&mut chunk).expect("reply before eviction");
        assert!(n > 0, "server closed on a progressing dribbler");
        buf.extend_from_slice(&chunk[..n]);
        if let Some((frame, _, _)) =
            protocol::decode_with(&buf, protocol::VERSION_MAX).expect("well-formed reply")
        {
            break frame;
        }
    };
    assert_eq!(reply.opcode, Opcode::Ok);
    assert_eq!(reply.request_id, 7);
    assert_eq!(net_stat(&admin, "stall_evictions"), 0, "no eviction for slow-but-alive peers");
}

/// Idleness is not a stall: a connection with no partial frame and no
/// queued replies sits past many stall timeouts and still works. (This
/// is what lets 10k idle keep-alive connections ride on one loop.)
#[test]
fn idle_connections_are_never_evicted() {
    let (_sentinel, _server, addr) =
        start_reactor(|cfg| cfg.stall_timeout = Duration::from_millis(150));
    let admin = SentinelClient::connect(&addr, "admin").unwrap();
    let idle = SentinelClient::connect(&addr, "idle").unwrap();

    std::thread::sleep(Duration::from_millis(600)); // 4× the stall timeout
    let echo = json::Value::obj([("still", json::Value::str("here"))]);
    assert_eq!(idle.ping(echo.clone()).unwrap(), echo, "idle connection must survive");
    assert_eq!(net_stat(&admin, "stall_evictions"), 0);
}

/// A peer that pours requests in and never reads replies (the userspace
/// face of a SIGSTOP'd process or a half-open link) must be evicted when
/// the bounded write queue overflows — server memory stays bounded.
#[test]
fn non_reading_peer_overflows_bounded_write_queue() {
    let (_sentinel, _server, addr) = start_reactor(|cfg| {
        cfg.max_write_queue = 1; // floor: still admits one max-size frame
        cfg.stall_timeout = Duration::from_secs(3600); // isolate the overflow path
    });
    let admin = SentinelClient::connect(&addr, "admin").unwrap();

    // Each ping echoes ~256 KiB back; the effective queue cap is one
    // max-size frame (~1 MiB), so a handful of unread replies overflow
    // it once the kernel's socket buffers are full.
    let big = "x".repeat(256 * 1024);
    let frame = ping_frame_bytes(json::Value::obj([("fill", json::Value::str(big.as_str()))]));
    let mut glutton = TcpStream::connect(&addr).unwrap();
    glutton.set_write_timeout(Some(Duration::from_millis(500))).unwrap();

    let mut evicted = 0;
    for _ in 0..256 {
        if glutton.write_all(&frame).is_err() {
            // Reset by the server: eviction already happened.
            break;
        }
        evicted = net_stat(&admin, "overflow_evictions");
        if evicted >= 1 {
            break;
        }
    }
    let evicted =
        evicted.max(wait_for_stat(&admin, "overflow_evictions", 1, Duration::from_secs(5)));
    assert!(evicted >= 1, "non-reading peer never hit the write-queue bound");

    // The server is unharmed: a healthy client still gets instant echoes.
    let healthy = SentinelClient::connect(&addr, "healthy").unwrap();
    let echo = json::Value::obj([("ok", json::Value::Bool(true))]);
    assert_eq!(healthy.ping(echo.clone()).unwrap(), echo);
    let hwm = net_stat(&admin, "write_queue_hwm");
    assert!(hwm > 0, "write-queue high-watermark should have registered backlog");
}
