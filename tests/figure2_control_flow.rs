//! FIG-2: the local/global event detector control flow.
//!
//! Figure 2's numbered steps:
//!   1 - primitive event signalled
//!   2 - composite event detection for immediate rules
//!   3 - pre-commit and abort signalled
//!   4 - causally dependent commit signalled
//!   5 - inter-application events detected
//!   6 - rules executed as subtransactions
//!
//! Each step is asserted on the integrated system.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::global::GlobalEventDetector;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::Sentinel;

const TICK_SIG: &str = "void tick(int n)";

fn app(app_id: u32) -> Arc<Sentinel> {
    let s = Sentinel::in_memory_with(SentinelConfig { app_id, ..SentinelConfig::default() });
    s.db()
        .register_class(
            ClassDef::new("CLOCKED").extends("REACTIVE").attr("n", AttrType::Int).method(TICK_SIG),
        )
        .unwrap();
    s.db().register_method(
        "CLOCKED",
        TICK_SIG,
        Arc::new(|ctx| {
            let n = ctx.arg("n").and_then(|v| v.as_int()).unwrap_or(0);
            ctx.set_attr("n", n)?;
            Ok(AttrValue::Null)
        }),
    );
    s.declare_event("tick", "CLOCKED", EventModifier::End, TICK_SIG, PrimTarget::AnyInstance)
        .unwrap();
    s
}

#[test]
fn steps_1_2_6_primitive_composite_and_subtransactions() {
    let s = app(1);
    s.define_event("double_tick", "(tick ; tick)").unwrap();
    let subtxn_seen = Arc::new(Mutex::new(Vec::new()));
    let seen = subtxn_seen.clone();
    s.define_rule(
        "on_double",
        "double_tick",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            // Step 6: the rule body runs inside a subtransaction.
            seen.lock().push((inv.subtxn, inv.depth));
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let obj = s.create_object(t, &ObjectState::new("CLOCKED").with("n", 0)).unwrap();
    s.invoke(t, obj, TICK_SIG, vec![("n".into(), 1.into())]).unwrap(); // step 1
    s.invoke(t, obj, TICK_SIG, vec![("n".into(), 2.into())]).unwrap(); // step 2: composite detected
    s.commit(t).unwrap();
    let seen = subtxn_seen.lock();
    assert_eq!(seen.len(), 1);
    assert!(seen[0].0.is_some(), "rule executed as a subtransaction");
    assert_eq!(seen[0].1, 0, "top-level triggering depth");
}

#[test]
fn step_3_pre_commit_and_abort_signalled() {
    let s = app(1);
    let log = Arc::new(Mutex::new(Vec::<String>::new()));
    for ev in ["pre-commit-transaction", "abort-transaction", "begin-transaction"] {
        let l = log.clone();
        let name = ev.to_string();
        s.define_rule(
            &format!("obs_{ev}"),
            ev,
            Arc::new(|_| true),
            Arc::new(move |_| l.lock().push(name.clone())),
            RuleOptions::default(),
        )
        .unwrap();
    }
    let t = s.begin().unwrap();
    s.commit(t).unwrap();
    let t = s.begin().unwrap();
    s.abort(t).unwrap();
    let log = log.lock().clone();
    assert_eq!(
        log,
        vec![
            "begin-transaction".to_string(),
            "pre-commit-transaction".to_string(),
            "begin-transaction".to_string(),
            "abort-transaction".to_string(),
        ]
    );
}

#[test]
fn step_4_commit_event_signalled_after_durability() {
    let s = app(1);
    let committed = Arc::new(AtomicUsize::new(0));
    let c = committed.clone();
    s.define_rule(
        "obs_commit",
        "commit-transaction",
        Arc::new(|_| true),
        Arc::new(move |_| {
            c.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    s.commit(t).unwrap();
    assert_eq!(committed.load(Ordering::SeqCst), 1);
    // An aborted transaction must NOT fire the commit event.
    let t = s.begin().unwrap();
    s.abort(t).unwrap();
    assert_eq!(committed.load(Ordering::SeqCst), 1);
}

#[test]
fn step_5_inter_application_events() {
    let global = GlobalEventDetector::spawn();
    let app1 = app(1);
    let app2 = app(2);
    app1.forward_to_global("tick", &global.handle()).unwrap();
    app2.forward_to_global("tick", &global.handle()).unwrap();
    // Sequence across applications: app1 ticks, THEN app2 ticks.
    global.define_event("relay", "(app1.tick ; app2.tick)").unwrap();
    let (tx, rx) = crossbeam::channel::bounded(2);
    global
        .define_rule(
            "relay_rule",
            "relay",
            Arc::new(|_| true),
            Arc::new(move |inv| {
                let _ = tx.send(inv.occurrence.param_list().len());
            }),
        )
        .unwrap();

    // app2 first: must NOT complete the sequence.
    let t2 = app2.begin().unwrap();
    let o2 = app2.create_object(t2, &ObjectState::new("CLOCKED").with("n", 0)).unwrap();
    app2.invoke(t2, o2, TICK_SIG, vec![("n".into(), 1.into())]).unwrap();
    app2.commit(t2).unwrap();
    assert!(rx.recv_timeout(std::time::Duration::from_millis(200)).is_err());

    // app1 then app2: completes.
    let t1 = app1.begin().unwrap();
    let o1 = app1.create_object(t1, &ObjectState::new("CLOCKED").with("n", 0)).unwrap();
    app1.invoke(t1, o1, TICK_SIG, vec![("n".into(), 2.into())]).unwrap();
    app1.commit(t1).unwrap();
    let t2 = app2.begin().unwrap();
    app2.invoke(t2, o2, TICK_SIG, vec![("n".into(), 3.into())]).unwrap();
    app2.commit(t2).unwrap();
    let prims = rx.recv_timeout(std::time::Duration::from_secs(3)).expect("global sequence");
    assert_eq!(prims, 2);
}

#[test]
fn nested_rule_events_reach_the_detector_like_top_level_ones() {
    // "Support for multiple rule execution and nested rule execution
    // entails that the event detector be able to receive events detected
    // within a rule's execution in the same manner it receives events
    // detected in a top level transaction."
    let s = app(1);
    let depths = Arc::new(Mutex::new(Vec::new()));
    let s2 = s.clone();
    s.detector().declare_explicit("chain");
    let d = depths.clone();
    s.define_rule(
        "chain_rule",
        "chain",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            d.lock().push(inv.depth);
            if inv.depth < 3 {
                // Raise the same event from within the action.
                s2.raise(inv.txn.map(sentinel_core::storage::TxnId), "chain", Vec::new()).unwrap();
            }
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    s.raise(Some(t), "chain", Vec::new()).unwrap();
    s.commit(t).unwrap();
    assert_eq!(*depths.lock(), vec![0, 1, 2, 3], "arbitrary nesting levels");
}
