//! Shard-merge DDL under concurrent load, and checkpoint cuts under async
//! bursts.
//!
//! Two disjoint composite events are signalled concurrently through a
//! [`DetectorPool`]; mid-stream, DDL defines a SEQ bridging both
//! components — an incremental shard merge executed at a pool barrier. No
//! occurrence may be lost or doubled in any of the four parameter
//! contexts, and after the merge the bridge must detect across the (now
//! single) shard. A second test cuts snapshots with
//! [`DetectorPool::with_paused`] while feeders blast signals, proving the
//! pause quiesces every shard *and* drains every worker queue first.

use std::sync::Arc;

use sentinel_core::detector::service::Signal;
use sentinel_core::detector::{Detection, DetectorPool, EventId, LocalEventDetector};
use sentinel_core::snoop::{parse_event_expr, ParamContext};

fn explicit(name: &str) -> Signal {
    Signal::Explicit { name: name.into(), params: Vec::new(), txn: None }
}

/// Detector with two disjoint components `sx = xa ; xb` and
/// `sy = ya ; yb`, each subscribed in all four contexts.
fn two_components() -> (Arc<LocalEventDetector>, EventId, EventId) {
    let det = Arc::new(LocalEventDetector::new(1));
    for name in ["xa", "xb", "ya", "yb"] {
        det.declare_explicit(name);
    }
    let sx = det.define_named("sx", &parse_event_expr("xa ; xb").unwrap()).unwrap();
    let sy = det.define_named("sy", &parse_event_expr("ya ; yb").unwrap()).unwrap();
    for (xi, &ctx) in ParamContext::ALL.iter().enumerate() {
        det.subscribe(sx, ctx, (10 + xi) as u64).unwrap();
        det.subscribe(sy, ctx, (20 + xi) as u64).unwrap();
    }
    (det, sx, sy)
}

/// Strictly alternating `a ; b` pairs detect exactly once per pair in
/// every context, so `PAIRS` detections per context is the loss/double
/// oracle.
const PAIRS: usize = 120;

#[test]
fn mid_stream_bridge_merges_shards_without_losing_occurrences() {
    let (det, sx, sy) = two_components();
    let pool = DetectorPool::spawn(det.clone(), 4);
    assert_ne!(
        det.shard_of_event("xa"),
        det.shard_of_event("ya"),
        "components must start in distinct shards"
    );

    let bridge = std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..PAIRS {
                pool.signal_async(explicit("xa"));
                pool.signal_async(explicit("xb"));
            }
        });
        s.spawn(|| {
            for _ in 0..PAIRS {
                pool.signal_async(explicit("ya"));
                pool.signal_async(explicit("yb"));
            }
        });
        // Merge the two components while both feeders are (likely) still
        // running: the barrier drains every queue, the DDL unions the
        // shards, and the feeders resume against the merged shard.
        std::thread::sleep(std::time::Duration::from_millis(2));
        pool.barrier(|d| {
            let id = d.define_named("bridge", &parse_event_expr("sx ; sy").unwrap()).unwrap();
            for (xi, &ctx) in ParamContext::ALL.iter().enumerate() {
                d.subscribe(id, ctx, (30 + xi) as u64).unwrap();
            }
            id
        })
    });

    assert_eq!(
        det.shard_of_event("xa"),
        det.shard_of_event("ya"),
        "bridge DDL must merge the components into one shard"
    );

    // Fence, then audit: every pair detected exactly once per context on
    // both composites, regardless of where the merge cut the stream.
    pool.barrier(|_| {});
    let dets: Vec<Detection> = pool.detections().try_iter().collect();
    for &ctx in &ParamContext::ALL {
        let n = |ev: EventId| dets.iter().filter(|d| d.event == ev && d.context == ctx).count();
        assert_eq!(n(sx), PAIRS, "sx lost/doubled an occurrence in {ctx:?}");
        assert_eq!(n(sy), PAIRS, "sy lost/doubled an occurrence in {ctx:?}");
    }

    // Post-merge, the bridge detects across the formerly disjoint
    // components in all four contexts.
    pool.signal_sync(explicit("xa"));
    pool.signal_sync(explicit("xb"));
    pool.signal_sync(explicit("ya"));
    let tail = pool.signal_sync(explicit("yb"));
    for &ctx in &ParamContext::ALL {
        assert!(
            tail.iter().any(|d| d.event == bridge && d.context == ctx),
            "bridge silent in {ctx:?} after the merge"
        );
    }

    // Per-shard observability: every signal is accounted to some shard.
    let stats = det.stats();
    let shard_signals: u64 = stats.shards.iter().map(|s| s.signals).sum();
    assert_eq!(shard_signals, stats.signals, "per-shard signal counters must sum to the total");
}

/// `with_paused` is the checkpoint-cut primitive: under a concurrent
/// async burst, every cut sees a drained pool and fully quiesced shards —
/// two snapshots inside one pause are byte-identical, and each restores
/// into a fresh twin detector.
#[test]
fn checkpoint_cuts_are_clean_under_async_burst() {
    let (det, sx, sy) = two_components();
    let pool = DetectorPool::spawn(det.clone(), 4);

    let cuts = std::thread::scope(|s| {
        s.spawn(|| {
            for _ in 0..PAIRS {
                pool.signal_async(explicit("xa"));
                pool.signal_async(explicit("xb"));
            }
        });
        s.spawn(|| {
            for _ in 0..PAIRS {
                pool.signal_async(explicit("ya"));
                pool.signal_async(explicit("yb"));
            }
        });
        let mut cuts = Vec::new();
        for _ in 0..8 {
            let (a, b) = pool.with_paused(|| (det.snapshot_state(), det.snapshot_state()));
            assert_eq!(a.encode(), b.encode(), "a signal raced the paused closure");
            cuts.push(a);
        }
        cuts
    });

    // Every mid-burst cut is a consistent image: it restores into a twin
    // detector without error.
    for snap in &cuts {
        let (twin, _, _) = two_components();
        twin.restore_snapshot(snap).expect("mid-burst snapshot restores cleanly");
    }

    // The pause never dropped or duplicated work: final counts are exact.
    pool.barrier(|_| {});
    let dets: Vec<Detection> = pool.detections().try_iter().collect();
    for &ctx in &ParamContext::ALL {
        let n = |ev: EventId| dets.iter().filter(|d| d.event == ev && d.context == ctx).count();
        assert_eq!(n(sx), PAIRS, "sx count wrong in {ctx:?} after paused cuts");
        assert_eq!(n(sy), PAIRS, "sy count wrong in {ctx:?} after paused cuts");
    }
}
