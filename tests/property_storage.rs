//! Property-based tests on the storage engine: crash recovery equals
//! committed history, abort equals never-happened, and slotted pages
//! preserve all live records under arbitrary operation sequences.

use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

use sentinel_core::storage::disk::{DiskManager, MemDisk};
use sentinel_core::storage::page::{SlottedPage, MAX_RECORD_SIZE, PAGE_SIZE};
use sentinel_core::storage::wal::{LogStore, MemLogStore};
use sentinel_core::storage::StorageEngine;

/// One operation of a transactional workload over a small key space.
#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>),
    Update(usize, Vec<u8>),
    Delete(usize),
    Commit,
    Abort,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 1..64).prop_map(Op::Insert),
        (any::<prop::sample::Index>(), prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(i, d)| Op::Update(i.index(1000), d)),
        any::<prop::sample::Index>().prop_map(|i| Op::Delete(i.index(1000))),
        Just(Op::Commit),
        Just(Op::Abort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// After a crash (drop without shutdown) the recovered state equals the
    /// model built from committed transactions only.
    #[test]
    fn recovery_equals_committed_model(ops in prop::collection::vec(op_strategy(), 1..60)) {
        let disk = Arc::new(MemDisk::new());
        let log = Arc::new(MemLogStore::new());
        // model: rid -> value for *committed* state
        let mut committed: HashMap<u64, Vec<u8>> = HashMap::new();
        let mut rids = Vec::new();
        {
            let engine = StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap();
            let mut txn = engine.begin().unwrap();
            let mut pending: HashMap<u64, Option<Vec<u8>>> = HashMap::new();
            for op in ops {
                match op {
                    Op::Insert(data) => {
                        if let Ok(rid) = engine.insert(txn, &data) {
                            rids.push(rid);
                            pending.insert(rid.as_u64(), Some(data));
                        }
                    }
                    Op::Update(i, data) => {
                        if !rids.is_empty() {
                            let rid = rids[i % rids.len()];
                            if engine.update(txn, rid, &data).is_ok() {
                                pending.insert(rid.as_u64(), Some(data));
                            }
                        }
                    }
                    Op::Delete(i) => {
                        if !rids.is_empty() {
                            let rid = rids[i % rids.len()];
                            if engine.delete(txn, rid).is_ok() {
                                pending.insert(rid.as_u64(), None);
                            }
                        }
                    }
                    Op::Commit => {
                        engine.commit(txn).unwrap();
                        for (k, v) in pending.drain() {
                            match v {
                                Some(data) => {
                                    committed.insert(k, data);
                                }
                                None => {
                                    committed.remove(&k);
                                }
                            }
                        }
                        txn = engine.begin().unwrap();
                    }
                    Op::Abort => {
                        engine.abort(txn).unwrap();
                        pending.clear();
                        txn = engine.begin().unwrap();
                    }
                }
            }
            // Crash: drop the engine with `txn` still open.
        }
        let engine = StorageEngine::open(
            disk as Arc<dyn DiskManager>,
            log as Arc<dyn LogStore>,
        )
        .unwrap();
        let survivors: HashMap<u64, Vec<u8>> = engine
            .scan()
            .unwrap()
            .into_iter()
            .map(|(rid, data)| (rid.as_u64(), data))
            .collect();
        prop_assert_eq!(survivors, committed);
    }

    /// Slotted page: arbitrary insert/delete/update sequences never lose or
    /// corrupt live records (model-checked against a HashMap).
    #[test]
    fn slotted_page_model(ops in prop::collection::vec(op_strategy(), 1..80)) {
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        let mut page = SlottedPage::new(&mut buf);
        page.init();
        let mut model: HashMap<u16, Vec<u8>> = HashMap::new();
        let mut slots: Vec<u16> = Vec::new();
        for op in ops {
            match op {
                Op::Insert(data) if data.len() <= MAX_RECORD_SIZE => {
                    if let Ok(slot) = page.insert(&data) {
                        model.insert(slot, data);
                        if !slots.contains(&slot) {
                            slots.push(slot);
                        }
                    }
                }
                Op::Update(i, data) if !slots.is_empty() => {
                    let slot = slots[i % slots.len()];
                    if model.contains_key(&slot) && page.update(slot, &data).is_ok() {
                        model.insert(slot, data);
                    }
                }
                Op::Delete(i) if !slots.is_empty() => {
                    let slot = slots[i % slots.len()];
                    if model.remove(&slot).is_some() {
                        page.delete(slot).unwrap();
                    }
                }
                _ => {}
            }
            // Invariant: every model record is readable and equal.
            for (slot, data) in &model {
                prop_assert_eq!(page.get(*slot), Some(data.as_slice()));
            }
            prop_assert_eq!(page.live_count(), model.len());
        }
    }

    /// WAL scan returns exactly what was appended, in order, for arbitrary
    /// payloads.
    #[test]
    fn wal_roundtrip(payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..200), 1..30)) {
        use sentinel_core::storage::wal::{LogRecord, Wal};
        use sentinel_core::storage::{Rid, PageId, TxnId};

        let wal = Wal::new(Arc::new(MemLogStore::new()));
        let mut expected = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            let rec = LogRecord::Insert {
                txn: TxnId(i as u64),
                rid: Rid::new(PageId(i as u32), (i % 7) as u16),
                data: bytes::Bytes::from(p.clone()),
            };
            wal.append(&rec).unwrap();
            expected.push(rec);
        }
        let scanned: Vec<LogRecord> = wal.scan().unwrap().into_iter().map(|(_, r)| r).collect();
        prop_assert_eq!(scanned, expected);
    }
}
