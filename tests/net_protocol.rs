//! Property-based tests on the sentinel-net wire protocol: encode∘decode
//! is the identity for every frame, decoding is total (arbitrary bytes
//! yield `Ok`/`Err`, never a panic), truncated frames ask for more input,
//! and event-parameter serialization round-trips through JSON text.

use proptest::prelude::*;
use std::sync::Arc;

use sentinel_detector::Value as EventValue;
use sentinel_net::protocol::{self, DecodeError, Frame, Opcode, HEADER_LEN, MAGIC, MAX_PAYLOAD};
use sentinel_obs::json;

// Scalars in the parser's canonical form (what a text round-trip yields):
// negatives are `Int`, non-negatives `UInt`, and only non-integral
// numbers stay `Float`.
fn scalar_strategy() -> impl Strategy<Value = json::Value> {
    prop_oneof![
        Just(json::Value::Null),
        (1i64..i64::MAX).prop_map(|n| json::Value::Int(-n)),
        any::<u64>().prop_map(json::Value::UInt),
        any::<bool>().prop_map(json::Value::Bool),
        any::<i32>().prop_map(|n| json::Value::Float(f64::from(n) + 0.5)),
        any::<u64>().prop_map(|n| json::Value::str(format!("s{n}"))),
    ]
}

/// A JSON object payload with distinct keys (the parser preserves order,
/// so distinct keys make equality meaningful).
fn payload_strategy() -> impl Strategy<Value = json::Value> {
    prop_oneof![
        Just(json::Value::Null),
        prop::collection::vec(scalar_strategy(), 1..6).prop_map(|vals| {
            json::Value::Obj(
                vals.into_iter().enumerate().map(|(i, v)| (format!("k{i}"), v)).collect(),
            )
        }),
    ]
}

fn frame_strategy() -> impl Strategy<Value = Frame> {
    (prop::sample::select(&Opcode::ALL[..]), any::<u64>(), payload_strategy())
        .prop_map(|(opcode, request_id, payload)| Frame { opcode, request_id, payload })
}

fn event_value_strategy() -> impl Strategy<Value = EventValue> {
    prop_oneof![
        Just(EventValue::Null),
        any::<i64>().prop_map(EventValue::Int),
        any::<i32>().prop_map(|n| EventValue::Float(f64::from(n) / 8.0)),
        any::<bool>().prop_map(EventValue::Bool),
        any::<u64>().prop_map(|n| EventValue::Str(Arc::from(format!("v{n}").as_str()))),
        any::<u64>().prop_map(EventValue::Oid),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// encode∘decode is the identity, consumes exactly the encoded bytes,
    /// and re-encoding is canonical (byte-identical).
    #[test]
    fn encode_decode_identity(frame in frame_strategy()) {
        let bytes = protocol::encode(&frame).unwrap();
        let (back, used) = protocol::decode(&bytes).unwrap().expect("complete frame");
        prop_assert_eq!(&back, &frame);
        prop_assert_eq!(used, bytes.len());
        prop_assert_eq!(protocol::encode(&back).unwrap(), bytes);
    }

    /// Frames decode one after another from a concatenated stream buffer,
    /// in order, leaving nothing behind.
    #[test]
    fn concatenated_frames_stream_decode(frames in prop::collection::vec(frame_strategy(), 1..8)) {
        let mut buf = Vec::new();
        for f in &frames {
            buf.extend_from_slice(&protocol::encode(f).unwrap());
        }
        let mut decoded = Vec::new();
        let mut off = 0;
        while let Some((f, used)) = protocol::decode(&buf[off..]).unwrap() {
            decoded.push(f);
            off += used;
        }
        prop_assert_eq!(off, buf.len());
        prop_assert_eq!(decoded, frames);
    }

    /// Any strict prefix of a valid frame is "incomplete", never an error
    /// — the frame survives arriving byte by byte.
    #[test]
    fn truncated_frames_ask_for_more(frame in frame_strategy(), cut in any::<prop::sample::Index>()) {
        let bytes = protocol::encode(&frame).unwrap();
        let cut = cut.index(bytes.len());
        prop_assert_eq!(protocol::decode(&bytes[..cut]).unwrap(), None);
    }

    /// Decoding is total: arbitrary bytes produce `Ok` or a typed
    /// `DecodeError`, never a panic, and never claim to consume more
    /// bytes than were given.
    #[test]
    fn garbage_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..96)) {
        if let Ok(Some((_, used))) = protocol::decode(&bytes) {
            prop_assert!(used <= bytes.len());
        }
    }

    /// Flipping any single byte of a valid frame still decodes totally
    /// (no panic), and corruption in the first two bytes is always caught
    /// as `BadMagic`.
    #[test]
    fn single_byte_corruption_is_total(
        frame in frame_strategy(),
        pos in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut bytes = protocol::encode(&frame).unwrap();
        let pos = pos.index(bytes.len());
        bytes[pos] ^= xor;
        let res = protocol::decode(&bytes);
        if pos < 2 && bytes[..2] != MAGIC {
            prop_assert!(matches!(res, Err(DecodeError::BadMagic(_))));
        }
        if let Ok(Some((_, used))) = res {
            prop_assert!(used <= bytes.len());
        }
    }

    /// A header advertising a payload beyond `MAX_PAYLOAD` is rejected
    /// before any allocation of the stated size.
    #[test]
    fn oversized_length_is_rejected(len in (MAX_PAYLOAD as u32 + 1)..u32::MAX, id in any::<u64>()) {
        let mut bytes = Vec::with_capacity(HEADER_LEN);
        bytes.extend_from_slice(&MAGIC);
        bytes.push(protocol::VERSION);
        bytes.push(Opcode::Ping as u8);
        bytes.extend_from_slice(&id.to_le_bytes());
        bytes.extend_from_slice(&len.to_le_bytes());
        prop_assert_eq!(protocol::decode(&bytes), Err(DecodeError::Oversized(len)));
    }

    /// Event parameters survive the full trip: typed values → tagged JSON
    /// → rendered text → re-parsed JSON → typed values.
    #[test]
    fn params_round_trip_through_text(
        values in prop::collection::vec(event_value_strategy(), 0..8),
    ) {
        let params: Vec<(Arc<str>, EventValue)> = values
            .into_iter()
            .enumerate()
            .map(|(i, v)| (Arc::from(format!("p{i}").as_str()), v))
            .collect();
        let text = protocol::params_to_json(&params).to_string();
        let parsed = json::Value::parse(&text).unwrap();
        prop_assert_eq!(protocol::params_from_json(&parsed).unwrap(), params);
    }

    /// `value_from_json` is total over arbitrary JSON shapes — unknown
    /// shapes are `None`, not panics — and faithful on shapes
    /// `value_to_json` actually produces.
    #[test]
    fn value_from_json_is_total(v in payload_strategy()) {
        let _ = protocol::value_from_json(&v);
        let _ = protocol::params_from_json(&v);
    }
}
