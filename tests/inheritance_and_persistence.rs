//! Class-level rule inheritance ("a class level rule satisfies the
//! inheritance property", §3.1) and full-stack persistence over real files
//! (the FileDisk/FileLogStore path a deployment would use).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::storage::disk::FileDisk;
use sentinel_core::storage::wal::FileLogStore;
use sentinel_core::storage::StorageEngine;
use sentinel_core::Sentinel;

const SET_PRICE: &str = "void set_price(float price)";

fn stock_classes(s: &Sentinel) {
    s.db()
        .register_class(
            ClassDef::new("STOCK")
                .extends("REACTIVE")
                .attr("price", AttrType::Float)
                .method(SET_PRICE),
        )
        .unwrap();
    s.db()
        .register_class(ClassDef::new("TECH_STOCK").extends("STOCK").attr("sector", AttrType::Str))
        .unwrap();
    s.db().register_method(
        "STOCK",
        SET_PRICE,
        Arc::new(|ctx| {
            let p = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
            ctx.set_attr("price", p)?;
            Ok(AttrValue::Null)
        }),
    );
    s.declare_event("any_set", "STOCK", EventModifier::End, SET_PRICE, PrimTarget::AnyInstance)
        .unwrap();
}

/// A class-level rule on STOCK's event fires when the method is invoked on
/// a TECH_STOCK instance (declared classes up the chain are notified).
#[test]
fn class_level_rule_inherits_to_subclasses() {
    let s = Sentinel::in_memory();
    stock_classes(&s);
    let fired = Arc::new(AtomicUsize::new(0));
    let classes_seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let (f, cs) = (fired.clone(), classes_seen.clone());
    s.define_rule(
        "on_any_set",
        "any_set",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            f.fetch_add(1, Ordering::SeqCst);
            if let Some(oid) = inv.occurrence.param_list()[0].source {
                cs.lock().push(oid);
            }
        }),
        RuleOptions::default(),
    )
    .unwrap();

    let t = s.begin().unwrap();
    let plain = s.create_object(t, &ObjectState::new("STOCK").with("price", 1.0)).unwrap();
    let tech = s
        .create_object(
            t,
            &ObjectState::new("TECH_STOCK").with("price", 1.0).with("sector", "chips"),
        )
        .unwrap();
    s.invoke(t, plain, SET_PRICE, vec![("price".into(), 2.0.into())]).unwrap();
    s.invoke(t, tech, SET_PRICE, vec![("price".into(), 3.0.into())]).unwrap();
    s.commit(t).unwrap();

    assert_eq!(fired.load(Ordering::SeqCst), 2, "subclass instance fires the class rule");
    assert_eq!(*classes_seen.lock(), vec![plain.0, tech.0]);
}

/// An instance-level event on a subclass object still filters correctly.
#[test]
fn instance_level_event_on_subclass_instance() {
    let s = Sentinel::in_memory();
    stock_classes(&s);
    let t = s.begin().unwrap();
    let tech = s
        .create_object(t, &ObjectState::new("TECH_STOCK").with("price", 1.0).with("sector", "ai"))
        .unwrap();
    let other = s
        .create_object(t, &ObjectState::new("TECH_STOCK").with("price", 1.0).with("sector", "web"))
        .unwrap();
    s.declare_event(
        "tech_only",
        "STOCK",
        EventModifier::End,
        SET_PRICE,
        PrimTarget::Instance(tech.0),
    )
    .unwrap();
    let fired = Arc::new(AtomicUsize::new(0));
    let f = fired.clone();
    s.define_rule(
        "tech_rule",
        "tech_only",
        Arc::new(|_| true),
        Arc::new(move |_| {
            f.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default(),
    )
    .unwrap();
    s.invoke(t, other, SET_PRICE, vec![("price".into(), 2.0.into())]).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 0);
    s.invoke(t, tech, SET_PRICE, vec![("price".into(), 2.0.into())]).unwrap();
    assert_eq!(fired.load(Ordering::SeqCst), 1);
    s.commit(t).unwrap();
}

/// Full stack over real files: write through Sentinel, crash (drop without
/// shutdown), reopen from the same files, state recovered; then run rules
/// against the recovered database.
#[test]
fn file_backed_persistence_and_recovery() {
    let dir = std::env::temp_dir().join(format!("sentinel-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db_path = dir.join("data.db");
    let log_path = dir.join("wal.log");
    let _ = std::fs::remove_file(&db_path);
    let _ = std::fs::remove_file(&log_path);

    let oid;
    {
        let engine = Arc::new(
            StorageEngine::open(
                Arc::new(FileDisk::open(&db_path).unwrap()),
                Arc::new(FileLogStore::open(&log_path).unwrap()),
            )
            .unwrap(),
        );
        let s = Sentinel::open(engine, SentinelConfig::default()).unwrap();
        stock_classes(&s);
        let t = s.begin().unwrap();
        oid = s.create_object(t, &ObjectState::new("STOCK").with("price", 10.0)).unwrap();
        s.db().names().bind(t, "ACME", oid).unwrap();
        s.invoke(t, oid, SET_PRICE, vec![("price".into(), 99.5.into())]).unwrap();
        s.commit(t).unwrap();
        // Uncommitted garbage that must roll back on recovery.
        let t2 = s.begin().unwrap();
        s.invoke(t2, oid, SET_PRICE, vec![("price".into(), 0.0.into())]).unwrap();
        // crash: no commit, no shutdown
    }
    {
        let engine = Arc::new(
            StorageEngine::open(
                Arc::new(FileDisk::open(&db_path).unwrap()),
                Arc::new(FileLogStore::open(&log_path).unwrap()),
            )
            .unwrap(),
        );
        let s = Sentinel::open(engine, SentinelConfig::default()).unwrap();
        stock_classes(&s);
        assert_eq!(s.db().names().resolve("ACME"), Some(oid));
        let fired = Arc::new(AtomicUsize::new(0));
        let f = fired.clone();
        s.define_rule(
            "post_recovery",
            "any_set",
            Arc::new(|_| true),
            Arc::new(move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            }),
            RuleOptions::default(),
        )
        .unwrap();
        let t = s.begin().unwrap();
        let state = s.get_object(t, oid).unwrap();
        assert_eq!(
            state.get("price").unwrap().as_float(),
            Some(99.5),
            "uncommitted write rolled back"
        );
        s.invoke(t, oid, SET_PRICE, vec![("price".into(), 100.0.into())]).unwrap();
        s.commit(t).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "rules work on the recovered database");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
