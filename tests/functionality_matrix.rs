//! SEC-2.3: the paper's functionality matrix.
//!
//! "The architecture shown in Figure 1 supports the following features:
//!   i)   detection of primitive events,
//!   ii)  detection of local composite events,
//!   iii) parameter computation of composite events,
//!   iv)  separation of composite event detection from application execution,
//!   v)   execution of rules in immediate and deferred coupling modes,
//!   vi)  prioritized and concurrent rule execution."
//!
//! One test per feature, each driving the full integrated stack.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::service::{DetectorService, Signal};
use sentinel_core::detector::LocalEventDetector;
use sentinel_core::oodb::schema::{AttrType, ClassDef};
use sentinel_core::oodb::{AttrValue, ObjectState, Oid};
use sentinel_core::rules::manager::RuleOptions;
use sentinel_core::rules::ExecutionMode;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::{CouplingMode, ParamContext};
use sentinel_core::storage::TxnId;
use sentinel_core::Sentinel;

const SET_PRICE: &str = "void set_price(float price)";
const SELL: &str = "int sell_stock(int qty)";

fn stock_system(mode: ExecutionMode) -> Arc<Sentinel> {
    let s = Sentinel::in_memory_with(SentinelConfig { mode, ..SentinelConfig::default() });
    s.db()
        .register_class(
            ClassDef::new("STOCK")
                .extends("REACTIVE")
                .attr("symbol", AttrType::Str)
                .attr("price", AttrType::Float)
                .attr("holdings", AttrType::Int)
                .method(SET_PRICE)
                .method(SELL),
        )
        .unwrap();
    s.db().register_method(
        "STOCK",
        SET_PRICE,
        Arc::new(|ctx| {
            let p = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
            ctx.set_attr("price", p)?;
            Ok(AttrValue::Null)
        }),
    );
    s.db().register_method(
        "STOCK",
        SELL,
        Arc::new(|ctx| {
            let q = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
            let h = ctx.get_attr("holdings")?.as_int().unwrap_or(0);
            ctx.set_attr("holdings", h - q)?;
            Ok(AttrValue::Int(h - q))
        }),
    );
    s.declare_event("e1", "STOCK", EventModifier::End, SELL, PrimTarget::AnyInstance).unwrap();
    s.declare_event("e2", "STOCK", EventModifier::Begin, SET_PRICE, PrimTarget::AnyInstance)
        .unwrap();
    s.declare_event("e3", "STOCK", EventModifier::End, SET_PRICE, PrimTarget::AnyInstance).unwrap();
    s
}

fn new_stock(s: &Sentinel, txn: TxnId, symbol: &str) -> Oid {
    s.create_object(
        txn,
        &ObjectState::new("STOCK")
            .with("symbol", symbol)
            .with("price", 100.0)
            .with("holdings", 100),
    )
    .unwrap()
}

/// (i) Detection of primitive events: begin- and end-variants, class- and
/// instance-level.
#[test]
fn i_primitive_event_detection() {
    let s = stock_system(ExecutionMode::Inline);
    let begin_count = Arc::new(AtomicUsize::new(0));
    let end_count = Arc::new(AtomicUsize::new(0));
    let (b, e) = (begin_count.clone(), end_count.clone());
    s.define_rule(
        "on_begin",
        "e2",
        Arc::new(|_| true),
        Arc::new(move |_| {
            b.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default(),
    )
    .unwrap();
    s.define_rule(
        "on_end",
        "e3",
        Arc::new(|_| true),
        Arc::new(move |_| {
            e.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default(),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let ibm = new_stock(&s, t, "IBM");
    s.invoke(t, ibm, SET_PRICE, vec![("price".into(), 1.0.into())]).unwrap();
    s.commit(t).unwrap();
    assert_eq!(begin_count.load(Ordering::SeqCst), 1);
    assert_eq!(end_count.load(Ordering::SeqCst), 1);

    // Instance-level.
    let t = s.begin().unwrap();
    let dec = new_stock(&s, t, "DEC");
    let inst = Arc::new(AtomicUsize::new(0));
    let i2 = inst.clone();
    s.declare_event(
        "dec_only",
        "STOCK",
        EventModifier::End,
        SET_PRICE,
        PrimTarget::Instance(dec.0),
    )
    .unwrap();
    s.define_rule(
        "dec_rule",
        "dec_only",
        Arc::new(|_| true),
        Arc::new(move |_| {
            i2.fetch_add(1, Ordering::SeqCst);
        }),
        RuleOptions::default(),
    )
    .unwrap();
    s.invoke(t, ibm, SET_PRICE, vec![("price".into(), 2.0.into())]).unwrap();
    assert_eq!(inst.load(Ordering::SeqCst), 0, "IBM must not fire DEC's instance event");
    s.invoke(t, dec, SET_PRICE, vec![("price".into(), 2.0.into())]).unwrap();
    assert_eq!(inst.load(Ordering::SeqCst), 1);
    s.commit(t).unwrap();
}

/// (ii) Detection of local composite events: every Snoop operator detects
/// through the integrated stack.
#[test]
fn ii_composite_event_detection() {
    let s = stock_system(ExecutionMode::Inline);
    let fired = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    for (rule, event_name, expr) in [
        ("r_and", "x_and", "e1 ^ e3"),
        ("r_or", "x_or", "e1 | e3"),
        ("r_seq", "x_seq", "(e1 ; e3)"),
        ("r_any", "x_any", "ANY(2, e1, e2, e3)"),
        ("r_astar", "x_astar", "A*(e2, e1, e3)"),
    ] {
        s.define_event(event_name, expr).unwrap();
        let f = fired.clone();
        s.define_rule(
            rule,
            event_name,
            Arc::new(|_| true),
            Arc::new(move |_| f.lock().push(rule)),
            RuleOptions::default(),
        )
        .unwrap();
    }
    let t = s.begin().unwrap();
    let ibm = new_stock(&s, t, "IBM");
    s.invoke(t, ibm, SELL, vec![("qty".into(), 1.into())]).unwrap(); // e1
    s.invoke(t, ibm, SET_PRICE, vec![("price".into(), 1.0.into())]).unwrap(); // e2, e3
    s.commit(t).unwrap();
    let fired = fired.lock().clone();
    for expected in ["r_and", "r_or", "r_seq", "r_any"] {
        assert!(fired.contains(&expected), "{expected} missing from {fired:?}");
    }
    // A*(e2, e1, e3): e2 opens the window but no e1 occurs inside it
    // (the e1 happened before e2), so it must NOT fire.
    assert!(!fired.contains(&"r_astar"));
}

/// (iii) Parameter computation: the rule receives the linked parameter
/// list of constituent primitive events with oid + atomic values.
#[test]
fn iii_parameter_computation() {
    let s = stock_system(ExecutionMode::Inline);
    s.define_event("pair", "(e1 ; e3)").unwrap();
    let captured = Arc::new(Mutex::new(Vec::new()));
    let c = captured.clone();
    s.define_rule(
        "capture",
        "pair",
        Arc::new(|_| true),
        Arc::new(move |inv| {
            for prim in inv.occurrence.param_list() {
                c.lock().push((prim.event_name.to_string(), prim.source, prim.params.clone()));
            }
        }),
        RuleOptions::default().context(ParamContext::Chronicle),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let ibm = new_stock(&s, t, "IBM");
    s.invoke(t, ibm, SELL, vec![("qty".into(), 42.into())]).unwrap();
    s.invoke(t, ibm, SET_PRICE, vec![("price".into(), 77.5.into())]).unwrap();
    s.commit(t).unwrap();

    let captured = captured.lock();
    assert_eq!(captured.len(), 2, "both constituents in chronological order");
    assert_eq!(captured[0].0, "e1");
    assert_eq!(captured[0].1, Some(ibm.0), "oid is part of the parameters");
    assert_eq!(captured[0].2[0].1.as_i64(), Some(42));
    assert_eq!(captured[1].0, "e3");
    assert_eq!(captured[1].2[0].1.as_f64(), Some(77.5));
}

/// (iv) Separation of composite event detection from application
/// execution: the detector runs on its own thread behind a channel and
/// produces identical detections.
#[test]
fn iv_detector_separated_from_application() {
    let det = Arc::new(LocalEventDetector::new(7));
    det.declare_primitive("ev", "C", EventModifier::End, "void f()", PrimTarget::AnyInstance)
        .unwrap();
    let seq = det
        .define_named("evseq", &sentinel_core::snoop::parse_event_expr("(ev ; ev)").unwrap())
        .unwrap();
    det.subscribe(seq, ParamContext::Chronicle, 1).unwrap();
    let svc = DetectorService::spawn(det);
    let sig = || Signal::Method {
        class: "C".into(),
        sig: "void f()".into(),
        edge: EventModifier::End,
        oid: 1,
        params: Vec::new(),
        txn: Some(1),
    };
    // Immediate-mode protocol: the application blocks on the reply.
    assert!(svc.signal_sync(sig()).is_empty());
    let dets = svc.signal_sync(sig());
    assert_eq!(dets.len(), 1);
    assert_eq!(dets[0].occurrence.param_list().len(), 2);
}

/// (v) Immediate and deferred coupling modes.
#[test]
fn v_immediate_and_deferred_coupling() {
    let s = stock_system(ExecutionMode::Inline);
    let log = Arc::new(Mutex::new(Vec::<&'static str>::new()));
    let (l1, l2) = (log.clone(), log.clone());
    s.define_rule(
        "imm",
        "e3",
        Arc::new(|_| true),
        Arc::new(move |_| l1.lock().push("immediate")),
        RuleOptions::default(),
    )
    .unwrap();
    s.define_rule(
        "def",
        "e3",
        Arc::new(|_| true),
        Arc::new(move |_| l2.lock().push("deferred")),
        RuleOptions::default().coupling(CouplingMode::Deferred),
    )
    .unwrap();
    let t = s.begin().unwrap();
    let ibm = new_stock(&s, t, "IBM");
    s.invoke(t, ibm, SET_PRICE, vec![("price".into(), 1.0.into())]).unwrap();
    s.invoke(t, ibm, SET_PRICE, vec![("price".into(), 2.0.into())]).unwrap();
    assert_eq!(*log.lock(), vec!["immediate", "immediate"], "deferred not yet");
    s.commit(t).unwrap();
    assert_eq!(
        *log.lock(),
        vec!["immediate", "immediate", "deferred"],
        "deferred exactly once at commit"
    );
}

/// (vi) Prioritized serial + concurrent rule execution.
#[test]
fn vi_prioritized_and_concurrent_execution() {
    let s = stock_system(ExecutionMode::Threaded { workers: 4 });
    let order = Arc::new(Mutex::new(Vec::<u32>::new()));
    let live = Arc::new(AtomicUsize::new(0));
    let peak = Arc::new(AtomicUsize::new(0));
    for (name, prio) in [("p30a", 30u32), ("p30b", 30), ("p20", 20), ("p10", 10)] {
        let o = order.clone();
        let (lv, pk) = (live.clone(), peak.clone());
        let prio_copy = prio;
        s.define_rule(
            name,
            "e3",
            Arc::new(|_| true),
            Arc::new(move |_| {
                let now = lv.fetch_add(1, Ordering::SeqCst) + 1;
                pk.fetch_max(now, Ordering::SeqCst);
                std::thread::sleep(std::time::Duration::from_millis(25));
                o.lock().push(prio_copy);
                lv.fetch_sub(1, Ordering::SeqCst);
            }),
            RuleOptions::default().priority(prio),
        )
        .unwrap();
    }
    let t = s.begin().unwrap();
    let ibm = new_stock(&s, t, "IBM");
    s.invoke(t, ibm, SET_PRICE, vec![("price".into(), 1.0.into())]).unwrap();
    s.commit(t).unwrap();
    let order = order.lock().clone();
    assert_eq!(order.len(), 4);
    let mut sorted = order.clone();
    sorted.sort_by(|a, b| b.cmp(a));
    assert_eq!(order, sorted, "classes executed high→low: {order:?}");
    assert!(peak.load(Ordering::SeqCst) >= 2, "the two class-30 rules should have overlapped");
}
