//! FIG-1: the Sentinel architecture of Figure 1, exercised end to end.
//!
//! The figure's boxes: Sentinel pre-processor → (Open OODB pre-processor)
//! → Sentinel post-processor → object translation / name manager / address
//! space & persistence managers / primitive event detection / transaction
//! manager → local composite event detector → rule scheduler → rule
//! debugger. This test pushes the paper's §3.1 STOCK specification through
//! every box and checks each module's observable contribution, including
//! durability through the storage (Exodus-analogue) layer.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sentinel_core::oodb::AttrValue;
use sentinel_core::oodb::ObjectState;
use sentinel_core::sentinel::SentinelConfig;
use sentinel_core::storage::disk::{DiskManager, MemDisk};
use sentinel_core::storage::wal::{LogStore, MemLogStore};
use sentinel_core::storage::StorageEngine;
use sentinel_core::{FunctionTable, Preprocessor, Sentinel};

const STOCK_SPEC: &str = r#"
class STOCK : public REACTIVE {
public:
    float price;
    int holdings;
    event end(e1) int sell_stock(int qty);
    event begin(e2) && end(e3) void set_price(float price);
    event e4 = e1 ^ e2;
    rule R1(e4, cond1, action1, CUMULATIVE, DEFERRED, 10, NOW);
};
Stock_unused_placeholder_ignored ignored_instance;
"#;

fn register_bodies(s: &Sentinel) {
    s.db().register_method(
        "STOCK",
        "void set_price(float price)",
        Arc::new(|ctx| {
            let p = ctx.arg("price").and_then(AttrValue::as_float).unwrap_or(0.0);
            ctx.set_attr("price", p)?;
            Ok(AttrValue::Null)
        }),
    );
    s.db().register_method(
        "STOCK",
        "int sell_stock(int qty)",
        Arc::new(|ctx| {
            let q = ctx.arg("qty").and_then(|v| v.as_int()).unwrap_or(0);
            let h = ctx.get_attr("holdings")?.as_int().unwrap_or(0);
            ctx.set_attr("holdings", h - q)?;
            Ok(AttrValue::Int(h - q))
        }),
    );
}

#[test]
fn full_stack_with_durability() {
    let disk = Arc::new(MemDisk::new());
    let log = Arc::new(MemLogStore::new());
    let fired = Arc::new(AtomicUsize::new(0));

    let ibm_oid;
    {
        let engine = Arc::new(
            StorageEngine::open(
                disk.clone() as Arc<dyn DiskManager>,
                log.clone() as Arc<dyn LogStore>,
            )
            .unwrap(),
        );
        let s = Sentinel::open(engine, SentinelConfig::default()).unwrap();
        s.debugger().set_enabled(true);

        // Pre-processor (minus the bogus instance line).
        let spec =
            STOCK_SPEC.lines().filter(|l| !l.contains("ignored")).collect::<Vec<_>>().join("\n");
        let f = fired.clone();
        let table =
            FunctionTable::new().condition("cond1", |_| true).action("action1", move |_| {
                f.fetch_add(1, Ordering::SeqCst);
            });
        let t = s.begin().unwrap();
        Preprocessor::new(&s).apply(t, &spec, &table).unwrap();
        s.commit(t).unwrap();
        register_bodies(&s);

        // Name manager: bind IBM.
        let t = s.begin().unwrap();
        ibm_oid = s
            .create_object(t, &ObjectState::new("STOCK").with("price", 150.0).with("holdings", 10))
            .unwrap();
        s.db().names().bind(t, "IBM", ibm_oid).unwrap();

        // Primitive event detection via wrapper methods.
        s.invoke(t, ibm_oid, "int sell_stock(int qty)", vec![("qty".into(), 4.into())]).unwrap();
        s.invoke(t, ibm_oid, "void set_price(float price)", vec![("price".into(), 149.0.into())])
            .unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 0, "deferred rule waits for pre-commit");
        s.commit(t).unwrap();
        assert_eq!(fired.load(Ordering::SeqCst), 1, "rule scheduler ran R1 once");

        // Rule debugger saw the interaction.
        let render = s.debugger().render();
        assert!(render.contains("R1"), "debugger trace must mention R1:\n{render}");

        s.db().engine().shutdown().unwrap();
    }

    // Persistence manager + Exodus recovery: reopen from the same disk/log.
    {
        let engine = Arc::new(
            StorageEngine::open(disk as Arc<dyn DiskManager>, log as Arc<dyn LogStore>).unwrap(),
        );
        let s = Sentinel::open(engine, SentinelConfig::default()).unwrap();
        // Name manager rebuilt from storage.
        assert_eq!(s.db().names().resolve("IBM"), Some(ibm_oid));
        let t = s.begin().unwrap();
        let ibm = s.get_object(t, ibm_oid).unwrap();
        assert_eq!(ibm.get("price").unwrap().as_float(), Some(149.0));
        assert_eq!(ibm.get("holdings").unwrap().as_int(), Some(6));
        s.commit(t).unwrap();
    }
}

#[test]
fn preprocessor_rejects_what_the_architecture_cannot_support() {
    let s = Sentinel::in_memory();
    let t = s.begin().unwrap();
    // Rule on an unknown event.
    let err = Preprocessor::new(&s).apply(
        t,
        "rule R(ghost_event, c, a);",
        &FunctionTable::new().condition("c", |_| true).action("a", |_| {}),
    );
    assert!(err.is_err());
    s.abort(t).unwrap();
}
