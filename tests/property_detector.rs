//! Property-based tests on the composite event detector: context
//! consumption invariants, online/batch equivalence, and flush soundness,
//! under arbitrary interleavings of primitive events.

use proptest::prelude::*;
use sentinel_core::detector::graph::PrimTarget;
use sentinel_core::detector::snapshot::{GraphSnapshot, VERSION_PRE_SHARD};
use sentinel_core::detector::{Detection, LocalEventDetector};
use sentinel_core::snoop::ast::EventModifier;
use sentinel_core::snoop::{parse_event_expr, ParamContext};

const SIG_A: &str = "void a()";
const SIG_B: &str = "void b()";

/// A detector with independent leaves `a` (class CA) and `b` (class CB).
fn detector(expr: &str, ctx: ParamContext) -> LocalEventDetector {
    let d = LocalEventDetector::new(0);
    d.declare_primitive("a", "CA", EventModifier::End, SIG_A, PrimTarget::AnyInstance).unwrap();
    d.declare_primitive("b", "CB", EventModifier::End, SIG_B, PrimTarget::AnyInstance).unwrap();
    let id = d.define_named("x", &parse_event_expr(expr).unwrap()).unwrap();
    d.subscribe(id, ctx, 1).unwrap();
    d
}

/// One step of a workload: which leaf fires, in which transaction.
#[derive(Debug, Clone, Copy)]
enum Step {
    A(u8),
    B(u8),
    FlushTxn(u8),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0u8..3).prop_map(Step::A),
        (0u8..3).prop_map(Step::B),
        (0u8..3).prop_map(Step::FlushTxn),
    ]
}

fn run(d: &LocalEventDetector, steps: &[Step], record: bool) -> Vec<Detection> {
    if record {
        d.start_recording();
    }
    let mut out = Vec::new();
    for s in steps {
        match s {
            Step::A(t) => out.extend(d.notify_method(
                "CA",
                SIG_A,
                EventModifier::End,
                1,
                Vec::new(),
                Some(u64::from(*t)),
            )),
            Step::B(t) => out.extend(d.notify_method(
                "CB",
                SIG_B,
                EventModifier::End,
                1,
                Vec::new(),
                Some(u64::from(*t)),
            )),
            Step::FlushTxn(t) => d.flush_txn(u64::from(*t)),
        }
    }
    out
}

fn count(steps: &[Step], f: impl Fn(&Step) -> bool) -> usize {
    steps.iter().filter(|s| f(s)).count()
}

proptest! {
    /// Chronicle AND pairs a's and b's 1:1 (without flushes the number of
    /// detections is exactly min(#a, #b)), and every occurrence is consumed
    /// exactly once.
    #[test]
    fn chronicle_and_pairs_min(steps in prop::collection::vec(step_strategy(), 0..40)) {
        let steps: Vec<Step> =
            steps.into_iter().filter(|s| !matches!(s, Step::FlushTxn(_))).collect();
        let d = detector("a ^ b", ParamContext::Chronicle);
        let dets = run(&d, &steps, false);
        let na = count(&steps, |s| matches!(s, Step::A(_)));
        let nb = count(&steps, |s| matches!(s, Step::B(_)));
        prop_assert_eq!(dets.len(), na.min(nb));
        // Consumption: all constituent timestamps distinct across detections.
        let mut seen = std::collections::HashSet::new();
        for det in &dets {
            for c in det.occurrence.param_list() {
                prop_assert!(seen.insert(c.at), "occurrence reused in chronicle context");
            }
        }
    }

    /// Cumulative AND consumes everything buffered: across all detections
    /// plus the residual buffers, each occurrence appears exactly once, and
    /// each detection contains at least one a and exactly one b... at least
    /// one of each.
    #[test]
    fn cumulative_and_drains(steps in prop::collection::vec(step_strategy(), 0..40)) {
        let steps: Vec<Step> =
            steps.into_iter().filter(|s| !matches!(s, Step::FlushTxn(_))).collect();
        let d = detector("a ^ b", ParamContext::Cumulative);
        let dets = run(&d, &steps, false);
        let mut seen = std::collections::HashSet::new();
        for det in &dets {
            let prims = det.occurrence.param_list();
            let a_count = prims.iter().filter(|p| &*p.event_name == "a").count();
            let b_count = prims.iter().filter(|p| &*p.event_name == "b").count();
            prop_assert!(a_count >= 1 && b_count >= 1);
            for c in prims {
                prop_assert!(seen.insert(c.at), "occurrence reused in cumulative context");
            }
        }
    }

    /// OR fires exactly once per constituent occurrence in every context.
    #[test]
    fn or_counts_every_occurrence(
        steps in prop::collection::vec(step_strategy(), 0..40),
        ctx in prop::sample::select(&ParamContext::ALL[..]),
    ) {
        let steps: Vec<Step> =
            steps.into_iter().filter(|s| !matches!(s, Step::FlushTxn(_))).collect();
        let d = detector("a | b", ctx);
        let dets = run(&d, &steps, false);
        prop_assert_eq!(dets.len(), steps.len());
    }

    /// SEQ never emits an occurrence whose parts are out of order, in any
    /// context, even with transaction flushes interleaved.
    #[test]
    fn seq_is_always_ordered(
        steps in prop::collection::vec(step_strategy(), 0..50),
        ctx in prop::sample::select(&ParamContext::ALL[..]),
    ) {
        let d = detector("(a ; b)", ctx);
        let dets = run(&d, &steps, false);
        for det in dets {
            let prims = det.occurrence.param_list();
            for w in prims.windows(2) {
                prop_assert!(w[0].at <= w[1].at);
            }
            // terminator is a `b`, initiators are `a`s
            prop_assert_eq!(&*prims.last().unwrap().event_name, "b");
            prop_assert!(prims[..prims.len() - 1].iter().all(|p| &*p.event_name == "a"));
        }
    }

    /// Flushing a transaction removes its occurrences: no detection after
    /// the flush may involve that transaction's earlier events.
    #[test]
    fn flush_is_sound(steps in prop::collection::vec(step_strategy(), 0..50)) {
        let d = detector("a ^ b", ParamContext::Chronicle);
        let mut flushed_t: Vec<(u64, u64)> = Vec::new(); // (txn, flush time)
        for s in &steps {
            match s {
                Step::FlushTxn(t) => {
                    d.flush_txn(u64::from(*t));
                    flushed_t.push((u64::from(*t), d.clock().peek()));
                }
                Step::A(t) => {
                    for det in d.notify_method("CA", SIG_A, EventModifier::End, 1, Vec::new(), Some(u64::from(*t))) {
                        check_no_flushed(&det, &flushed_t)?;
                    }
                }
                Step::B(t) => {
                    for det in d.notify_method("CB", SIG_B, EventModifier::End, 1, Vec::new(), Some(u64::from(*t))) {
                        check_no_flushed(&det, &flushed_t)?;
                    }
                }
            }
        }
    }

    /// Online and batch detection agree exactly (same composites, same
    /// occurrence times) for arbitrary workloads and contexts.
    #[test]
    fn online_equals_batch(
        steps in prop::collection::vec(step_strategy(), 0..40),
        ctx in prop::sample::select(&ParamContext::ALL[..]),
    ) {
        let steps: Vec<Step> =
            steps.into_iter().filter(|s| !matches!(s, Step::FlushTxn(_))).collect();
        let online = detector("a ^ b", ctx);
        let online_dets = run(&online, &steps, true);
        let log = online.take_log();

        let batch = detector("a ^ b", ctx);
        let batch_dets = batch.replay(&log);
        prop_assert_eq!(online_dets.len(), batch_dets.len());
        for (o, b) in online_dets.iter().zip(&batch_dets) {
            prop_assert_eq!(o.occurrence.at, b.occurrence.at);
            prop_assert_eq!(o.context, b.context);
            let ots: Vec<_> = o.occurrence.param_list().iter().map(|p| p.at).collect();
            let bts: Vec<_> = b.occurrence.param_list().iter().map(|p| p.at).collect();
            prop_assert_eq!(ots, bts);
        }
    }
}

/// A detector whose graph has (at least) two disjoint shards: the method
/// component `x = a ; b` and the explicit component `y = p ^ q`.
fn sharded_detector(ctx: ParamContext) -> LocalEventDetector {
    let d = LocalEventDetector::new(0);
    d.declare_primitive("a", "CA", EventModifier::End, SIG_A, PrimTarget::AnyInstance).unwrap();
    d.declare_primitive("b", "CB", EventModifier::End, SIG_B, PrimTarget::AnyInstance).unwrap();
    d.declare_explicit("p");
    d.declare_explicit("q");
    let x = d.define_named("x", &parse_event_expr("a ; b").unwrap()).unwrap();
    let y = d.define_named("y", &parse_event_expr("p ^ q").unwrap()).unwrap();
    d.subscribe(x, ctx, 1).unwrap();
    d.subscribe(y, ctx, 2).unwrap();
    d
}

/// One step of a two-shard workload.
#[derive(Debug, Clone, Copy)]
enum SStep {
    A(u8),
    B(u8),
    P,
    Q,
    Flush(u8),
}

fn sstep_strategy() -> impl Strategy<Value = SStep> {
    prop_oneof![
        (0u8..3).prop_map(SStep::A),
        (0u8..3).prop_map(SStep::B),
        Just(SStep::P),
        Just(SStep::Q),
        (0u8..3).prop_map(SStep::Flush),
    ]
}

fn srun(d: &LocalEventDetector, steps: &[SStep]) -> Vec<Detection> {
    let mut out = Vec::new();
    for s in steps {
        match s {
            SStep::A(t) => out.extend(d.notify_method(
                "CA",
                SIG_A,
                EventModifier::End,
                1,
                Vec::new(),
                Some(u64::from(*t)),
            )),
            SStep::B(t) => out.extend(d.notify_method(
                "CB",
                SIG_B,
                EventModifier::End,
                1,
                Vec::new(),
                Some(u64::from(*t)),
            )),
            SStep::P => out.extend(d.signal_explicit("p", Vec::new(), None)),
            SStep::Q => out.extend(d.signal_explicit("q", Vec::new(), None)),
            SStep::Flush(t) => d.flush_txn(u64::from(*t)),
        }
    }
    out
}

proptest! {
    /// A snapshot of a sharded graph survives encode → decode → restore
    /// into a twin detector with identical definitions: the twin's own
    /// snapshot is byte-for-byte the original.
    #[test]
    fn snapshot_roundtrips_on_sharded_graph(
        steps in prop::collection::vec(sstep_strategy(), 0..60),
        ctx in prop::sample::select(&ParamContext::ALL[..]),
    ) {
        let d = sharded_detector(ctx);
        prop_assert!(d.shard_count() >= 2, "workload must span disjoint shards");
        srun(&d, &steps);
        let snap = d.snapshot_state();
        let decoded = GraphSnapshot::decode(snap.encode()).expect("snapshot decodes");
        let twin = sharded_detector(ctx);
        twin.restore_snapshot(&decoded).unwrap();
        prop_assert_eq!(twin.snapshot_state().encode(), d.snapshot_state().encode());
    }

    /// Cross-version compatibility: a snapshot downgraded to the pre-shard
    /// v1 format still restores into a sharded detector (shard labels are
    /// re-derived, the clock is preserved), and detection *continues
    /// identically* — the restored twin and the original produce the same
    /// detections for any suffix workload.
    #[test]
    fn v1_snapshot_restores_and_detection_continues(
        prefix in prop::collection::vec(sstep_strategy(), 0..40),
        suffix in prop::collection::vec(sstep_strategy(), 0..20),
        ctx in prop::sample::select(&ParamContext::ALL[..]),
    ) {
        let d = sharded_detector(ctx);
        srun(&d, &prefix);
        let v1 = d.snapshot_state().encode_with_version(VERSION_PRE_SHARD);
        let decoded = GraphSnapshot::decode(v1).expect("v1 snapshot decodes");
        prop_assert!(decoded.nodes.iter().all(|n| n.shard == 0), "v1 carries no shard labels");
        let twin = sharded_detector(ctx);
        twin.restore_snapshot(&decoded).unwrap();
        prop_assert_eq!(twin.clock().peek(), d.clock().peek(), "restore preserves the clock");

        let d_dets = srun(&d, &suffix);
        let t_dets = srun(&twin, &suffix);
        prop_assert_eq!(d_dets.len(), t_dets.len());
        for (a, b) in d_dets.iter().zip(&t_dets) {
            prop_assert_eq!(a.event, b.event);
            prop_assert_eq!(a.context, b.context);
            prop_assert_eq!(a.occurrence.at, b.occurrence.at);
            let ats: Vec<_> = a.occurrence.param_list().iter().map(|o| o.at).collect();
            let bts: Vec<_> = b.occurrence.param_list().iter().map(|o| o.at).collect();
            prop_assert_eq!(ats, bts);
        }
    }
}

fn check_no_flushed(det: &Detection, flushed: &[(u64, u64)]) -> Result<(), TestCaseError> {
    for prim in det.occurrence.param_list() {
        if let Some(txn) = prim.txn {
            for (ft, at) in flushed {
                prop_assert!(
                    !(txn == *ft && prim.at <= *at),
                    "constituent from txn {} at t={} survived a flush at t={}",
                    txn,
                    prim.at,
                    at
                );
            }
        }
    }
    Ok(())
}
